"""Coroutines two ways: the abstract model, and compiled XFER code.

The paper's model (section 3) makes coroutine transfer the *same*
primitive as procedure call — the destination decides the discipline
(feature F3).  This example shows:

1. a producer/filter/consumer pipeline at the model level, built from
   raw XFERs through ports;
2. the same idea compiled to machine code: a `squares` coroutine driven
   by `main` through the language's XFER builtin, running on the Mesa
   machine (I2) and on the bank machine (I4).

Run::

    python examples/coroutines.py
"""

from repro import MachineConfig, build_machine
from repro.core import AbstractMachine
from repro.core.ports import pipeline


def model_level() -> None:
    machine = AbstractMachine(trace=True)

    def scale(ctx):
        record = ctx.args
        while record:
            (value,) = record
            record = yield from ctx.xfer(ctx.source, value * 10)
        yield from ctx.ret()

    def offset(ctx):
        record = ctx.args
        while record:
            (value,) = record
            record = yield from ctx.xfer(ctx.source, value + 3)
        yield from ctx.ret()

    outputs = pipeline(machine.engine, [scale, offset], [1, 2, 3, 4])
    print("model-level pipeline [x*10+3]:", outputs)
    kinds = [event.kind for event in machine.trace]
    print(
        f"  transfers: {len(kinds)} total, {kinds.count('xfer')} coroutine XFERs, "
        f"{kinds.count('call')} calls, {kinds.count('return')} returns"
    )


MACHINE_SOURCE = """
MODULE Main;

(* A coroutine producing successive squares.  Its partner is whoever
   last transferred to it - the SOURCE() register, captured after every
   resume, exactly as the paper's returnContext works. *)
PROCEDURE squares(seed): INT;
VAR who, v: INT;
BEGIN
  who := SOURCE();
  v := seed;
  WHILE 1 DO
    who := XFER(who, v * v);
    who := SOURCE();
    v := v + 1;
  END;
  RETURN 0;
END;

PROCEDURE main(): INT;
VAR co, total, i, v: INT;
BEGIN
  (* XFER to a procedure descriptor runs the creation context: a fresh
     frame for `squares`, control forwarded to it (section 3). *)
  v := XFER(PROC(squares), 1);
  co := SOURCE();
  total := v;
  i := 0;
  WHILE i < 5 DO
    v := XFER(co, 0);
    co := SOURCE();
    OUTPUT v;
    total := total + v;
    i := i + 1;
  END;
  RETURN total;
END;

END.
"""


def machine_level() -> None:
    for preset in ("i2", "i4"):
        machine = build_machine([MACHINE_SOURCE], MachineConfig.preset(preset))
        (total,) = machine.run()
        xfers = sum(
            count
            for kind, count in machine.fetch.slow.items()
            if kind.value == "xfer"
        )
        print(
            f"machine-level squares on {preset}: output={machine.output} "
            f"total={total} ({xfers} XFERs, all through the general scheme)"
        )


if __name__ == "__main__":
    model_level()
    print()
    machine_level()
