"""Objects from retained frames + interface records.

The model's ingredients compose into an object system with no new
machinery at all:

* a **retained frame** (section 4) is an object's state — an activation
  record that outlives its constructor's return;
* an **interface record** (section 3) is its method table — a block of
  procedure descriptor words, called with "LOADLITERAL i; READFIELD f;
  XFER";
* methods take the object (a frame pointer) as their first argument and
  reach its fields through ordinary pointers.

This example builds two bank accounts, pushes deposits and withdrawals
through the method table, and frees the objects explicitly — exactly the
storage discipline F2 promises ("contexts are first-class objects which
are allocated and freed explicitly").

Run::

    python examples/objects_via_frames.py
"""

from repro import MachineConfig, build_machine

SOURCE = """
MODULE Main;
VAR m0, m1, lastobj: INT;

(* --- the "class" ------------------------------------------------- *)

(* Constructor: the retained frame IS the object; local `balance`
   (slot 1, after the parameter) is its only field. *)
PROCEDURE account(opening): INT;
VAR balance: INT;
BEGIN
  RETAIN;
  balance := opening;
  lastobj := MYCONTEXT();
  RETURN @balance;           (* the field's address, for the methods *)
END;

PROCEDURE deposit(obj, amount): INT;
BEGIN
  ^obj := ^obj + amount;
  RETURN ^obj;
END;

PROCEDURE withdraw(obj, amount): INT;
BEGIN
  IF amount > ^obj THEN
    RETURN 0 - 1;            (* insufficient funds *)
  END;
  ^obj := ^obj - amount;
  RETURN ^obj;
END;

(* --- the client -------------------------------------------------- *)

PROCEDURE send(iface, selector, obj, amount): INT;
VAR r: INT;
BEGIN
  r := XFER(^(iface + selector), obj, amount);
  RETURN r;
END;

PROCEDURE main(): INT;
VAR iface, alice, bob, aframe, bframe, r: INT;
BEGIN
  iface := @m0;
  ^(iface + 0) := PROC(deposit);
  ^(iface + 1) := PROC(withdraw);

  alice := account(100);
  aframe := lastobj;
  bob := account(10);
  bframe := lastobj;

  r := send(iface, 0, alice, 50);      (* alice: 150 *)
  OUTPUT r;
  r := send(iface, 1, alice, 30);      (* alice: 120 *)
  OUTPUT r;
  r := send(iface, 1, bob, 500);       (* bob: refused, -1 *)
  OUTPUT r;
  r := send(iface, 0, bob, 5);         (* bob: 15 *)
  OUTPUT r;

  r := ^alice + ^bob;                  (* 120 + 15 *)
  DISPOSE aframe;
  DISPOSE bframe;
  RETURN r;
END;

END.
"""


def main() -> None:
    for preset in ("i2", "i4"):
        machine = build_machine([SOURCE], MachineConfig.preset(preset))
        (total,) = machine.run()
        print(f"{preset}: method-call log = {machine.output}, final balances sum = {total}")
        assert machine.output == [150, 120, -1, 15]
        assert total == 135
        assert not machine.frames.by_address  # both objects freed
    print(
        "\nNo object runtime anywhere: retained frames hold the state,\n"
        "an interface record dispatches the methods, XFER moves control -\n"
        "the generality the model was designed for (sections 3-4)."
    )


if __name__ == "__main__":
    main()
