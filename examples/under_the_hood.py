"""Under the hood: what the compiler and linker actually build.

Compiles a two-module program for the Mesa (I2) and DIRECT (I3) targets
and dumps what the paper describes: the entry vector and fsi bytes, the
link vector with its packed descriptors, the GFT entry, a disassembly of
the calling sequences, and the space the two encodings take.

Run::

    python examples/under_the_hood.py
"""

from repro.analysis.space import byte_census, one_byte_fraction
from repro.interp.machineconfig import MachineConfig
from repro.isa.disassembler import format_listing
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.mesa.descriptor import unpack_descriptor

SOURCES = [
    """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN Stats.mean4(3, 5, 7, 9) + helper(2);
END;
PROCEDURE helper(x): INT;
BEGIN
  RETURN x * x;
END;
END.
""",
    """
MODULE Stats;
PROCEDURE mean4(a, b, c, d): INT;
BEGIN
  RETURN (a + b + c + d) DIV 4;
END;
END.
""",
]


def dump(preset: str) -> None:
    config = MachineConfig.preset(preset)
    modules = compile_program(SOURCES, CompileOptions.for_config(config))
    image = link(modules, config, ("Main", "main"))
    main = image.instance_of("Main")

    print(f"--- target: {preset} ({config.linkage.value} linkage) ---\n")
    print(f"code space: {image.code.size} bytes; tables: {image.table_words()}")

    print(f"\nMain's global frame @ {main.gf_address:#06x} "
          f"(code base {main.code_base:#06x}, LV @ {main.lv_base:#06x})")

    if image.gft is not None:
        gf, bias = image.gft.peek_entry(main.env_indices[0])
        print(f"GFT[{main.env_indices[0]}] -> gf={gf:#06x} bias={bias}")
        for index, target in enumerate(main.module.imports):
            word = image.memory.peek(main.lv_base + index)
            env, code = unpack_descriptor(word)
            print(f"LV[{index}] = {word:#06x} (env={env}, code={code})  ; {target[0]}.{target[1]}")

    for procedure in main.module.procedures:
        entry = main.code_base + procedure.entry_offset
        fsi = image.code.fetch_byte(entry)
        print(f"\nMain.{procedure.name}: entry @ {entry:#06x}, frame-size byte fsi={fsi} "
              f"({image.ladder.size_of(fsi)} words)")
        print(format_listing(procedure.body))

    census = byte_census(modules)
    print(f"\ninstruction census: {census}  ({one_byte_fraction(census):.0%} one-byte)\n")


def main() -> None:
    dump("i2")
    dump("i3")
    print(
        "Note how the DIRECT encoding replaces the one-byte EFC0 with a\n"
        "four-byte DFC (and SDFC for the same-module call) - exactly the\n"
        "D1 space/speed trade of section 6."
    )


if __name__ == "__main__":
    main()
