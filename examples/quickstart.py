"""Quickstart: compile one program, run it on all four implementations.

The program is source-identical everywhere; only the encoding and the
machine change (the paper's section 2 separation).  The output shows the
paper's ladder: I1 is simple, I2 saves space, I3/I4 approach jump speed.

Run::

    python examples/quickstart.py
"""

from repro import MachineConfig, build_machine
from repro.analysis.report import format_table

SOURCE = """
MODULE Main;

PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;

PROCEDURE main(): INT;
BEGIN
  RETURN fib(12);
END;

END.
"""


def main() -> None:
    rows = []
    for preset in ("i1", "i2", "i3", "i4"):
        machine = build_machine([SOURCE], MachineConfig.preset(preset))
        (result,) = machine.run()
        fetch = machine.fetch.summary()
        rows.append(
            [
                preset,
                result,
                machine.steps,
                machine.counter.memory_references,
                machine.counter.cycles,
                f"{fetch['call_return_jump_speed_fraction']:.0%}",
            ]
        )
    print("fib(12) on the implementation ladder of 'Fast Procedure Calls':\n")
    print(
        format_table(
            ["impl", "result", "instructions", "memory refs", "model cycles", "jump-speed"],
            rows,
        )
    )
    print(
        "\nSame program, same answers; each rung trades implementation\n"
        "complexity for fewer memory references per call (sections 4-7)."
    )


if __name__ == "__main__":
    main()
