"""Multiple processes sharing one frame heap.

The introduction's storage argument: conventional stack architectures
give "each coroutine or process ... a contiguous piece of storage large
enough to hold the largest set of frames it will ever have; this makes
efficient storage allocation difficult."  With heap-allocated frames
(F2), every process draws from the same arena, and a process switch is
just another XFER with a full flush.

This example runs four processes — two cooperative (YIELD), two preempted
by instruction quantum — on the I4 machine, and reports what the switch
discipline cost: return-stack flushes, bank flushes, and the shared
heap's footprint.

The second half stretches the same discipline across machines: the
``Tally`` module is pinned to a second shard, so each ``Tally.gauss``
call becomes a Remote XFER (:mod:`repro.net`) — the caller pays one
ordinary modelled process switch and blocks, the callee executes the
activation with its exact local semantics, and all wire cost lands on
the transport's explicit meters.

Run::

    python examples/multiprocess.py
"""

from repro import MachineConfig, build_machine
from repro.analysis.report import format_table
from repro.interp.processes import Scheduler

SOURCE = """
MODULE Main;

PROCEDURE gauss(n): INT;
VAR i, total: INT;
BEGIN
  total := 0;
  i := 1;
  WHILE i <= n DO
    total := total + i;
    i := i + 1;
  END;
  RETURN total;
END;

PROCEDURE chatty(base, rounds): INT;
VAR i: INT;
BEGIN
  i := 0;
  WHILE i < rounds DO
    OUTPUT base + i;
    YIELD;
    i := i + 1;
  END;
  RETURN base;
END;

PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;

END.
"""


# The same gauss worker, split for the remote half: Far on shard 0,
# Tally pinned to shard 1, so every Tally call crosses the wire.
REMOTE_FAR = """
MODULE Far;
PROCEDURE main(): INT;
BEGIN
  RETURN Tally.gauss(40) + Tally.gauss(80);
END;
END.
"""

REMOTE_TALLY = """
MODULE Tally;
PROCEDURE gauss(n): INT;
VAR i, total: INT;
BEGIN
  total := 0;
  i := 1;
  WHILE i <= n DO
    total := total + i;
    i := i + 1;
  END;
  RETURN total;
END;
END.
"""


def remote_demo():
    """Two shards, one call tree: returns (cluster, results)."""
    from repro.net import Cluster

    cluster = Cluster(
        [REMOTE_FAR, REMOTE_TALLY],
        shards=2,
        config="i4",
        entry=("Far", "main"),
        pins={"Far": 0, "Tally": 1},
        record=True,
    )
    results = cluster.call("Far", "main")
    return cluster, results


def main() -> None:
    machine = build_machine([SOURCE], MachineConfig.i4())
    machine.halted = True  # discard the default start; the scheduler owns it
    machine.stack.clear()

    scheduler = Scheduler(machine, quantum=60)
    scheduler.spawn("Main", "chatty", 100, 3)
    scheduler.spawn("Main", "chatty", 200, 3)
    scheduler.spawn("Main", "gauss", 40)
    scheduler.spawn("Main", "gauss", 80)
    processes = scheduler.run()

    rows = [
        [f"p{p.pid} {p.proc}{p.args}", p.status.value, p.steps, p.results]
        for p in processes
    ]
    print(format_table(["process", "status", "steps", "results"], rows))
    print("\ninterleaved OUTPUT stream:", machine.output)
    print(
        f"\nswitches: {scheduler.stats.switches} "
        f"(yields: {scheduler.stats.yields}, preemptions: {scheduler.stats.preemptions})"
    )
    if machine.rstack is not None:
        print(f"return-stack flushes: {machine.rstack.stats.flushes}")
    if machine.bankfile is not None:
        print(
            f"bank words spilled on switches: {machine.bankfile.stats.words_spilled}, "
            f"filled on resume: {machine.bankfile.stats.words_filled}"
        )
    heap = machine.image.av_heap
    print(
        f"shared frame heap: {heap.stats.allocations} allocations, "
        f"high water {heap.stats.high_water_words} words - no per-process "
        "stack reservations anywhere"
    )

    from repro.net.stitch import render, stitch

    cluster, results = remote_demo()
    print("\n--- the same discipline across two machines (repro.net) ---")
    print(f"Far on shard 0, Tally pinned to shard 1; results: {results}")
    print(render(stitch(cluster.trace_events())))
    for shard_id, meters in cluster.meters().items():
        print(
            f"shard {shard_id}: {meters['steps']} instructions, "
            f"{meters['counter']['cycles']} modelled cycles, "
            f"{meters['blocks']} remote stall(s)"
        )
    wire = cluster.transport.stats
    print(
        f"wire: {wire.sent} messages, {wire.wire_words} words - metered on "
        "the transport, never on a machine's cycle counter"
    )


if __name__ == "__main__":
    main()
