"""Code swapping live: relocation and procedure replacement.

Section 5.1 credits each indirection level with a freedom: "The global
frame permits the code segment to be moved ... a simple and efficient
implementation of code swapping and relocation", and "EV permits a
procedure to be moved in the code segment ... dynamically replaced by
another of a different size".

This example runs a program halfway, then — while an activation of the
library is suspended mid-call —

1. relocates the whole library segment (one global-frame write per
   instance rebinds everything, because saved PCs are code-base
   relative), and
2. hot-swaps one procedure through its entry-vector slot, so the
   in-flight activation finishes on the old code while the next call
   gets the new version.

Run::

    python examples/hot_swap.py
"""

from repro import MachineConfig, build_machine
from repro.interp.services import relocate_module, replace_procedure
from repro.isa.assembler import Assembler
from repro.isa.opcodes import Op

SOURCES = [
    """
MODULE Main;
PROCEDURE main(): INT;
VAR before, after: INT;
BEGIN
  before := Tax.rate(100);
  after := Tax.rate(100);
  RETURN before * 1000 + after;
END;
END.
""",
    """
MODULE Tax;
PROCEDURE rate(amount): INT;
BEGIN
  RETURN bracket(amount) + 1;
END;
PROCEDURE bracket(amount): INT;
BEGIN
  RETURN amount DIV 10;
END;
END.
""",
]


def new_bracket_body() -> bytes:
    """bracket(amount) = amount DIV 5  — a 'different size' replacement."""
    asm = Assembler()
    asm.emit(Op.SL0)  # prologue: pop the argument (COPY convention)
    asm.emit(Op.LL0)
    asm.emit(Op.LI5)
    asm.emit(Op.DIV)
    asm.emit(Op.RET)
    return asm.assemble()


def main() -> None:
    machine = build_machine(SOURCES, MachineConfig.i2())

    # Step until execution is inside Tax.bracket (first call in flight).
    while machine.frame.proc.qualified_name != "Tax.bracket":
        machine.step()
    print(f"paused inside {machine.frame.proc.qualified_name} "
          f"at pc={machine.pc:#06x}")

    old_base = machine.image.instance_of("Tax").code_base
    new_base = relocate_module(machine, "Tax")
    print(f"relocated Tax: code base {old_base:#06x} -> {new_base:#06x} "
          "(one GF write; the suspended frame's relative PC still works)")

    offset = replace_procedure(machine, "Tax", "bracket", new_bracket_body())
    print(f"hot-swapped Tax.bracket via its EV slot (new entry offset {offset:#06x})")

    (result,) = machine.run()
    before, after = divmod(result, 1000)
    print(f"\nfirst call finished on the OLD code:  bracket(100)+1 = {before}")
    print(f"second call used the NEW code:        bracket(100)+1 = {after}")
    assert (before, after) == (11, 21)


if __name__ == "__main__":
    main()
