"""Explore the design space: the knobs behind sections 6 and 7.

Sweeps the two hardware budgets the paper discusses — IFU return-stack
depth and register-bank count — over a calibrated workload, and prints
where the paper's chosen points (depth ~8, 4-8 banks) sit on each curve.

Run::

    python examples/design_space.py
"""

from repro.analysis.report import format_table
from repro.workloads.synthetic import TraceConfig, call_return_trace
from repro.workloads.traces import replay_on_banks, replay_on_return_stack


def sweep_return_stack(trace) -> None:
    rows = []
    for depth in (1, 2, 4, 6, 8, 12, 16, 24):
        replay = replay_on_return_stack(trace, depth=depth)
        rows.append(
            [
                depth,
                f"{replay.hit_rate:.2%}",
                f"{replay.jump_speed_fraction:.2%}",
                replay.entries_flushed,
            ]
        )
    print("IFU return stack depth (section 6):")
    print(
        format_table(
            ["depth", "return hit rate", "jump-speed fraction", "entries flushed"], rows
        )
    )


def sweep_banks(trace) -> None:
    rows = []
    for banks in (3, 4, 5, 6, 8, 10, 12, 16):
        replay = replay_on_banks(trace, bank_count=banks)
        spill_traffic = replay.memory_writes + replay.memory_reads
        rows.append(
            [banks, f"{replay.overflow_rate:.2%}", spill_traffic]
        )
    print("\nregister bank count (section 7.1; paper: 4-8 banks):")
    print(format_table(["banks", "overflow+underflow rate", "spill+fill words"], rows))


def sweep_bank_words(trace) -> None:
    rows = []
    for words in (8, 16, 32, 40):
        replay = replay_on_banks(trace, bank_count=8, bank_words=words)
        rows.append(
            [
                words * 2,
                f"{replay.overflow_rate:.2%}",
                replay.memory_reads + replay.memory_writes,
                8 * words * 16,
            ]
        )
    print("\nbank size (paper: 80 bytes covers 95% of frames; 8x80B ~ 5000 bits):")
    print(
        format_table(
            ["bank bytes", "overflow rate", "spill+fill words", "total register bits"],
            rows,
        )
    )


def main() -> None:
    trace = call_return_trace(TraceConfig(length=40_000, seed=7))
    sweep_return_stack(trace)
    sweep_banks(trace)
    sweep_bank_words(trace)
    print(
        "\nThe paper's choices (depth ~8, 4-8 banks of 16 words) sit at the\n"
        "knee of each curve: more hardware buys almost nothing, less gives\n"
        "up the 95% fast-path claims."
    )


if __name__ == "__main__":
    main()
