"""Generate docs/isa.md from the live opcode table.

Usage::

    python docs/generate_isa_reference.py

A test asserts the checked-in file matches the current table, so the
reference can never drift from the encoding.
"""

from __future__ import annotations

from pathlib import Path

from repro.isa.opcodes import (
    CALL_OPS,
    DESCRIPTIONS,
    JUMP_OPS,
    OPERAND_KINDS,
    Op,
    OperandKind,
    TRANSFER_OPS,
    instruction_length,
)

_KIND_NOTES = {
    OperandKind.NONE: "—",
    OperandKind.U8: "u8",
    OperandKind.S8: "s8 (PC-relative)",
    OperandKind.U16: "u16",
    OperandKind.S16: "s16 (PC-relative)",
    OperandKind.A24: "a24 (absolute code address)",
}


def render() -> str:
    lines = [
        "# ISA reference",
        "",
        "Auto-generated from `repro.isa.opcodes` by",
        "`python docs/generate_isa_reference.py` — do not edit by hand.",
        "",
        "Encoding: one opcode byte, then 0–3 big-endian operand bytes.",
        "Multi-byte operands follow section 5's space-economy design: the",
        "hot forms (locals 0–7, small literals, the eight most frequent",
        "external calls) are a single byte.",
        "",
        "| value | mnemonic | bytes | operand | class | description |",
        "|------:|----------|------:|---------|-------|-------------|",
    ]
    for op in Op:
        if op in CALL_OPS:
            klass = "call"
        elif op in TRANSFER_OPS:
            klass = "transfer"
        elif op in JUMP_OPS:
            klass = "jump"
        else:
            klass = ""
        lines.append(
            f"| {int(op):#04x} | `{op.name}` | {instruction_length(op)} "
            f"| {_KIND_NOTES[OPERAND_KINDS[op]]} | {klass} | {DESCRIPTIONS[op]} |"
        )
    lines.append("")
    return "\n".join(lines)


def main() -> int:
    target = Path(__file__).resolve().parent / "isa.md"
    target.write_text(render())
    print(f"wrote {target} ({len(list(Op))} opcodes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
