"""Feedback-directed optimization: close the profile → linkage loop.

The paper's I2→I3→I4 ladder makes the 95% case fast by *static* choice
of linkage; this package closes the dynamic half of the loop.  A
``repro-profile/1`` document (exact per-edge call counts, frame-class
peaks, call-depth histogram — see :mod:`repro.fdo.profile`) is combined
with the sound ``repro-facts/1`` artifact from ``repro analyze`` and
turned into an image rewrite (:mod:`repro.fdo.decide`,
:mod:`repro.fdo.rewrite`):

* hot monomorphic LOCALCALL/EXTERNALCALL sites are promoted to
  SHORTDIRECTCALL/DIRECTCALL with proper section 6 headers;
* each procedure's frame-size index is picked from the observed
  frame-size histogram (the AV tuning question section 5.4 leaves open);
* the allocator's replenish batch and I4's bank count are sized from
  the observed peaks and call-depth distribution;
* a hot-procedure order is recorded for the JIT's compile queue.

Every rewrite is re-verified (``check_image`` + ``analyze_image``) and
replay-validated against the profile's own run before it is emitted;
anything that cannot be proven both sound and no-worse is refused.  The
whole pass is logged as a machine-readable ``repro-fdo/1`` document.
"""

from repro.fdo.decide import FDO_SCHEMA, build_plan
from repro.fdo.imagefile import (
    IMAGE_FILE_SCHEMA,
    image_document,
    load_image,
    load_image_document,
    save_image,
)
from repro.fdo.profile import PROFILE_SCHEMA, collect_profile, profile_document
from repro.fdo.rewrite import (
    FdoRefusal,
    OptimizeResult,
    build_machine,
    optimize,
)

__all__ = [
    "FDO_SCHEMA",
    "IMAGE_FILE_SCHEMA",
    "PROFILE_SCHEMA",
    "FdoRefusal",
    "OptimizeResult",
    "build_machine",
    "build_plan",
    "collect_profile",
    "image_document",
    "load_image",
    "load_image_document",
    "optimize",
    "profile_document",
    "save_image",
]
