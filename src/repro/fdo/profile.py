"""The ``repro-profile/1`` artifact: one run, summarized for the optimizer.

A profile is a pure function of (program, implementation, arguments):
the machine's meters are modelled, the tracer is meter-neutral, and the
event stream is deterministic, so two collections of the same run are
byte-identical.  The document records everything the decision engine
needs — per-edge call counts with their transfer kinds, per-procedure
activation counts, the live-frame peak of every AV size class, the
call-depth histogram — plus the run's own results and meters, which the
rewriter replays against as its no-regression guard.

``image_hash`` pins the profile to the exact image it observed
(:func:`repro.check.interproc.image_fingerprint`); the optimizer refuses
stale profiles.
"""

from __future__ import annotations

from collections import Counter

from repro.obs import TraceRecorder
from repro.obs.events import (
    ALLOC_TRAP,
    MACHINE_BEGIN,
    XFER_CALL,
    XFER_RETURN,
    XFER_XFER,
)

#: Version tag of the profile document; bump on shape change.
PROFILE_SCHEMA = "repro-profile/1"


def collect_profile(
    sources: list[str],
    impl: str,
    entry: tuple[str, str] = ("Main", "main"),
    args: tuple[int, ...] = (),
) -> dict:
    """Build, trace one run, and summarize it as a profile document."""
    from repro.fdo.rewrite import build_machine

    machine = build_machine(sources, impl, entry)
    recorder = TraceRecorder(capacity=None, trace_steps=False)
    machine.attach_tracer(recorder)
    machine.start(entry[0], entry[1], *args)
    results = machine.run()
    return profile_document(
        machine, list(recorder.events), results, impl, entry, args
    )


def profile_document(
    machine,
    events: list,
    results: list[int],
    impl: str,
    entry: tuple[str, str],
    args: tuple[int, ...] = (),
) -> dict:
    """Summarize a finished traced run into the versioned document."""
    from repro.check.interproc import image_fingerprint

    edges: Counter[tuple[str, str, str]] = Counter()
    activations: Counter[str] = Counter()
    depth_histogram: Counter[int] = Counter()
    class_peaks: dict[int, int] = {}
    class_live: Counter[int] = Counter()
    alloc_traps = 0
    structured = True

    fsi_of: dict[str, int] = {}
    frame_words_of: dict[str, int] = {}
    for meta in machine.image.procs_by_entry.values():
        name = f"{meta.module}.{meta.name}"
        fsi_of[name] = meta.fsi
        frame_words_of[name] = meta.frame_words

    stack: list[str] = []
    for event in events:
        if event.kind == MACHINE_BEGIN:
            # The root activation gets its frame from start(), not from a
            # call transfer; put it on the shadow stack so the final
            # return balances and its frame counts toward its class peak.
            stack.append(event.name)
            depth_histogram[len(stack)] += 1
            fsi = fsi_of.get(event.name)
            if fsi is not None:
                class_live[fsi] += 1
                class_peaks[fsi] = max(class_peaks.get(fsi, 0), class_live[fsi])
        elif event.kind == XFER_CALL:
            callee = event.name
            source = event.data.get("source", "")
            edges[(source, callee, event.data.get("transfer", ""))] += 1
            activations[callee] += 1
            stack.append(callee)
            depth_histogram[len(stack)] += 1
            fsi = fsi_of.get(callee)
            if fsi is not None:
                class_live[fsi] += 1
                class_peaks[fsi] = max(class_peaks.get(fsi, 0), class_live[fsi])
        elif event.kind == XFER_RETURN:
            if stack and stack[-1] == event.name:
                returned = stack.pop()
                fsi = fsi_of.get(returned)
                if fsi is not None and class_live[fsi] > 0:
                    class_live[fsi] -= 1
            else:
                # A return that does not match the open call (XFER
                # discipline broke the bracket structure): peak tracking
                # is no longer exact, so mark the profile approximate.
                structured = False
        elif event.kind == XFER_XFER:
            structured = False
        elif event.kind == ALLOC_TRAP:
            alloc_traps += 1

    return {
        "schema": PROFILE_SCHEMA,
        "impl": impl,
        "entry": f"{entry[0]}.{entry[1]}",
        "args": list(args),
        "image_hash": image_fingerprint(machine.image),
        "results": list(results),
        "meters": {
            "steps": machine.steps,
            "cycles": machine.counter.cycles,
            "memory_references": machine.counter.memory_references,
        },
        "structured": structured,
        "edges": [
            {
                "caller": caller,
                "callee": callee,
                "transfer": transfer,
                "count": count,
            }
            for (caller, callee, transfer), count in sorted(edges.items())
        ],
        "procedures": {
            name: {
                "activations": count,
                "frame_words": frame_words_of.get(name, 0),
                "fsi": fsi_of.get(name, 0),
            }
            for name, count in sorted(activations.items())
        },
        "depth": {
            "max": max(depth_histogram) if depth_histogram else 0,
            "histogram": {
                str(depth): count
                for depth, count in sorted(depth_histogram.items())
            },
        },
        "class_peaks": {
            str(fsi): peak for fsi, peak in sorted(class_peaks.items())
        },
        "alloc_traps": alloc_traps,
    }


def validate_profile(doc: dict) -> str | None:
    """Shape check; returns a complaint or None when the document is ok."""
    if not isinstance(doc, dict):
        return "profile is not a JSON object"
    if doc.get("schema") != PROFILE_SCHEMA:
        return f"schema {doc.get('schema')!r} is not {PROFILE_SCHEMA}"
    for key in ("impl", "entry", "image_hash", "meters", "edges", "procedures"):
        if key not in doc:
            return f"profile is missing the {key!r} field"
    return None
