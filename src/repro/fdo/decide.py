"""The decision engine: facts + profile → a rewrite plan.

Every decision intersects *dynamic* evidence (the profile) with *static*
soundness (the facts):

* **Site promotion** — a LOCALCALL/EXTERNALCALL site may become
  SHORTDIRECTCALL/DIRECTCALL only when the facts classify it
  ``monomorphic`` (the pushdown call graph proved the single target) and
  the profile shows the caller→target edge hot.  Promotion removes the
  site's counted resolution reads (section 6: "all of the data lookups
  ... are replaced by an address computed at load time"); the exact
  per-call saving is the linkage's resolution cost.
* **Frame-size retuning** — the section 5.4 question.  Occupied AV size
  classes are merged upward into the largest occupied class when the
  observed live-frame peaks predict fewer allocator traps:
  ``ceil(a/b) + ceil(c/b) >= ceil((a+c)/b)``, so a merge never adds
  traps, and every trap costs a modelled ``ALLOCATOR_TRAP``.  Refused
  outright when any reachable body takes frame addresses (LLA/ALOC/
  FREE/RETAIN/LLC/LRC/XF) — those programs may observe frame placement.
* **Replenish batch** — sized to the post-merge peak so a hot class
  traps once, not ``ceil(peak/4)`` times.
* **Bank count** (I4) — raised to cover the observed call-depth
  distribution so the register-bank stack stops spilling.
* **Block order** — procedures by observed hotness, for the JIT's
  compile queue.

The plan is advisory: the rewriter re-verifies statically and replays
the profile's run, dropping any frame/bank decision that fails to beat
the recorded meters.  The machine-readable ``repro-fdo/1`` log records
every decision (site, evidence, rewrite, expected saving) and every
refusal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interp.machineconfig import (
    FrameAllocatorKind,
    LinkageKind,
    MachineConfig,
)

#: Version tag of the decision-log document; bump on shape change.
FDO_SCHEMA = "repro-fdo/1"

#: Counted memory references a resolved call costs per linkage, i.e.
#: what promotion to DIRECTCALL (0 counted resolution reads; the header
#: fetches ride the IFU) saves per executed call.  MESA: GFT entry +
#: descriptor unpack reads + fsi byte (section 5: "five memory
#: references"); SIMPLE: wide link-vector pair + fsi byte; LOCALCALL:
#: entry-vector word + fsi byte.
_RESOLVE_READS = {
    ("mesa", "external"): 5,
    ("simple", "external"): 3,
    ("mesa", "local"): 2,
    ("simple", "local"): 2,
}

#: Modelled cycles per counted memory reference and per allocator trap
#: (see repro.machine.costs.DEFAULT_COSTS).
_READ_CYCLES = 2
_TRAP_CYCLES = 50

#: Opcodes whose presence anywhere makes frame placement observable —
#: frame-size retuning must not move such a program's frames.
_FRAME_SENSITIVE_OPS = frozenset(
    {"LLA", "ALOC", "FREE", "RETAIN", "LLC", "LRC", "XF"}
)

#: Ceiling on the replenish batch and the rebuilt bank count; large
#: enough for every observed corpus peak, small enough to stay honest.
_MAX_BATCH = 32
_MAX_BANKS = 16


@dataclass
class Plan:
    """The rewrite, in the exact shape the rebuild pipeline consumes."""

    #: ``(module, procedure, call_ordinal)`` sites to compile as SDFC/DFC.
    promotions: set[tuple[str, str, int]] = field(default_factory=set)
    #: ``(module, procedure) -> fsi`` overrides for the linker.
    fsi_overrides: dict[tuple[str, str], int] = field(default_factory=dict)
    replenish_batch: int | None = None
    bank_count: int | None = None
    #: Hot-first qualified procedure names for the JIT compile queue.
    block_order: list[str] = field(default_factory=list)
    decisions: list[dict] = field(default_factory=list)
    refusals: list[dict] = field(default_factory=list)

    @property
    def is_noop(self) -> bool:
        return not (
            self.promotions
            or self.fsi_overrides
            or self.replenish_batch is not None
            or self.bank_count is not None
        )


def build_plan(
    facts: dict,
    profile: dict,
    config: MachineConfig,
    modules: list,
    ladder,
    *,
    min_calls: int = 2,
    multi_instance: frozenset[str] = frozenset(),
) -> Plan:
    """Intersect the facts with the profile into a :class:`Plan`.

    *modules* are the original compiled :class:`ModuleCode` objects (for
    the call-ordinal mapping and the frame-sensitivity scan); *ladder*
    is the link-time :class:`SizeLadder`.
    """
    plan = Plan()
    edge_counts: dict[tuple[str, str], int] = {}
    for edge in profile.get("edges", ()):
        key = (edge["caller"], edge["callee"])
        edge_counts[key] = edge_counts.get(key, 0) + edge["count"]

    _plan_promotions(
        plan, facts, config, modules, edge_counts, min_calls, multi_instance
    )
    _plan_frames(plan, profile, config, modules, ladder)
    _plan_banks(plan, profile, config)
    plan.block_order = [
        name
        for name, entry in sorted(
            profile.get("procedures", {}).items(),
            key=lambda item: (-item[1]["activations"], item[0]),
        )
    ]
    return plan


# -- site promotion ----------------------------------------------------------


def _plan_promotions(
    plan: Plan,
    facts: dict,
    config: MachineConfig,
    modules: list,
    edge_counts: dict[tuple[str, str], int],
    min_calls: int,
    multi_instance: frozenset[str],
) -> None:
    if config.linkage is LinkageKind.DIRECT:
        plan.refusals.append(
            {
                "aspect": "promotion",
                "reason": "linkage is already DIRECT; every eligible site "
                "is early-bound statically",
            }
        )
        return
    linkage = config.linkage.value
    ordinals = {
        module.name: _call_ordinals(module) for module in modules
    }
    for proc in facts.get("procedures", ()):
        caller = f"{proc['module']}.{proc['name']}"
        for site in proc.get("sites", ()):
            if site["kind"] != "call":
                continue
            count = 0
            if site["targets"]:
                count = max(
                    edge_counts.get((caller, target), 0)
                    for target in site["targets"]
                )
            if count < min_calls:
                continue  # cold; not worth a log entry per site
            if site["classification"] != "monomorphic":
                plan.refusals.append(
                    {
                        "aspect": "promotion",
                        "site": f"{caller}+{site['offset']}",
                        "reason": f"site is {site['classification']} "
                        f"({count} observed calls); DIRECTCALL needs a "
                        "single statically proven target",
                    }
                )
                continue
            target = site["targets"][0]
            target_module = target.split(".", 1)[0]
            if target_module in multi_instance:
                plan.refusals.append(
                    {
                        "aspect": "promotion",
                        "site": f"{caller}+{site['offset']}",
                        "reason": f"target module {target_module!r} is "
                        "multi-instance (D2: stay on EXTERNALCALL)",
                    }
                )
                continue
            ordinal = ordinals[proc["module"]].get(
                (proc["name"], site["offset"])
            )
            if ordinal is None:
                plan.refusals.append(
                    {
                        "aspect": "promotion",
                        "site": f"{caller}+{site['offset']}",
                        "reason": "no call instruction at the facts offset "
                        "(stale facts?)",
                    }
                )
                continue
            shape = "local" if target_module == proc["module"] else "external"
            reads = _RESOLVE_READS[(linkage, shape)]
            plan.promotions.add((proc["module"], proc["name"], ordinal))
            plan.decisions.append(
                {
                    "kind": "promote-site",
                    "site": f"{caller}+{site['offset']}",
                    "ordinal": ordinal,
                    "rewrite": f"{site['opcode']} -> "
                    + ("SDFC" if shape == "local" else "DFC"),
                    "target": target,
                    "evidence": {"calls": count, "classification": "monomorphic"},
                    "expected_saving": {
                        "memory_references": reads * count,
                        "cycles": reads * count * _READ_CYCLES,
                    },
                }
            )


def _call_ordinals(module) -> dict[tuple[str, int], int]:
    """Map ``(procedure, body_offset) -> call ordinal`` for one module.

    Call instructions appear in the body in emission order, so the n-th
    call instruction by offset is the n-th ``_call`` the generator made —
    the identity the promotion set is keyed by.
    """
    from repro.isa.disassembler import disassemble
    from repro.isa.opcodes import CALL_OPS

    mapping: dict[tuple[str, int], int] = {}
    for procedure in module.procedures:
        ordinal = 0
        for item in disassemble(procedure.body):
            if item.instruction.op in CALL_OPS:
                mapping[(procedure.name, item.offset)] = ordinal
                ordinal += 1
    return mapping


# -- frame-size retuning (the section 5.4 answer) ----------------------------


def _plan_frames(
    plan: Plan, profile: dict, config: MachineConfig, modules: list, ladder
) -> None:
    if config.allocator is not FrameAllocatorKind.AV_HEAP:
        plan.refusals.append(
            {
                "aspect": "frames",
                "reason": f"allocator {config.allocator.value!r} does not "
                "use the AV size-class ladder",
            }
        )
        return
    if not profile.get("structured", False):
        plan.refusals.append(
            {
                "aspect": "frames",
                "reason": "profile saw non-LIFO transfers; live-frame "
                "peaks are approximate",
            }
        )
        return
    sensitive = _frame_sensitive_ops(modules)
    if sensitive:
        plan.refusals.append(
            {
                "aspect": "frames",
                "reason": "program takes frame addresses "
                f"({', '.join(sorted(sensitive))}); retuning would move "
                "observable frame placement",
            }
        )
        return
    peaks = {
        int(fsi): peak for fsi, peak in profile.get("class_peaks", {}).items()
    }
    occupied = sorted(fsi for fsi, peak in peaks.items() if peak > 0)
    batch = None
    if len(occupied) >= 2:
        # Merge every occupied class into the largest one.  The joint
        # peak is at most the sum of the class peaks, and ceil is
        # subadditive, so the estimate never under-counts the win.
        top = occupied[-1]
        joint_peak = sum(peaks[fsi] for fsi in occupied)
        before = sum(-(-peaks[fsi] // 4) for fsi in occupied)
        after = -(-joint_peak // 4)
        if after < before:
            overrides: dict[tuple[str, str], int] = {}
            for name, entry in profile.get("procedures", {}).items():
                if entry["fsi"] in occupied and entry["fsi"] != top:
                    module, proc = name.split(".", 1)
                    overrides[(module, proc)] = top
            if overrides:
                plan.fsi_overrides = overrides
                plan.decisions.append(
                    {
                        "kind": "retune-fsi",
                        "rewrite": f"merge classes {occupied[:-1]} into "
                        f"{top} ({ladder.size_of(top)} words)",
                        "procedures": sorted(
                            f"{m}.{p}" for m, p in overrides
                        ),
                        "evidence": {
                            "class_peaks": {str(k): peaks[k] for k in occupied}
                        },
                        "expected_saving": {
                            "allocator_traps": before - after,
                            "cycles": (before - after) * _TRAP_CYCLES,
                        },
                    }
                )
                peaks = {top: joint_peak}
    top_peak = max(peaks.values(), default=0)
    if top_peak > 4:
        batch = min(_MAX_BATCH, top_peak)
        traps_before = sum(-(-peak // 4) for peak in peaks.values())
        traps_after = sum(-(-peak // batch) for peak in peaks.values())
        if traps_after < traps_before:
            plan.replenish_batch = batch
            plan.decisions.append(
                {
                    "kind": "replenish-batch",
                    "rewrite": f"4 -> {batch} frames per allocator trap",
                    "evidence": {"peak_live_frames": top_peak},
                    "expected_saving": {
                        "allocator_traps": traps_before - traps_after,
                        "cycles": (traps_before - traps_after) * _TRAP_CYCLES,
                    },
                }
            )


def _frame_sensitive_ops(modules: list) -> set[str]:
    from repro.isa.disassembler import disassemble

    found: set[str] = set()
    for module in modules:
        for procedure in module.procedures:
            for item in disassemble(procedure.body):
                name = item.instruction.op.name
                if name in _FRAME_SENSITIVE_OPS:
                    found.add(name)
    return found


# -- I4 bank count -----------------------------------------------------------


def _plan_banks(plan: Plan, profile: dict, config: MachineConfig) -> None:
    if config.bank_count == 0:
        return
    max_depth = profile.get("depth", {}).get("max", 0)
    if max_depth <= config.bank_count:
        return
    banks = min(_MAX_BANKS, max(3, max_depth))
    if banks <= config.bank_count:
        return
    plan.bank_count = banks
    plan.decisions.append(
        {
            "kind": "bank-count",
            "rewrite": f"{config.bank_count} -> {banks} register banks",
            "evidence": {
                "max_call_depth": max_depth,
                "histogram": profile.get("depth", {}).get("histogram", {}),
            },
            "expected_saving": {
                "note": "fewer bank spill/fill references; validated by "
                "replay, not estimated"
            },
        }
    )


def plan_log(
    plan: Plan,
    impl: str,
    entry: str,
    original_hash: str,
    optimized_hash: str,
) -> dict:
    """The versioned ``repro-fdo/1`` decision-log document."""
    return {
        "schema": FDO_SCHEMA,
        "impl": impl,
        "entry": entry,
        "original_image_hash": original_hash,
        "optimized_image_hash": optimized_hash,
        "noop": plan.is_noop,
        "decisions": plan.decisions,
        "refusals": plan.refusals,
        "block_order": plan.block_order,
        "expected_saving": {
            "memory_references": sum(
                d.get("expected_saving", {}).get("memory_references", 0)
                for d in plan.decisions
            ),
            "cycles": sum(
                d.get("expected_saving", {}).get("cycles", 0)
                for d in plan.decisions
            ),
        },
    }
