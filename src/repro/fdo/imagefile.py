"""The optimized-image file: a rewrite, pinned and rebuildable.

Like the snapshot file, the document embeds the module sources so the
image can be rebuilt anywhere without the original files; unlike a
snapshot it carries no machine state — just the *rewrite* (promotion
set, fsi overrides, replenish batch, bank count) plus the expected
fingerprint.  Loading rebuilds deterministically and refuses when the
rebuilt fingerprint differs (a tampered or version-skewed file), so a
loaded image is exactly the one the optimizer verified.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.interp.machine import Machine

from repro.fdo.rewrite import FdoRefusal, OptimizeResult, build_machine

#: Version tag of the optimized-image file; bump on shape change.
IMAGE_FILE_SCHEMA = "repro-image/1"


def image_document(result: OptimizeResult) -> dict:
    """Serialize an :class:`OptimizeResult` into the versioned document."""
    return {
        "schema": IMAGE_FILE_SCHEMA,
        "impl": result.impl,
        "entry": f"{result.entry[0]}.{result.entry[1]}",
        "sources": list(result.sources),
        "rewrite": {
            "promotions": [list(site) for site in result.promotions],
            "fsi_overrides": {
                f"{module}.{proc}": fsi
                for (module, proc), fsi in sorted(result.fsi_overrides.items())
            },
            "replenish_batch": result.replenish_batch,
            "bank_count": result.bank_count,
        },
        "original_image_hash": result.original_hash,
        "image_hash": result.image_hash,
        "log": result.log,
    }


def save_image(result: OptimizeResult, path: str | Path) -> dict:
    doc = image_document(result)
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
    return doc


def load_image_document(doc: dict) -> tuple[Machine, dict]:
    """Rebuild the optimized image from its document, fingerprint-checked."""
    from repro.check.interproc import image_fingerprint

    if not isinstance(doc, dict) or doc.get("schema") != IMAGE_FILE_SCHEMA:
        raise FdoRefusal(
            f"not a {IMAGE_FILE_SCHEMA} file (schema "
            f"{doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    module, _, proc = doc["entry"].partition(".")
    rewrite = doc.get("rewrite", {})
    promotions = frozenset(
        (site[0], site[1], site[2]) for site in rewrite.get("promotions", ())
    )
    fsi_overrides = {}
    for name, fsi in rewrite.get("fsi_overrides", {}).items():
        owner, _, procedure = name.partition(".")
        fsi_overrides[(owner, procedure)] = fsi
    machine = build_machine(
        doc["sources"],
        doc["impl"],
        (module, proc),
        promotions=promotions,
        fsi_overrides=fsi_overrides,
        replenish_batch=rewrite.get("replenish_batch"),
        bank_count=rewrite.get("bank_count"),
    )
    rebuilt = image_fingerprint(machine.image)
    if rebuilt != doc.get("image_hash"):
        raise FdoRefusal(
            f"rebuilt image fingerprint {rebuilt} does not match the "
            f"file's {doc.get('image_hash')!r}; the file is stale or was "
            "edited"
        )
    return machine, doc


def load_image(path: str | Path) -> tuple[Machine, dict]:
    return load_image_document(json.loads(Path(path).read_text()))
