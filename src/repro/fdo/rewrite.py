"""The rewriter: apply a plan, verify, replay, and only then emit.

Promotion changes instruction lengths (LFC is two bytes, SDFC three,
DFC four), so the rewrite is a deterministic *rebuild* — recompile with
the promotion set, relink with the frame overrides — not an in-place
patch.  Site identity crosses the rebuild as ``(module, procedure,
call_ordinal)``: call instructions appear in body-offset order exactly
as the generator emitted them, on both sides.

Three gates stand between a plan and an emitted image:

1. **Fingerprints** — the profile and the facts must both carry the
   fingerprint of the image actually built from the sources; stale or
   foreign artifacts are refused (exit 2 at the CLI).
2. **Static verification** — the rebuilt image must pass ``check_image``
   and ``analyze_image`` with zero errors.
3. **Replay** — the rebuilt image re-runs the profiled workload; its
   results must be bit-identical and its modelled meters no worse than
   the profile recorded.  Frame/bank decisions that regress are dropped
   (and logged as refusals) rather than shipped; promotions are
   statically cheaper and never dropped.  A plan with nothing left is a
   no-op: the emitted image is byte-identical to the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import LinkOptions, link

from repro.fdo.decide import Plan, build_plan, plan_log
from repro.fdo.profile import PROFILE_SCHEMA, validate_profile


class FdoRefusal(ReproError):
    """The optimizer refused to rewrite (stale inputs, failed gates)."""


@dataclass
class OptimizeResult:
    """A verified rewrite: everything needed to rebuild it anywhere."""

    sources: list[str]
    impl: str
    entry: tuple[str, str]
    promotions: list[tuple[str, str, int]]
    fsi_overrides: dict[tuple[str, str], int]
    replenish_batch: int | None
    bank_count: int | None
    original_hash: str
    image_hash: str
    log: dict = field(default_factory=dict)

    def build(self) -> Machine:
        """A fresh machine for the optimized image."""
        return build_machine(
            self.sources,
            self.impl,
            self.entry,
            promotions=frozenset(self.promotions),
            fsi_overrides=self.fsi_overrides,
            replenish_batch=self.replenish_batch,
            bank_count=self.bank_count,
        )


def build_machine(
    sources: list[str],
    impl: str,
    entry: tuple[str, str],
    *,
    promotions: frozenset[tuple[str, str, int]] = frozenset(),
    fsi_overrides: dict[tuple[str, str], int] | None = None,
    replenish_batch: int | None = None,
    bank_count: int | None = None,
) -> Machine:
    """Deterministic build: same inputs, same fingerprint."""
    _, image = _compile_link(
        sources,
        impl,
        entry,
        promotions=promotions,
        fsi_overrides=fsi_overrides,
        replenish_batch=replenish_batch,
        bank_count=bank_count,
    )
    return Machine(image)


def _compile_link(
    sources: list[str],
    impl: str,
    entry: tuple[str, str],
    *,
    promotions: frozenset[tuple[str, str, int]] = frozenset(),
    fsi_overrides: dict[tuple[str, str], int] | None = None,
    replenish_batch: int | None = None,
    bank_count: int | None = None,
):
    config = MachineConfig.preset(impl)
    if bank_count is not None:
        config = config.but(bank_count=bank_count)
    modules = compile_program(
        sources, CompileOptions.for_config(config, promotions=promotions)
    )
    options = LinkOptions(fsi_overrides=dict(fsi_overrides or {}))
    if replenish_batch is not None:
        options.replenish_batch = replenish_batch
    image = link(modules, config, entry, options)
    return modules, image


def optimize(
    sources: list[str],
    impl: str,
    entry: tuple[str, str],
    profile: dict,
    facts: dict,
    *,
    min_calls: int = 2,
    replay: bool = True,
) -> OptimizeResult:
    """The whole pass: plan, rebuild, verify, replay, log.

    Raises :class:`FdoRefusal` when the inputs are stale or the rewrite
    cannot be proven sound.
    """
    from repro.check.interproc import FACTS_SCHEMA, image_fingerprint

    complaint = validate_profile(profile)
    if complaint:
        raise FdoRefusal(f"bad profile: {complaint}")
    if facts.get("schema") != FACTS_SCHEMA:
        raise FdoRefusal(
            f"bad facts: schema {facts.get('schema')!r} is not {FACTS_SCHEMA}"
        )
    if profile.get("impl") != impl:
        raise FdoRefusal(
            f"profile was collected on {profile.get('impl')!r} but the "
            f"rewrite targets {impl!r}; interest levels encode different "
            "linkage, so the evidence does not transfer"
        )

    modules, image = _compile_link(sources, impl, entry)
    original_hash = image_fingerprint(image)
    for label, doc in (("profile", profile), ("facts", facts)):
        if doc.get("image_hash") != original_hash:
            raise FdoRefusal(
                f"stale {label}: image_hash {doc.get('image_hash')!r} does "
                f"not match the built image {original_hash!r}"
            )

    config = MachineConfig.preset(impl)
    plan = build_plan(
        facts, profile, config, modules, image.ladder, min_calls=min_calls
    )

    # Fallback ladder: full plan, then without the frame/bank decisions,
    # then the no-op.  The first candidate that verifies and replays
    # no-worse wins.
    attempts: list[tuple[str, Plan]] = [("full", plan)]
    if not plan.is_noop and (
        plan.fsi_overrides
        or plan.replenish_batch is not None
        or plan.bank_count is not None
    ):
        attempts.append(("promotions-only", _promotions_only(plan)))
    attempts.append(("noop", _noop(plan)))

    last_reason = "no plan attempted"
    for label, candidate in attempts:
        machine, reason = _try_candidate(
            sources, impl, entry, candidate, profile, replay
        )
        if machine is None:
            last_reason = reason
            continue
        if label != "full":
            candidate.refusals.append(
                {
                    "aspect": "fallback",
                    "reason": f"dropped to {label}: {last_reason}",
                }
            )
        optimized_hash = image_fingerprint(machine.image)
        log = plan_log(
            candidate,
            impl,
            f"{entry[0]}.{entry[1]}",
            original_hash,
            optimized_hash,
        )
        return OptimizeResult(
            sources=list(sources),
            impl=impl,
            entry=entry,
            promotions=sorted(candidate.promotions),
            fsi_overrides=dict(candidate.fsi_overrides),
            replenish_batch=candidate.replenish_batch,
            bank_count=candidate.bank_count,
            original_hash=original_hash,
            image_hash=optimized_hash,
            log=log,
        )
    raise FdoRefusal(f"every candidate failed the gates: {last_reason}")


def _promotions_only(plan: Plan) -> Plan:
    kept = {"promote-site"}
    return Plan(
        promotions=set(plan.promotions),
        decisions=[d for d in plan.decisions if d["kind"] in kept],
        refusals=list(plan.refusals),
        block_order=list(plan.block_order),
    )


def _noop(plan: Plan) -> Plan:
    return Plan(
        refusals=list(plan.refusals), block_order=list(plan.block_order)
    )


def _try_candidate(
    sources: list[str],
    impl: str,
    entry: tuple[str, str],
    plan: Plan,
    profile: dict,
    replay: bool,
):
    """Build + verify + replay one candidate; (machine, "") or (None, why)."""
    from repro.check.checker import check_image
    from repro.check.interproc import analyze_image

    try:
        _, image = _compile_link(
            sources,
            impl,
            entry,
            promotions=frozenset(plan.promotions),
            fsi_overrides=plan.fsi_overrides,
            replenish_batch=plan.replenish_batch,
            bank_count=plan.bank_count,
        )
    except ReproError as fault:
        return None, f"rebuild failed: {fault}"
    report = check_image(image)
    if not report.ok:
        heads = "; ".join(
            f"{finding.check}: {finding.message}" for finding in report.errors[:3]
        )
        return None, f"check_image found errors: {heads}"
    analysis = analyze_image(image)
    if not analysis.ok:
        return None, "analyze_image found errors"
    machine = Machine(image)
    if replay:
        args = profile.get("args", [])
        machine.start(entry[0], entry[1], *args)
        try:
            results = machine.run()
        except ReproError as fault:
            return None, f"replay trapped: {fault}"
        if list(results) != list(profile.get("results", [])):
            return None, (
                f"replay results {list(results)} diverged from the "
                f"profiled run {profile.get('results')}"
            )
        meters = profile.get("meters", {})
        if machine.counter.cycles > meters.get("cycles", machine.counter.cycles):
            return None, (
                f"replay cost {machine.counter.cycles} cycles, worse than "
                f"the profiled {meters['cycles']}"
            )
        refs = machine.counter.memory_references
        if refs > meters.get("memory_references", refs):
            return None, (
                f"replay made {refs} memory references, worse than the "
                f"profiled {meters['memory_references']}"
            )
        # The replay dirtied the image's memory and meters; hand back a
        # fresh deterministic rebuild instead.
        _, image = _compile_link(
            sources,
            impl,
            entry,
            promotions=frozenset(plan.promotions),
            fsi_overrides=plan.fsi_overrides,
            replenish_batch=plan.replenish_batch,
            bank_count=plan.bank_count,
        )
        machine = Machine(image)
    return machine, ""
