"""Reproduction of Butler W. Lampson, *Fast Procedure Calls* (ASPLOS 1982).

A behavioral simulation of the paper's entire stack:

* the **control-transfer model** — contexts and the XFER primitive
  (:mod:`repro.core`);
* the **encoding** — a Mesa-like stack bytecode with the paper's four
  call linkages (:mod:`repro.isa`), its tables (:mod:`repro.mesa`), and
  its frame heap (:mod:`repro.alloc`);
* the **interpreter** — one machine covering implementations I1-I4 via
  configuration (:mod:`repro.interp`), including the IFU return stack
  (:mod:`repro.ifu`) and the register banks (:mod:`repro.banks`);
* the **compiler** — a small Mesa-like language to feed it realistic
  programs (:mod:`repro.lang`);
* **workloads and analyses** behind every figure and quantitative claim
  (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import build_machine, MachineConfig

    SOURCE = '''
    MODULE Main;
    PROCEDURE fib(n): INT;
    BEGIN
      IF n < 2 THEN RETURN n; END;
      RETURN fib(n - 1) + fib(n - 2);
    END;
    PROCEDURE main(): INT;
    BEGIN
      RETURN fib(10);
    END;
    END.
    '''

    machine = build_machine([SOURCE], MachineConfig.i4(), entry=("Main", "main"))
    print(machine.run())          # [55]
    print(machine.report())       # cycles, memory refs, hit rates, ...
"""

from repro.interp.machine import Machine
from repro.interp.machineconfig import (
    ArgConvention,
    FrameAllocatorKind,
    LinkageKind,
    MachineConfig,
)


def build_machine(
    sources: list[str],
    config: MachineConfig | None = None,
    entry: tuple[str, str] = ("Main", "main"),
    multi_instance: frozenset[str] = frozenset(),
    link_options=None,
) -> Machine:
    """Compile, link, and load a program in one call.

    *sources* are module source texts; *config* picks the implementation
    (default I2, the Mesa scheme); *entry* names the main procedure.  The
    returned machine is started at the entry with no arguments — call
    :meth:`Machine.run`, or :meth:`Machine.start` again with arguments.
    """
    from repro.lang.compiler import CompileOptions, compile_program
    from repro.lang.linker import LinkOptions, link

    config = config or MachineConfig.i2()
    options = CompileOptions.for_config(config, multi_instance=multi_instance)
    modules = compile_program(sources, options)
    image = link(modules, config, entry, link_options or LinkOptions())
    machine = Machine(image)
    machine.start()
    return machine


__version__ = "1.0.0"

__all__ = [
    "ArgConvention",
    "FrameAllocatorKind",
    "LinkageKind",
    "Machine",
    "MachineConfig",
    "build_machine",
    "__version__",
]
