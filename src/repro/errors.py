"""Exception hierarchy for the Fast Procedure Calls reproduction.

Every error raised by the library derives from :class:`ReproError`, so a
caller can catch one type to handle anything that goes wrong in the
simulator, the compiler, or the allocators.  The sub-hierarchies mirror the
package layout: machine-level faults, encoding/assembly errors, allocation
failures, transfer (XFER) errors, and compiler diagnostics.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Machine substrate
# ---------------------------------------------------------------------------


class MachineError(ReproError):
    """Base class for faults raised by the simulated machine."""


class MemoryFault(MachineError):
    """An access touched an address outside the simulated memory."""

    def __init__(self, address: int, size: int) -> None:
        super().__init__(f"address {address:#x} outside memory of {size} words")
        self.address = address
        self.size = size


class UnwritableMemory(MachineError):
    """A write touched a region registered as read-only."""

    def __init__(self, address: int, region: str) -> None:
        super().__init__(f"write to {address:#x} in read-only region {region!r}")
        self.address = address
        self.region = region


class WordRangeError(MachineError):
    """A value did not fit in a 16-bit machine word."""

    def __init__(self, value: int) -> None:
        super().__init__(f"value {value} does not fit in a 16-bit word")
        self.value = value


class EvalStackOverflow(MachineError):
    """The evaluation stack exceeded its configured depth.

    The Mesa architecture keeps the evaluation stack small (it must fit in
    processor registers); overflow is a hard fault the compiler must avoid
    by spilling, so the simulator treats it as an error rather than growing
    the stack.
    """


class EvalStackUnderflow(MachineError):
    """A pop was attempted on an empty evaluation stack."""


# ---------------------------------------------------------------------------
# Encoding / ISA
# ---------------------------------------------------------------------------


class EncodingError(ReproError):
    """Base class for errors in the instruction encoding layer."""


class DecodeError(EncodingError):
    """Decoding an instruction stream failed at a known byte offset.

    Carries ``offset`` so that tooling over untrusted bytes (the static
    checker, the fuzz harness) can report exactly where decode went
    wrong instead of guessing from a message string.
    """

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(message)
        self.offset = offset


class UnknownOpcode(DecodeError):
    """Decode hit a byte that is not a defined opcode."""

    def __init__(self, byte: int, pc: int) -> None:
        super().__init__(f"unknown opcode {byte:#04x} at pc={pc:#x}", pc)
        self.byte = byte
        self.pc = pc


class OperandRangeError(EncodingError):
    """An instruction operand does not fit its encoded field."""


class TruncatedInstruction(DecodeError, OperandRangeError):
    """An instruction's operand bytes run past the end of the stream.

    Subclasses :class:`OperandRangeError` for backward compatibility
    (callers historically caught that for truncation) and
    :class:`DecodeError` so the offset is structured, not textual.
    """

    def __init__(self, op_name: str, pc: int, needed: int, available: int) -> None:
        DecodeError.__init__(
            self,
            f"{op_name} at pc={pc:#x} needs {needed} byte(s) but only "
            f"{available} remain",
            pc,
        )
        self.op_name = op_name
        self.needed = needed
        self.available = available


class AssemblyError(EncodingError):
    """The assembler rejected a symbolic program (bad label, operand...)."""


class LinkError(EncodingError):
    """The linker could not bind an external reference."""


# ---------------------------------------------------------------------------
# Allocation
# ---------------------------------------------------------------------------


class AllocationError(ReproError):
    """Base class for frame-heap failures."""


class HeapExhausted(AllocationError):
    """The heap (or the software allocator behind it) is out of space."""


class FrameSizeError(AllocationError):
    """A requested frame size has no size class, or an fsi is invalid."""


class DoubleFree(AllocationError):
    """A frame was freed twice, or a free hit an address never allocated."""

    def __init__(self, address: int) -> None:
        super().__init__(f"free of {address:#x} which is not allocated")
        self.address = address


# ---------------------------------------------------------------------------
# Control transfer
# ---------------------------------------------------------------------------


class TransferError(ReproError):
    """Base class for XFER-level errors."""


class InvalidContext(TransferError):
    """An XFER destination is not a valid context (NIL, freed, garbage)."""


class ReturnFromReturn(TransferError):
    """A RETURN executed while returnContext is NIL (paper section 4:
    'an attempt to return from this return would be an error')."""


class DanglingFrame(TransferError):
    """A transfer targeted a frame that has already been freed."""


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------


class InterpreterError(ReproError):
    """Base class for interpreter-loop failures."""


class StepLimitExceeded(InterpreterError):
    """Execution ran past the configured instruction budget."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"execution exceeded step limit of {limit}")
        self.limit = limit


class MachineHalted(InterpreterError):
    """An operation was attempted on a machine that has halted."""


class TrapError(InterpreterError):
    """A trap occurred with no registered handler for it.

    Carries the exact diagnostics the chaos harness pins down: ``pc``
    (the address of the instruction *after* the faulting one, i.e. where
    a trap context would resume) and ``proc`` (the qualified name of the
    procedure whose frame was running).  ``pc`` is -1 and ``proc`` empty
    when the machine had no running context to attribute the trap to.
    """

    def __init__(self, trap: str, detail: str = "", pc: int = -1, proc: str = "") -> None:
        message = f"unhandled trap {trap!r}"
        if detail:
            message += f": {detail}"
        if pc >= 0:
            message += f" (pc {pc:#06x}"
            if proc:
                message += f" in {proc}"
            message += ")"
        super().__init__(message)
        self.trap = trap
        self.detail = detail
        self.pc = pc
        self.proc = proc


# ---------------------------------------------------------------------------
# Remote XFER (repro.net)
# ---------------------------------------------------------------------------


class NetError(ReproError):
    """Base class for Remote XFER and serving-layer failures."""


class WireError(NetError):
    """A wire message could not be encoded, decoded, or validated."""


class TruncatedFrameError(WireError):
    """A byte stream ended mid-frame: the peer closed with unterminated
    bytes still buffered.

    Raised instead of silently discarding the partial frame — a
    truncated transfer record is data loss, and the reader must surface
    it so the retry/dedup discipline (or the operator) can act on it.
    Carries ``buffered``, the number of orphaned bytes.
    """

    def __init__(self, buffered: int, preview: str = "") -> None:
        message = (
            f"peer closed mid-frame: {buffered} unterminated byte(s) buffered"
        )
        if preview:
            message += f" (frame starts {preview!r})"
        super().__init__(message)
        self.buffered = buffered


class RouteError(NetError):
    """A request could not be routed (unknown shard, bad placement)."""


class LostRequest(NetError):
    """A remote call exhausted its retries without a reply."""

    def __init__(self, request_id: int, attempts: int, target: str) -> None:
        super().__init__(
            f"request {request_id} to {target} lost after {attempts} attempt(s)"
        )
        self.request_id = request_id
        self.attempts = attempts
        self.target = target


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


class CompileError(ReproError):
    """Base class for compiler diagnostics; carries a source position."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class LexError(CompileError):
    """The lexer met a character it cannot tokenize."""


class ParseError(CompileError):
    """The parser met an unexpected token."""


class SemanticError(CompileError):
    """Name resolution or type checking failed."""


# ---------------------------------------------------------------------------
# Static checker
# ---------------------------------------------------------------------------


class CheckFailed(ReproError):
    """The static verifier found errors in a module or linked image.

    Raised by the ``check=True`` hooks in :func:`repro.lang.compiler.
    compile_program` and :func:`repro.lang.linker.link`; carries the full
    :class:`repro.check.diagnostics.CheckReport` for programmatic access.
    """

    def __init__(self, report) -> None:  # noqa: ANN001 - avoids an import cycle
        errors = [d for d in report.diagnostics if d.severity.value == "error"]
        summary = "; ".join(d.message for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... {len(errors) - 3} more"
        super().__init__(f"static check failed with {len(errors)} error(s): {summary}")
        self.report = report
