"""Instruction values and their byte-level encode/decode.

An :class:`Instruction` is an opcode plus an optional integer operand; the
module knows how to serialize it to the 1-4 byte wire form and back.
Multi-byte operands are big-endian.  Signed operands (jump displacements,
``SDFC``) are two's complement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OperandRangeError, TruncatedInstruction, UnknownOpcode
from repro.isa.opcodes import OPERAND_KINDS, Op, OperandKind, instruction_length

#: Valid operand ranges per kind (inclusive).
_RANGES: dict[OperandKind, tuple[int, int]] = {
    OperandKind.NONE: (0, 0),
    OperandKind.U8: (0, 0xFF),
    OperandKind.S8: (-0x80, 0x7F),
    OperandKind.U16: (0, 0xFFFF),
    OperandKind.S16: (-0x8000, 0x7FFF),
    OperandKind.A24: (0, 0xFFFFFF),
}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction: opcode plus operand (0 when none)."""

    op: Op
    operand: int = 0

    def __post_init__(self) -> None:
        kind = OPERAND_KINDS[self.op]
        low, high = _RANGES[kind]
        if not low <= self.operand <= high:
            raise OperandRangeError(
                f"{self.op.name} operand {self.operand} outside [{low}, {high}]"
            )

    @property
    def length(self) -> int:
        """Encoded length in bytes."""
        return instruction_length(self.op)

    def __str__(self) -> str:
        if OPERAND_KINDS[self.op] is OperandKind.NONE:
            return self.op.name
        return f"{self.op.name} {self.operand}"


def encode(instruction: Instruction) -> bytes:
    """Serialize one instruction to its wire bytes."""
    kind = OPERAND_KINDS[instruction.op]
    operand = instruction.operand
    if kind is OperandKind.NONE:
        return bytes([int(instruction.op)])
    if kind is OperandKind.U8:
        return bytes([int(instruction.op), operand])
    if kind is OperandKind.S8:
        return bytes([int(instruction.op), operand & 0xFF])
    if kind is OperandKind.U16:
        return bytes([int(instruction.op), (operand >> 8) & 0xFF, operand & 0xFF])
    if kind is OperandKind.S16:
        raw = operand & 0xFFFF
        return bytes([int(instruction.op), (raw >> 8) & 0xFF, raw & 0xFF])
    # A24
    return bytes(
        [
            int(instruction.op),
            (operand >> 16) & 0xFF,
            (operand >> 8) & 0xFF,
            operand & 0xFF,
        ]
    )


def decode(code: bytes | bytearray, pc: int) -> Instruction:
    """Decode the instruction starting at byte offset *pc* of *code*.

    Raises :class:`UnknownOpcode` for undefined bytes and
    :class:`TruncatedInstruction` (a structured :class:`OperandRangeError`
    carrying the offset) if the code is truncated mid-operand.  Both share
    the :class:`repro.errors.DecodeError` base, so callers decoding
    untrusted bytes can catch one type and recover the offset.
    """
    if not 0 <= pc < len(code):
        raise UnknownOpcode(-1, pc)
    byte = code[pc]
    try:
        op = Op(byte)
    except ValueError:
        raise UnknownOpcode(byte, pc) from None
    kind = OPERAND_KINDS[op]
    needed = instruction_length(op)
    if pc + needed > len(code):
        raise TruncatedInstruction(op.name, pc, needed, len(code) - pc)
    if kind is OperandKind.NONE:
        return Instruction(op)
    if kind is OperandKind.U8:
        return Instruction(op, code[pc + 1])
    if kind is OperandKind.S8:
        raw = code[pc + 1]
        return Instruction(op, raw - 0x100 if raw >= 0x80 else raw)
    if kind is OperandKind.U16:
        return Instruction(op, (code[pc + 1] << 8) | code[pc + 2])
    if kind is OperandKind.S16:
        raw = (code[pc + 1] << 8) | code[pc + 2]
        return Instruction(op, raw - 0x10000 if raw >= 0x8000 else raw)
    # A24
    return Instruction(op, (code[pc + 1] << 16) | (code[pc + 2] << 8) | code[pc + 3])
