"""Program structure: procedures, module code segments, the code space.

Section 5 fixes the geography this module reproduces:

* "The code for all the procedures is collected in a *code segment*; the
  base address of this segment is called the *code base*."
* "An entry vector EV associated with a module, with a 16 bit entry for
  each procedure in the module which holds the address of the procedure's
  first byte (relative to the code base).  This first byte gives the size
  of the procedure's frame (see section 5.3), and the procedure's code
  starts at the following byte.  EV starts at the code base."

So a module's segment is laid out as ``[EV entries][fsi byte, body]*`` and
the whole program's segments are concatenated into one byte-addressed
:class:`CodeSpace` (giving DIRECTCALL its flat 24-bit program address
space).  Data-dependent reads of code (EV entries, fsi bytes, the GF/fsi
words a DIRECTCALL target carries) are *counted* memory references;
ordinary instruction fetch is the IFU's business and is charged as decode
events by the interpreter instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EncodingError
from repro.machine.costs import CycleCounter, Event

#: Bytes per entry-vector entry (16-bit offsets, as in the paper).
EV_ENTRY_BYTES = 2

#: Frame header words preceding the locals: returnLink, globalFrame, savedPC.
FRAME_HEADER_WORDS = 3

#: Words a DIRECTCALL target carries before its first instruction:
#: the global frame address (one word = two bytes) and the fsi (one byte).
#: Section 6: "at p is stored the global frame address GF and the frame
#: size fsi, immediately followed by the first instruction".
DFC_HEADER_BYTES = 3


@dataclass
class Procedure:
    """One procedure's compiled body, before linking.

    ``frame_words`` is the full frame size in words including the
    :data:`FRAME_HEADER_WORDS` header (return link, global frame, saved
    PC); the compiler computes it from the argument/local/temporary count.
    ``body`` holds the instruction bytes only — the fsi byte that precedes
    them in the segment is chosen at link time, when the size-class ladder
    is known.
    """

    name: str
    ev_index: int
    arg_count: int
    result_count: int
    frame_words: int
    body: bytes
    #: True if callers outside the module may call it (affects LV layout).
    exported: bool = True
    #: Filled in when the module segment is built: offset of the fsi byte
    #: relative to the code base.
    entry_offset: int = -1
    #: Offset of the DIRECTCALL header (the inline GF word) relative to the
    #: code base, or -1 when the segment was built without direct headers.
    direct_offset: int = -1
    #: Compiler-declared symbol metadata the interprocedural analyzer
    #: (:mod:`repro.check.interproc`) cross-checks against the bytecode.
    #: ``performs_xfer`` — the body contains a general ``XF`` transfer;
    #: ``captures_context`` — the body takes a context word (``LLC``/
    #: ``LRC``), so a live frame of this procedure can escape and later
    #: be XFERed into.  ``None`` means undeclared (hand-assembled code);
    #: the analyzer then falls back to its own bytecode scan silently.
    performs_xfer: bool | None = None
    captures_context: bool | None = None

    @property
    def local_words(self) -> int:
        """Words of arguments + locals + temporaries (frame minus header)."""
        return self.frame_words - FRAME_HEADER_WORDS


@dataclass(frozen=True)
class CallFixup:
    """A direct-call site the linker must patch (section 6, D3).

    ``site_offset`` is the offset of the call opcode byte within the
    procedure *body* (after the fsi byte).  ``kind`` is ``"dfc"`` (24-bit
    absolute operand) or ``"sdfc"`` (16-bit PC-relative operand).  The
    target names a procedure, possibly in another module; the linker
    resolves it to that procedure's DIRECTCALL header address.
    """

    procedure: str
    site_offset: int
    kind: str
    target_module: str
    target_procedure: str


@dataclass
class ModuleCode:
    """A compiled module: its procedures, globals, and external references.

    ``imports`` lists the qualified names this module calls externally, in
    link-vector order; the linker resolves each to a procedure descriptor
    (I2) or wide address pair (I1).  ``global_words`` is the number of
    global variable words its global frame needs beyond the frame header.
    ``fixups`` are direct-call sites to patch at link time.
    """

    name: str
    procedures: list[Procedure] = field(default_factory=list)
    imports: list[tuple[str, str]] = field(default_factory=list)
    global_words: int = 0
    fixups: list[CallFixup] = field(default_factory=list)
    #: Built by :meth:`build_segment`.
    segment: bytes = b""

    def procedure_named(self, name: str) -> Procedure:
        """Look up a procedure by name; raises :class:`EncodingError`."""
        for procedure in self.procedures:
            if procedure.name == name:
                return procedure
        raise EncodingError(f"module {self.name!r} has no procedure {name!r}")

    def import_index(self, module: str, procedure: str) -> int:
        """Link-vector index of an external reference, adding it if new."""
        key = (module, procedure)
        try:
            return self.imports.index(key)
        except ValueError:
            self.imports.append(key)
            return len(self.imports) - 1

    def build_segment(
        self,
        fsi_of_procedure: dict[str, int],
        direct_headers: bool | frozenset[str] | set[str] = False,
    ) -> bytes:
        """Lay out ``[EV][(GF word,) fsi byte, body]*`` and record offsets.

        *fsi_of_procedure* maps procedure name to its frame-size index
        (assigned by the linker from the ladder).  With *direct_headers*
        each procedure is preceded by a two-byte slot for its global frame
        address, making it a valid DIRECTCALL target (section 6); the
        linker patches the actual GF value in once global frames are
        placed.  ``True`` headers every procedure (DIRECT linkage); a set
        of procedure names headers only those — the selective form the
        feedback-directed optimizer uses to promote hot targets while the
        module otherwise stays on MESA/SIMPLE linkage.  The entry-vector
        offsets always address the fsi byte, so EXTERNALCALL/LOCALCALL
        work unchanged either way — that is the paper's fallback
        compatibility (D2).  Returns the segment bytes and caches them in
        :attr:`segment`.
        """
        if len(self.procedures) == 0:
            raise EncodingError(f"module {self.name!r} has no procedures")
        ev_bytes = len(self.procedures) * EV_ENTRY_BYTES
        offset = ev_bytes
        entries: list[int] = []
        bodies = bytearray()
        for procedure in sorted(self.procedures, key=lambda p: p.ev_index):
            fsi = fsi_of_procedure[procedure.name]
            if not 0 <= fsi <= 0xFF:
                raise EncodingError(f"fsi {fsi} does not fit the frame-size byte")
            if direct_headers is True or (
                not isinstance(direct_headers, bool)
                and procedure.name in direct_headers
            ):
                procedure.direct_offset = offset
                bodies.extend(b"\x00\x00")  # GF slot, patched at link time
                offset += 2
            else:
                procedure.direct_offset = -1
            procedure.entry_offset = offset
            entries.append(offset)
            bodies.append(fsi)
            bodies.extend(procedure.body)
            offset += 1 + len(procedure.body)
        if offset > 0xFFFF:
            raise EncodingError(
                f"module {self.name!r} segment of {offset} bytes exceeds the "
                "16-bit entry-vector offset range"
            )
        ev = bytearray()
        for entry in entries:
            ev.append((entry >> 8) & 0xFF)
            ev.append(entry & 0xFF)
        self.segment = bytes(ev) + bytes(bodies)
        return self.segment


class CodeSpace:
    """The program's flat, byte-addressed code store.

    Module segments are appended with :meth:`place`; each placement
    returns the module's *code base*.  ``fetch_byte`` is the IFU's
    (uncounted) instruction fetch; the ``read_*`` methods are counted data
    references used when the machine consults code-resident tables (entry
    vectors, fsi bytes, DIRECTCALL headers).
    """

    #: DIRECTCALL carries a 24-bit address (section 6, D1).
    LIMIT = 1 << 24

    def __init__(self, counter: CycleCounter | None = None) -> None:
        self.counter = counter or CycleCounter()
        self._bytes = bytearray()
        self._bases: dict[str, int] = {}
        #: Bumped on every mutation (placement, patch, append) so that
        #: interpreters can invalidate their decode caches.
        self.epoch = 0

    def place(self, module: ModuleCode) -> int:
        """Append *module*'s built segment; return its code base."""
        if not module.segment:
            raise EncodingError(f"module {module.name!r} segment not built")
        if module.name in self._bases:
            raise EncodingError(f"module {module.name!r} placed twice")
        base = len(self._bytes)
        if base + len(module.segment) > self.LIMIT:
            raise EncodingError("code space exceeds the 24-bit address limit")
        self._bases[module.name] = base
        self._bytes.extend(module.segment)
        self.epoch += 1
        return base

    def base_of(self, module_name: str) -> int:
        """Code base of a placed module."""
        return self._bases[module_name]

    @property
    def size(self) -> int:
        """Total code bytes placed."""
        return len(self._bytes)

    @property
    def raw(self) -> bytes:
        """The code bytes (for the disassembler and analyses)."""
        return bytes(self._bytes)

    # -- IFU fetch (uncounted data traffic; charged as decode events) -------

    def fetch_byte(self, address: int) -> int:
        """Instruction-stream byte fetch."""
        self._check(address)
        return self._bytes[address]

    @property
    def buffer(self) -> bytearray:
        """The live code buffer (no copy) — the interpreter decodes from it."""
        return self._bytes

    # -- counted data references into code -----------------------------------

    def read_word(self, address: int) -> int:
        """Counted 16-bit big-endian read (one memory reference)."""
        self._check(address + 1)
        self.counter.record(Event.MEMORY_READ)
        return (self._bytes[address] << 8) | self._bytes[address + 1]

    def read_byte(self, address: int) -> int:
        """Counted byte read (one memory reference)."""
        self._check(address)
        self.counter.record(Event.MEMORY_READ)
        return self._bytes[address]

    def read_ev_entry(self, code_base: int, index: int) -> int:
        """Counted entry-vector read: byte offset of procedure *index*."""
        return self.read_word(code_base + index * EV_ENTRY_BYTES)

    # -- link-time fixups ------------------------------------------------------

    def patch_word(self, address: int, value: int) -> None:
        """Uncounted 16-bit store, for the linker's DIRECTCALL GF fixups.

        This is D3's 'fixing up addresses throughout the code, as is
        traditional in conventional linkers' — a link-time operation, so
        it does not appear in the run-time reference counts.
        """
        self._check(address + 1)
        self._bytes[address] = (value >> 8) & 0xFF
        self._bytes[address + 1] = value & 0xFF
        self.epoch += 1

    def _check(self, address: int) -> None:
        if not 0 <= address < len(self._bytes):
            raise EncodingError(
                f"code address {address:#x} outside code space of "
                f"{len(self._bytes)} bytes"
            )
