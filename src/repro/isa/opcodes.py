"""Opcode definitions for the Mesa-like stack bytecode.

Encoding philosophy (section 5): "It uses instructions which are one, two
or three bytes long; about two-thirds of the instructions compiled for a
large sample of source programs occupy a single byte.  The encoding uses a
stack ... and is heavily optimized for references to local variables."

Accordingly the most common operations get dedicated one-byte opcodes:
loads/stores of the first eight locals, small immediates, arithmetic,
comparisons, and the eight statically most frequent external calls per
module (``EFC0``-``EFC7``).  The byte-length census benchmark (C2 in
DESIGN.md) measures the resulting distribution.

The four-byte ``DFC`` is the deliberate exception: section 6 trades those
extra bytes for jump-speed instruction fetch ("The call instruction is
larger: four bytes instead of one, for a 24-bit program address space").
"""

from __future__ import annotations

import enum


class OperandKind(enum.Enum):
    """How an instruction's operand bytes are interpreted."""

    NONE = "none"  # no operand bytes
    U8 = "u8"  # one unsigned byte
    S8 = "s8"  # one signed byte (PC-relative jumps)
    U16 = "u16"  # two bytes, unsigned, big-endian
    S16 = "s16"  # two bytes, signed, big-endian (SHORTDIRECTCALL)
    A24 = "a24"  # three bytes, unsigned code address (DIRECTCALL)


#: Operand byte counts per kind.
_OPERAND_BYTES: dict[OperandKind, int] = {
    OperandKind.NONE: 0,
    OperandKind.U8: 1,
    OperandKind.S8: 1,
    OperandKind.U16: 2,
    OperandKind.S16: 2,
    OperandKind.A24: 3,
}

#: The full opcode table: (name, operand kind, one-line description).
#: Byte values are assigned by position, so the order is part of the
#: encoding and must not be rearranged once programs are serialized.
_TABLE: list[tuple[str, OperandKind, str]] = [
    ("NOOP", OperandKind.NONE, "do nothing"),
    ("HALT", OperandKind.NONE, "stop the machine; the stack holds results"),
    ("BRK", OperandKind.NONE, "breakpoint trap"),
    # -- immediates ---------------------------------------------------------
    ("LIN1", OperandKind.NONE, "push -1"),
    ("LI0", OperandKind.NONE, "push 0"),
    ("LI1", OperandKind.NONE, "push 1"),
    ("LI2", OperandKind.NONE, "push 2"),
    ("LI3", OperandKind.NONE, "push 3"),
    ("LI4", OperandKind.NONE, "push 4"),
    ("LI5", OperandKind.NONE, "push 5"),
    ("LI6", OperandKind.NONE, "push 6"),
    ("LI7", OperandKind.NONE, "push 7"),
    ("LIB", OperandKind.U8, "push unsigned byte literal"),
    ("LIW", OperandKind.U16, "push 16-bit literal"),
    # -- local variables (frame-relative, the hot path of section 5) --------
    ("LL0", OperandKind.NONE, "push local 0"),
    ("LL1", OperandKind.NONE, "push local 1"),
    ("LL2", OperandKind.NONE, "push local 2"),
    ("LL3", OperandKind.NONE, "push local 3"),
    ("LL4", OperandKind.NONE, "push local 4"),
    ("LL5", OperandKind.NONE, "push local 5"),
    ("LL6", OperandKind.NONE, "push local 6"),
    ("LL7", OperandKind.NONE, "push local 7"),
    ("LLB", OperandKind.U8, "push local n"),
    ("SL0", OperandKind.NONE, "pop into local 0"),
    ("SL1", OperandKind.NONE, "pop into local 1"),
    ("SL2", OperandKind.NONE, "pop into local 2"),
    ("SL3", OperandKind.NONE, "pop into local 3"),
    ("SL4", OperandKind.NONE, "pop into local 4"),
    ("SL5", OperandKind.NONE, "pop into local 5"),
    ("SL6", OperandKind.NONE, "pop into local 6"),
    ("SL7", OperandKind.NONE, "pop into local 7"),
    ("SLB", OperandKind.U8, "pop into local n"),
    ("LLA", OperandKind.U8, "push the address of local n (section 7.4)"),
    # -- global variables ----------------------------------------------------
    ("LG", OperandKind.U8, "push global n of the current module instance"),
    ("SG", OperandKind.U8, "pop into global n"),
    ("LGA", OperandKind.U8, "push the address of global n"),
    # -- indirect memory -----------------------------------------------------
    ("RD", OperandKind.NONE, "pop address, push memory word at it"),
    ("WR", OperandKind.NONE, "pop address, pop value, store value at address"),
    # -- arithmetic / logic ---------------------------------------------------
    ("ADD", OperandKind.NONE, "pop b, pop a, push a + b"),
    ("SUB", OperandKind.NONE, "pop b, pop a, push a - b"),
    ("MUL", OperandKind.NONE, "pop b, pop a, push a * b"),
    ("DIV", OperandKind.NONE, "pop b, pop a, push a div b (signed, trap on 0)"),
    ("MOD", OperandKind.NONE, "pop b, pop a, push a mod b (signed, trap on 0)"),
    ("NEG", OperandKind.NONE, "negate the top of stack"),
    ("AND", OperandKind.NONE, "bitwise and"),
    ("OR", OperandKind.NONE, "bitwise or"),
    ("XOR", OperandKind.NONE, "bitwise xor"),
    ("NOT", OperandKind.NONE, "bitwise complement"),
    ("SHL", OperandKind.NONE, "pop count, pop value, push value << count"),
    ("SHR", OperandKind.NONE, "pop count, pop value, push value >> count (logical)"),
    # -- comparisons (signed; push 1 or 0) -------------------------------------
    ("EQ", OperandKind.NONE, "push a == b"),
    ("NE", OperandKind.NONE, "push a != b"),
    ("LT", OperandKind.NONE, "push a < b (signed)"),
    ("LE", OperandKind.NONE, "push a <= b (signed)"),
    ("GT", OperandKind.NONE, "push a > b (signed)"),
    ("GE", OperandKind.NONE, "push a >= b (signed)"),
    # -- stack manipulation ----------------------------------------------------
    ("DUP", OperandKind.NONE, "duplicate the top of stack"),
    ("POP", OperandKind.NONE, "discard the top of stack"),
    ("EXCH", OperandKind.NONE, "exchange the top two stack words"),
    # -- jumps (PC-relative to the following instruction) ----------------------
    ("JB", OperandKind.S8, "jump by signed byte offset"),
    ("JW", OperandKind.S16, "jump by signed word offset"),
    ("JZB", OperandKind.S8, "pop; jump if zero"),
    ("JNZB", OperandKind.S8, "pop; jump if nonzero"),
    ("JZW", OperandKind.S16, "pop; long jump if zero"),
    ("JNZW", OperandKind.S16, "pop; long jump if nonzero"),
    # -- control transfers -------------------------------------------------------
    ("EFC0", OperandKind.NONE, "external call, link vector index 0"),
    ("EFC1", OperandKind.NONE, "external call, link vector index 1"),
    ("EFC2", OperandKind.NONE, "external call, link vector index 2"),
    ("EFC3", OperandKind.NONE, "external call, link vector index 3"),
    ("EFC4", OperandKind.NONE, "external call, link vector index 4"),
    ("EFC5", OperandKind.NONE, "external call, link vector index 5"),
    ("EFC6", OperandKind.NONE, "external call, link vector index 6"),
    ("EFC7", OperandKind.NONE, "external call, link vector index 7"),
    ("EFCB", OperandKind.U8, "external call, link vector index n"),
    ("LFC", OperandKind.U8, "local call, entry vector index n (same module)"),
    ("DFC", OperandKind.A24, "DIRECTCALL to an absolute code address (section 6)"),
    ("SDFC", OperandKind.S16, "SHORTDIRECTCALL, PC-relative (section 6, D1)"),
    ("RET", OperandKind.NONE, "free the frame; XFER to the return link"),
    ("XF", OperandKind.NONE, "pop a context word; general transfer (section 3)"),
    ("LRC", OperandKind.NONE, "push the returnContext register as a context word"),
    ("LLC", OperandKind.NONE, "push the current context (local frame) word"),
    # -- processes / misc ----------------------------------------------------------
    ("YIELD", OperandKind.NONE, "voluntary process switch (scheduler XFER)"),
    ("OUT", OperandKind.NONE, "pop a word and append it to the machine output"),
    # -- storage management (section 4: retained frames, long records) -----------
    ("RETAIN", OperandKind.NONE, "mark the current frame retained (RETURN won't free it)"),
    ("ALOC", OperandKind.NONE, "pop a word count; allocate a record from the frame heap, push its pointer"),
    ("FREE", OperandKind.NONE, "pop a pointer; free the record or retained frame it denotes"),
]

Op = enum.IntEnum("Op", [(name, index) for index, (name, _, _) in enumerate(_TABLE)])
Op.__doc__ = """Opcode byte values; ``int(op)`` is the encoded byte."""

#: Operand kind of each opcode.
OPERAND_KINDS: dict[Op, OperandKind] = {
    Op[name]: kind for name, kind, _ in _TABLE
}

#: One-line description of each opcode (used by the disassembler).
DESCRIPTIONS: dict[Op, str] = {Op[name]: doc for name, _, doc in _TABLE}

#: The one-byte external-call opcodes, in index order (section 5.1: "There
#: are a number of one-byte opcodes, so that the (statically) most
#: frequently called procedures in a module can be called in a single
#: byte").
SHORT_EFC_OPS: tuple[Op, ...] = (
    Op.EFC0,
    Op.EFC1,
    Op.EFC2,
    Op.EFC3,
    Op.EFC4,
    Op.EFC5,
    Op.EFC6,
    Op.EFC7,
)

#: Opcodes that transfer control to another context.
CALL_OPS: frozenset[Op] = frozenset(
    {*SHORT_EFC_OPS, Op.EFCB, Op.LFC, Op.DFC, Op.SDFC}
)

#: All control-transfer opcodes (calls, return, general XFER, YIELD).
TRANSFER_OPS: frozenset[Op] = frozenset({*CALL_OPS, Op.RET, Op.XF, Op.YIELD})

#: The conditional/unconditional jump opcodes.
JUMP_OPS: frozenset[Op] = frozenset(
    {Op.JB, Op.JW, Op.JZB, Op.JNZB, Op.JZW, Op.JNZW}
)


def operand_bytes(op: Op) -> int:
    """Number of operand bytes following the opcode byte."""
    return _OPERAND_BYTES[OPERAND_KINDS[op]]


def instruction_length(op: Op) -> int:
    """Total encoded length in bytes, opcode included."""
    return 1 + operand_bytes(op)


def is_call(op: Op) -> bool:
    """True if *op* calls a procedure (allocates a new context)."""
    return op in CALL_OPS


def is_transfer(op: Op) -> bool:
    """True if *op* is any control transfer (call, return, XFER, yield)."""
    return op in TRANSFER_OPS


def short_local_op(base: Op, index: int, limit: int = 8) -> Op | None:
    """Map an index to a one-byte short form (LL0.., SL0.., LI0.., EFC0..).

    Returns None when *index* is out of the short range and the long
    (two-byte) form must be used instead.
    """
    if 0 <= index < limit:
        return Op(int(base) + index)
    return None
