"""The instruction encoding (the paper's "encoding" level, section 2).

A Mesa-flavoured stack bytecode with one-, two-, three- and four-byte
instructions.  The design criteria follow section 5: economy of space, a
stack rather than registers for working storage, heavy optimization of
local-variable references, and one-byte opcodes for the statically most
frequent external calls.

Call instructions cover the whole implementation ladder:

* ``EFC0``-``EFC7`` / ``EFCB`` — external call through the link vector
  (I1 uses wide LV entries, I2 the packed descriptors of section 5.1);
* ``LFC`` — same-module call through the entry vector only;
* ``DFC`` — the statically bound DIRECTCALL of section 6 (4 bytes,
  24-bit code address, GF and fsi stored at the target);
* ``SDFC`` — the PC-relative SHORTDIRECTCALL (3 bytes);
* ``RET`` — free the frame and XFER to the return link;
* ``XF`` — the fully general transfer, for coroutines and anything else.
"""

from repro.isa.assembler import Assembler
from repro.isa.disassembler import disassemble, format_listing
from repro.isa.instruction import Instruction, decode, encode
from repro.isa.opcodes import (
    OPERAND_KINDS,
    Op,
    OperandKind,
    instruction_length,
    is_call,
    is_transfer,
)
from repro.isa.program import CodeSpace, Procedure, ModuleCode

__all__ = [
    "Assembler",
    "CodeSpace",
    "Instruction",
    "ModuleCode",
    "OPERAND_KINDS",
    "Op",
    "OperandKind",
    "Procedure",
    "decode",
    "disassemble",
    "encode",
    "format_listing",
    "instruction_length",
    "is_call",
    "is_transfer",
]
