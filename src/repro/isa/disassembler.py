"""Disassembly of procedure bodies and whole code spaces.

Used by the compiler's ``--listing`` output, by tests that check code
generation, and by the space-analysis benchmarks that need a per-
instruction census of a compiled program (claim C2: two-thirds of
instructions are one byte).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TruncatedInstruction
from repro.isa.instruction import Instruction, decode
from repro.isa.opcodes import DESCRIPTIONS, JUMP_OPS, OperandKind, OPERAND_KINDS


@dataclass(frozen=True)
class DecodedInstruction:
    """One instruction with its position: ``(offset, instruction)``."""

    offset: int
    instruction: Instruction

    @property
    def length(self) -> int:
        return self.instruction.length

    def target(self) -> int | None:
        """Absolute offset a jump lands on, or None for non-jumps."""
        if self.instruction.op in JUMP_OPS:
            return self.offset + self.length + self.instruction.operand
        return None


def disassemble(body: bytes, start: int = 0, end: int | None = None) -> list[DecodedInstruction]:
    """Linearly decode ``body[start:end]`` into positioned instructions.

    The range must contain instructions only (no embedded data);
    procedure bodies produced by the assembler satisfy that.  Untrusted
    bytes fail with a structured :class:`~repro.errors.DecodeError`
    carrying the offending offset: :class:`~repro.errors.UnknownOpcode`
    for an undefined byte, :class:`~repro.errors.TruncatedInstruction`
    when an instruction's operand bytes run past ``end``.
    """
    if end is None:
        end = len(body)
    result: list[DecodedInstruction] = []
    offset = start
    while offset < end:
        instruction = decode(body, offset)
        if offset + instruction.length > end:
            raise TruncatedInstruction(
                instruction.op.name, offset, instruction.length, end - offset
            )
        result.append(DecodedInstruction(offset, instruction))
        offset += instruction.length
    return result


def format_listing(body: bytes, start: int = 0, end: int | None = None) -> str:
    """Human-readable listing with offsets, bytes, mnemonics, and jump targets."""
    lines: list[str] = []
    for item in disassemble(body, start, end):
        raw = body[item.offset : item.offset + item.length].hex(" ")
        text = str(item.instruction)
        target = item.target()
        if target is not None:
            text += f"  ; -> {target:#06x}"
        lines.append(f"{item.offset:#06x}  {raw:<12} {text}")
    return "\n".join(lines)


def length_census(body: bytes, start: int = 0, end: int | None = None) -> dict[int, int]:
    """Histogram of instruction lengths in bytes — the C2 measurement.

    Returns ``{1: n1, 2: n2, 3: n3, 4: n4}`` counts for the decoded range.
    """
    census: dict[int, int] = {}
    for item in disassemble(body, start, end):
        census[item.length] = census.get(item.length, 0) + 1
    return census


def describe(op_name: str) -> str:
    """One-line description of an opcode by name (documentation helper)."""
    from repro.isa.opcodes import Op

    return DESCRIPTIONS[Op[op_name]]


def operand_kind(op_name: str) -> OperandKind:
    """Operand kind of an opcode by name (documentation helper)."""
    from repro.isa.opcodes import Op

    return OPERAND_KINDS[Op[op_name]]
