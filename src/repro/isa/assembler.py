"""A symbolic assembler for procedure bodies.

The compiler's code generator (and hand-written tests and examples) build
procedure bodies through this class rather than concatenating raw bytes:
it handles labels, PC-relative jump displacements, and automatic jump
sizing (short one-byte displacement forms where they reach, word forms
where they don't — the encoding's space economy depends on short forms
being used whenever possible).

Jump displacements are relative to the address *after* the jump
instruction, the usual convention for byte-coded machines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError
from repro.isa.instruction import Instruction, encode
from repro.isa.opcodes import Op, instruction_length

#: Short-form jump -> long-form jump, for automatic widening.
_WIDEN: dict[Op, Op] = {Op.JB: Op.JW, Op.JZB: Op.JZW, Op.JNZB: Op.JNZW}

_S8_RANGE = (-0x80, 0x7F)
_S16_RANGE = (-0x8000, 0x7FFF)


@dataclass
class Label:
    """A position in the body being assembled; bound by :meth:`Assembler.bind`."""

    name: str
    offset: int | None = None

    @property
    def bound(self) -> bool:
        return self.offset is not None


@dataclass
class _Fixed:
    """An already-encoded instruction (no label involvement)."""

    instruction: Instruction

    def length(self) -> int:
        return self.instruction.length


@dataclass
class _Jump:
    """A jump to a label; starts short and widens if the span demands it."""

    op: Op
    target: Label
    widened: bool = False

    def current_op(self) -> Op:
        return _WIDEN[self.op] if self.widened else self.op

    def length(self) -> int:
        return instruction_length(self.current_op())


@dataclass
class _Bind:
    """A label binding point (zero length)."""

    label: Label

    def length(self) -> int:
        return 0


class Assembler:
    """Accumulates instructions and labels; :meth:`assemble` produces bytes.

    Typical use::

        asm = Assembler()
        top = asm.new_label("top")
        asm.bind(top)
        asm.emit(Op.LL0)
        asm.emit(Op.LI1)
        asm.emit(Op.SUB)
        asm.emit(Op.SL0)
        asm.jump(Op.JNZB, top)
        asm.emit(Op.RET)
        body = asm.assemble()
    """

    def __init__(self) -> None:
        self._items: list[_Fixed | _Jump | _Bind] = []
        self._labels: list[Label] = []

    def new_label(self, name: str = "") -> Label:
        """Create an (unbound) label."""
        label = Label(name or f"L{len(self._labels)}")
        self._labels.append(label)
        return label

    def bind(self, label: Label) -> None:
        """Bind *label* to the current position."""
        if any(isinstance(item, _Bind) and item.label is label for item in self._items):
            raise AssemblyError(f"label {label.name!r} bound twice")
        self._items.append(_Bind(label))

    def emit(self, op: Op, operand: int = 0) -> None:
        """Append one non-jump instruction."""
        if op in _WIDEN:
            raise AssemblyError(f"use jump() for {op.name}, not emit()")
        self._items.append(_Fixed(Instruction(op, operand)))

    def jump(self, op: Op, target: Label) -> None:
        """Append a jump to *target*; the short/long form is chosen later.

        *op* must be a short-form jump opcode (JB, JZB, JNZB); the
        assembler widens it to the word form automatically when the
        displacement does not fit a signed byte.
        """
        if op not in _WIDEN:
            raise AssemblyError(f"{op.name} is not a sizable jump opcode")
        self._items.append(_Jump(op, target))

    def emit_instruction(self, instruction: Instruction) -> None:
        """Append a pre-built instruction (no label resolution)."""
        self._items.append(_Fixed(instruction))

    @property
    def position_items(self) -> int:
        """Number of items emitted so far (for codegen bookkeeping)."""
        return len(self._items)

    def assemble(self) -> bytes:
        """Resolve labels and jump sizes; return the body bytes.

        Sizing iterates to a fixpoint: every pass lays out the items with
        the current short/long choices, then widens any short jump whose
        displacement overflows a signed byte.  Widening only ever grows
        instructions, so the iteration terminates.
        """
        for _ in range(len(self._items) + 2):
            offsets = self._layout()
            if not self._widen_pass(offsets):
                return self._encode(offsets)
        raise AssemblyError("jump sizing failed to converge")  # pragma: no cover

    # -- internals ---------------------------------------------------------------

    def _layout(self) -> list[int]:
        """Offsets of each item under current size choices; binds labels."""
        offsets: list[int] = []
        position = 0
        for item in self._items:
            offsets.append(position)
            if isinstance(item, _Bind):
                item.label.offset = position
            position += item.length()
        return offsets

    def _displacement(self, item: _Jump, offset: int) -> int:
        if not item.target.bound:
            raise AssemblyError(f"jump to unbound label {item.target.name!r}")
        return item.target.offset - (offset + item.length())

    def _widen_pass(self, offsets: list[int]) -> bool:
        """Widen overflowing short jumps; return True if anything changed."""
        changed = False
        for item, offset in zip(self._items, offsets, strict=True):
            if isinstance(item, _Jump) and not item.widened:
                displacement = self._displacement(item, offset)
                if not _S8_RANGE[0] <= displacement <= _S8_RANGE[1]:
                    item.widened = True
                    changed = True
        return changed

    def _encode(self, offsets: list[int]) -> bytes:
        body = bytearray()
        for item, offset in zip(self._items, offsets, strict=True):
            if isinstance(item, _Bind):
                continue
            if isinstance(item, _Jump):
                displacement = self._displacement(item, offset)
                low, high = _S16_RANGE if item.widened else _S8_RANGE
                if not low <= displacement <= high:
                    raise AssemblyError(
                        f"jump displacement {displacement} exceeds even the "
                        "word form"
                    )
                body.extend(encode(Instruction(item.current_op(), displacement)))
            else:
                body.extend(encode(item.instruction))
        return bytes(body)


def assemble(items: list[Instruction]) -> bytes:
    """Encode a straight-line sequence (no labels) to bytes."""
    body = bytearray()
    for instruction in items:
        body.extend(encode(instruction))
    return bytes(body)


def load_local(index: int) -> Instruction:
    """The shortest load-local form for *index* (LL0..LL7 or LLB n)."""
    if 0 <= index < 8:
        return Instruction(Op(int(Op.LL0) + index))
    return Instruction(Op.LLB, index)


def store_local(index: int) -> Instruction:
    """The shortest store-local form for *index* (SL0..SL7 or SLB n)."""
    if 0 <= index < 8:
        return Instruction(Op(int(Op.SL0) + index))
    return Instruction(Op.SLB, index)


def load_immediate(value: int) -> Instruction:
    """The shortest push-literal form for *value*."""
    if value == -1:
        return Instruction(Op.LIN1)
    if 0 <= value <= 7:
        return Instruction(Op(int(Op.LI0) + value))
    if 0 <= value <= 0xFF:
        return Instruction(Op.LIB, value)
    return Instruction(Op.LIW, value & 0xFFFF)


def external_call(lv_index: int) -> Instruction:
    """The shortest external-call form (EFC0..EFC7 or EFCB n).

    Section 5.1: one-byte opcodes cover the most frequent targets; "a
    single opcode with a one byte address field allows 256 procedures to
    be called in two bytes".
    """
    if 0 <= lv_index < 8:
        return Instruction(Op(int(Op.EFC0) + lv_index))
    return Instruction(Op.EFCB, lv_index)
