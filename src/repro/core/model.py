"""A friendly facade over the abstract model: :class:`AbstractMachine`.

Most users of the model level want three things — define procedures, call
them, and build coroutines — without touching the engine's registers.
This facade packages those, and doubles as the reference semantics the
machine-level implementations (I1-I4) are tested against: any program
expressible at both levels must produce the same results.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.core.context import AbstractContext, ProcedureValue
from repro.core.xfer import XferEngine


class AbstractMachine:
    """The model level (section 2's RUN_S): procedures, calls, coroutines.

    Example::

        machine = AbstractMachine()

        @machine.procedure
        def fib(ctx):
            (n,) = ctx.args
            if n < 2:
                yield from ctx.ret(n)
            (a,) = yield from ctx.call(fib, n - 1)
            (b,) = yield from ctx.call(fib, n - 2)
            yield from ctx.ret(a + b)

        (value,) = machine.call(fib, 10)   # value == 55
    """

    def __init__(self, trace: bool = False, max_transfers: int = 1_000_000) -> None:
        self.engine = XferEngine(trace=trace, max_transfers=max_transfers)

    def procedure(
        self, code: Callable | None = None, *, env: Any = None, name: str = ""
    ) -> ProcedureValue | Callable:
        """Register a generator function as a procedure (usable as decorator)."""
        if code is None:

            def decorate(fn: Callable) -> ProcedureValue:
                return self.engine.procedure(fn, env=env, name=name)

            return decorate
        return self.engine.procedure(code, env=env, name=name)

    def call(self, procedure: ProcedureValue, *args: Any) -> tuple:
        """Run *procedure* to completion; returns its result record."""
        return self.engine.run(procedure, *args)

    def create(self, procedure: ProcedureValue) -> AbstractContext:
        """CreateNewContext without transferring (the coroutine first step)."""
        return self.engine.create(procedure)

    @property
    def stats(self):
        """Model-level counters: contexts created/freed, transfer mix."""
        return self.engine.stats

    @property
    def trace(self):
        """Recorded transfers (when constructed with ``trace=True``)."""
        return self.engine.trace
