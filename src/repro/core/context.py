"""Contexts and procedure descriptors at the model level (sections 3-4).

A context "normally corresponds to the activation record or local frame
of a procedure.  It contains the program counter for that activation; the
arguments and local variables; references to any other environment
information."  Here the Python generator *is* the program counter plus
locals; the context object adds the return link, the environment
reference, and the allocation state (live / freed / retained).

A :class:`ProcedureValue` is the ``proc`` arm of section 4's variant
record — "(pointer to procedure, pointer to environment)" — and behaves
as the creation context of section 3.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Generator
from typing import Any

from repro.errors import DanglingFrame

#: Monotonic ids for readable context names.
_serial = itertools.count(1)


class ProcedureValue:
    """A procedure descriptor: (code, environment).

    "all our implementations have a special kind of context called a
    procedure descriptor, which consists of a pair (pointer to procedure,
    pointer to environment).  An XFER to such a context results in the
    actions described by the code above" — the creation-context loop.
    """

    def __init__(self, code: Callable[..., Generator], env: Any = None, name: str = "") -> None:
        self.code = code
        self.env = env
        self.name = name or getattr(code, "__name__", "proc")

    def __repr__(self) -> str:
        return f"ProcedureValue({self.name})"


class AbstractContext:
    """A live activation: generator state plus linkage.

    Created by the engine when a :class:`ProcedureValue` is the target of
    an XFER (the creation context at work), or explicitly via
    :meth:`repro.core.xfer.XferEngine.create` for coroutines.

    The prologue behaviour of section 3 — "When the new procedure gets
    control, it saves the returnContext in one of its local variables
    called the returnLink, and it copies the arguments from the argument
    record" — happens in :meth:`repro.core.xfer.XferEngine` when the
    context first runs; the saved values land in :attr:`return_link` and
    :attr:`args`.
    """

    def __init__(self, procedure: ProcedureValue, engine: Any) -> None:
        self.procedure = procedure
        self.engine = engine
        self.name = f"{procedure.name}#{next(_serial)}"
        self.env = procedure.env
        #: The saved returnContext (a context, or None before first run).
        self.return_link: Any = None
        #: The argument record copied at first entry.
        self.args: tuple = ()
        #: Whoever XFERed to us most recently (updated at every resume).
        self.source: Any = None
        self.freed = False
        #: Retained frames may outlive a return (section 4): "Such frames
        #: are called retained, and are distinguished by the possible
        #: existence of multiple references."
        self.retained = False
        self._generator: Generator | None = None
        self._started = False

    # -- operations available to context code --------------------------------

    def call(self, destination: Any, *args: Any):
        """Procedure-call idiom: XFER with returnContext set to us.

        A generator helper — use ``results = yield from ctx.call(p, x)``.
        Returns the result record when control comes back.
        """
        return self.engine._call(self, destination, args)

    def ret(self, *results: Any):
        """RETURN: free this context (unless retained) and XFER to the
        return link with *results* as the argument record.

        Use ``yield from ctx.ret(value)``; code after it never runs
        (returning from the return is an error, per section 4).
        """
        return self.engine._return(self, results)

    def xfer(self, destination: Any, *args: Any):
        """Raw symmetric XFER (coroutine idiom): transfer to *destination*
        and return the argument record of whatever XFER eventually
        resumes us.  ``ctx.source`` then says who resumed us."""
        return self.engine._raw_xfer(self, destination, args)

    def free(self) -> None:
        """Explicitly free this context (F2: explicit allocation/freeing)."""
        if self.freed:
            raise DanglingFrame(f"{self.name} already freed")
        self.freed = True

    def check_live(self) -> None:
        """Raise :class:`DanglingFrame` if this context has been freed."""
        if self.freed:
            raise DanglingFrame(f"transfer to freed context {self.name}")

    def __repr__(self) -> str:
        state = "freed" if self.freed else ("live" if self._started else "new")
        return f"AbstractContext({self.name}, {state})"
