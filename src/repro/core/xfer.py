"""XFER: the single control-transfer primitive (section 3).

    "The XFER primitive takes a single argument, the destination context
    where execution is to continue.  It works in conjunction with two
    global variables: returnContext, which holds the context to which
    control should return; and argumentRecord, which holds the arguments
    being passed in the transfer.  The effect of XFER is to suspend
    execution of the currently running context and begin execution of the
    destination."

:class:`XferEngine` is the trampoline that gives those words an
operational meaning over generator-based contexts.  Procedure call,
return, coroutine transfer and process switch are all the *same* yield of
a ``_Transfer`` request — only the register discipline around them
differs, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.context import AbstractContext, ProcedureValue
from repro.errors import InvalidContext, ReturnFromReturn, StepLimitExceeded


class _Root:
    """The context that invoked ``run`` — transferring to it ends the run."""

    name = "<root>"

    def __repr__(self) -> str:
        return "<root context>"


@dataclass(frozen=True)
class _Transfer:
    """The request a context yields to the trampoline: XFER[destination]."""

    destination: Any
    kind: str  # "call" | "return" | "xfer"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded transfer, for tests, examples, and Figure-3-style traces."""

    kind: str
    source: str
    destination: str


@dataclass
class EngineStats:
    """Model-level counters (contexts created/freed, transfer mix)."""

    contexts_created: int = 0
    contexts_freed: int = 0
    transfers: int = 0
    calls: int = 0
    returns: int = 0
    raw_xfers: int = 0


class XferEngine:
    """The trampoline executing the control-transfer model.

    Context code runs as generators; every ``yield`` (always via the
    :class:`~repro.core.context.AbstractContext` helpers ``call``,
    ``ret``, ``xfer``) hands a :class:`_Transfer` to this loop, which
    suspends the generator and resumes the destination's — F3's point
    that the transfer discipline is chosen by the destination, not the
    primitive.
    """

    def __init__(self, trace: bool = False, max_transfers: int = 1_000_000) -> None:
        self.return_context: Any = None  # NIL
        self.argument_record: tuple = ()
        self.stats = EngineStats()
        self.trace_enabled = trace
        self.trace: list[TraceEvent] = []
        self.max_transfers = max_transfers
        self._root = _Root()
        self._running = False

    # -- public API -----------------------------------------------------------

    def procedure(self, code, env: Any = None, name: str = "") -> ProcedureValue:
        """Wrap a generator function as a procedure descriptor."""
        return ProcedureValue(code, env=env, name=name)

    def create(self, procedure: ProcedureValue) -> AbstractContext:
        """CreateNewContext: build a context without transferring to it.

        The coroutine idiom — make the partner first, then XFER to it.
        The context starts on its first transfer-in, receiving that
        transfer's argument record as its arguments.
        """
        context = AbstractContext(procedure, self)
        self.stats.contexts_created += 1
        return context

    def run(self, destination: Any, *args: Any) -> tuple:
        """Drive transfers from a fresh root until control returns to it.

        Returns the final argument record (the results of the outermost
        return).  The root plays the part of the caller: its
        ``returnContext`` is what the first procedure's RETURN targets.
        """
        if self._running:
            raise InvalidContext("engine is already running; nested run() not allowed")
        self._running = True
        try:
            self.argument_record = tuple(args)
            self.return_context = self._root
            current = self._resolve(destination, "call")
            remaining = self.max_transfers
            while True:
                request = self._advance(current)
                self.stats.transfers += 1
                remaining -= 1
                if remaining <= 0:
                    raise StepLimitExceeded(self.max_transfers)
                if self.trace_enabled:
                    self.trace.append(
                        TraceEvent(
                            request.kind,
                            current.name,
                            getattr(request.destination, "name", repr(request.destination)),
                        )
                    )
                if request.destination is self._root:
                    return self.argument_record
                current = self._resolve(request.destination, request.kind)
        finally:
            self._running = False

    # -- helpers used by AbstractContext ---------------------------------------

    def _call(self, source: AbstractContext, destination: Any, args: tuple):
        """Generator: the call idiom (returnContext := caller)."""
        self.argument_record = tuple(args)
        self.return_context = source
        self.stats.calls += 1
        results = yield _Transfer(destination, "call")
        return results

    def _return(self, source: AbstractContext, results: tuple):
        """Generator: RETURN (free, returnContext := NIL, XFER[returnLink])."""
        link = source.return_link
        if link is None:
            raise ReturnFromReturn(f"{source.name} has no return link")
        if not source.retained:
            source.freed = True
            self.stats.contexts_freed += 1
        self.argument_record = tuple(results)
        self.return_context = None  # NIL: returning from this return is an error
        self.stats.returns += 1
        yield _Transfer(link, "return")
        raise ReturnFromReturn(f"{source.name} was resumed after returning")

    def _raw_xfer(self, source: AbstractContext, destination: Any, args: tuple):
        """Generator: symmetric XFER (coroutines, schedulers)."""
        self.argument_record = tuple(args)
        self.return_context = source
        self.stats.raw_xfers += 1
        record = yield _Transfer(destination, "xfer")
        return record

    # -- trampoline internals ------------------------------------------------------

    def _resolve(self, destination: Any, kind: str) -> AbstractContext:
        """Find or create the frame context a transfer lands in.

        An XFER to a procedure descriptor runs the creation context: "on
        each iteration it creates a new context for the procedure, and
        forwards control to it ... note that returnContext and
        argumentRecord are unchanged".
        """
        if destination is None:
            raise InvalidContext("XFER to NIL")
        if isinstance(destination, ProcedureValue):
            context = AbstractContext(destination, self)
            self.stats.contexts_created += 1
            return context
        if isinstance(destination, AbstractContext):
            destination.check_live()
            return destination
        raise InvalidContext(f"XFER to non-context {destination!r}")

    def _advance(self, context: AbstractContext) -> _Transfer:
        """Start or resume one context until its next transfer request."""
        try:
            if not context._started:
                # Prologue (section 3): save returnContext as the return
                # link; copy the argument record.
                context._started = True
                context.return_link = self.return_context
                context.args = self.argument_record
                context.source = self.return_context
                context._generator = context.procedure.code(context)
                request = next(context._generator)
            else:
                context.source = self.return_context
                request = context._generator.send(self.argument_record)
        except StopIteration:
            # The code fell off its end: treat as RETURN with no results.
            return self._implicit_return(context)
        if not isinstance(request, _Transfer):
            raise InvalidContext(
                f"{context.name} yielded {request!r}; context code must only "
                "yield via ctx.call / ctx.ret / ctx.xfer"
            )
        return request

    def _implicit_return(self, context: AbstractContext) -> _Transfer:
        link = context.return_link
        if link is None:
            raise ReturnFromReturn(f"{context.name} ended with no return link")
        if not context.retained:
            context.freed = True
            self.stats.contexts_freed += 1
        self.argument_record = ()
        self.return_context = None
        self.stats.returns += 1
        return _Transfer(link, "return")
