"""Coroutine ports over raw XFER.

Lampson's model paper ([3] in the references) links coroutines through
*ports*: a port remembers the context at the other end, so each side just
transfers to its port and the symmetric XFER discipline does the rest.
F3 in action: "a choice between procedure call, coroutine transfer or
some other discipline is made by the destination context, not the
caller."

:class:`Port` wraps the bookkeeping: ``send`` transfers a value record to
the partner and suspends; when the partner (or anyone holding a port to
us) transfers back, ``send`` returns the incoming record.  The partner
reference is refreshed from ``ctx.source`` on every resume, so a port
keeps working even if the peer context is recreated.

The same shape stretched across machine boundaries is :mod:`repro.net`:
a Remote XFER suspends the caller on an implicit port (the process goes
``BLOCKED`` holding its outstanding request) and the reply's transfer
record resumes it — see :class:`repro.net.shard.Shard` for the stub and
skeleton that play the two port ends.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import AbstractContext
from repro.errors import InvalidContext


class Port:
    """One end of a coroutine linkage: a named slot holding the peer."""

    def __init__(self, name: str = "port") -> None:
        self.name = name
        self.peer: Any = None

    def connect(self, peer: Any) -> None:
        """Bind the far end (a context or procedure descriptor)."""
        self.peer = peer

    def send(self, ctx: AbstractContext, *values: Any):
        """Transfer *values* through the port; return the incoming record.

        Use ``record = yield from port.send(ctx, v)``.  After the resume
        the port is re-pointed at whoever transferred control back, so
        ping-pong loops need no manual rewiring.
        """
        if self.peer is None:
            raise InvalidContext(f"port {self.name!r} is not connected")
        record = yield from ctx.xfer(self.peer, *values)
        if ctx.source is not None:
            self.peer = ctx.source
        return record

    def receive(self, ctx: AbstractContext):
        """Wait for the next record without sending one (pure consumer)."""
        record = yield from ctx.xfer(self.peer) if self.peer is not None else self._fail()
        if ctx.source is not None:
            self.peer = ctx.source
        return record

    def _fail(self):
        raise InvalidContext(f"port {self.name!r} is not connected")
        yield  # pragma: no cover - makes this a generator

    def __repr__(self) -> str:
        return f"Port({self.name!r} -> {getattr(self.peer, 'name', self.peer)})"


def pipeline(engine, stages, source_values):
    """Run a coroutine pipeline and collect its outputs (a worked example).

    Each stage is a context body of the shape::

        def double(ctx):
            record = ctx.args            # first record arrives as arguments
            while record:                # empty record = end of stream
                (value,) = record
                record = yield from ctx.xfer(ctx.source, value * 2)
            yield from ctx.ret()

    A driver context feeds *source_values* through each stage in turn via
    raw XFERs, collecting what falls out the end.  The transfer pattern is
    deliberately non-LIFO — the coroutine motivation of section 1, which a
    strict last-in first-out discipline cannot express.
    """

    def driver(ctx):
        outputs = []
        downstream = [engine.create(engine.procedure(stage)) for stage in stages]
        for value in source_values:
            record = (value,)
            for stage_ctx in downstream:
                record = yield from ctx.xfer(stage_ctx, *record)
            outputs.extend(record)
        # Tell every stage to finish (empty record means end of stream).
        for stage_ctx in downstream:
            if not stage_ctx.freed:
                yield from ctx.xfer(stage_ctx)
        yield from ctx.ret(tuple(outputs))

    (result,) = engine.run(engine.procedure(driver, name="pipeline-driver"))
    return list(result)
