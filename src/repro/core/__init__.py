"""The control-transfer model (section 3) as an executable abstraction.

This package is the paper's *model* level (section 2): the semantics a
source-language programmer sees, independent of any encoding or
interpreter.  It has exactly two elements:

* **contexts** — "the entities among which control is transferred"; and
* **XFER** — "the primitive operation for transferring control", working
  with the two global registers ``returnContext`` and ``argumentRecord``.

Context code is written as Python generator functions; an XFER suspends
the running generator and resumes the destination's.  Procedure
descriptors are the special *creation contexts* of section 3: an XFER to
one runs the "WHILE TRUE DO new := CreateNewContext[...]; XFER[new]"
loop, i.e. builds a fresh frame context and forwards control to it.

The essential model features (F1-F4) hold by construction and are tested
directly:

* F1 — a context contains everything needed to resume it;
* F2 — contexts are first-class, explicitly allocated and freed, not
  necessarily LIFO;
* F3 — any context may be the argument of any XFER — calls, coroutine
  transfers, and process switches are the *destination's* choice;
* F4 — arguments and results are handled symmetrically by XFER itself.
"""

from repro.core.context import AbstractContext, ProcedureValue
from repro.core.model import AbstractMachine
from repro.core.ports import Port, pipeline
from repro.core.xfer import TraceEvent, XferEngine

__all__ = [
    "AbstractContext",
    "AbstractMachine",
    "Port",
    "ProcedureValue",
    "TraceEvent",
    "XferEngine",
    "pipeline",
]
