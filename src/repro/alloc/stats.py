"""Allocation accounting: fragmentation and traffic measurements.

Section 5.3 quantifies the AV heap: "This scheme wastes only 10% of the
space in fragmentation, plus space allocated to frames of sizes not
currently in demand."  This module measures both terms:

* **internal fragmentation** — requested words versus size-class words,
  integrated over the time each frame is live;
* **idle free-list space** — words sitting on free lists of classes with no
  current demand;

plus the event counts the fast heap is judged by (allocations, frees,
software-allocator traps, memory references per operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class AllocationStats:
    """Mutable accumulator updated by the heaps on every operation."""

    allocations: int = 0
    frees: int = 0
    #: Traps to the software allocator (empty free list).
    replenishments: int = 0
    #: Bounded-retry promotions: allocations granted a frame from a larger
    #: size class because the arena was full (graceful degradation).
    promotions: int = 0
    #: Words currently live, as requested by callers.
    live_requested_words: int = 0
    #: Words currently live, as rounded up to size classes (incl. headers).
    live_block_words: int = 0
    #: Words currently parked on free lists.
    free_list_words: int = 0
    #: High-water mark of live_block_words + free_list_words.
    high_water_words: int = 0
    #: Time-integrated waste: sum over allocations of (block - requested),
    #: weighted by nothing (a per-allocation average); the live ratio below
    #: gives the instantaneous picture.
    total_requested_words: int = 0
    total_block_words: int = 0
    #: Per-size-class allocation counts, for the "sizes not in demand" term.
    per_class_allocations: dict[int, int] = field(default_factory=dict)

    def on_allocate(self, fsi: int, requested: int, block: int) -> None:
        """Record one allocation of *requested* words in a *block*-word block."""
        self.allocations += 1
        self.live_requested_words += requested
        self.live_block_words += block
        self.total_requested_words += requested
        self.total_block_words += block
        self.per_class_allocations[fsi] = self.per_class_allocations.get(fsi, 0) + 1
        self._update_high_water()

    def on_free(self, requested: int, block: int) -> None:
        """Record one free returning a block to its free list."""
        self.frees += 1
        self.live_requested_words -= requested
        self.live_block_words -= block
        self.free_list_words += block
        self._update_high_water()

    def on_reuse(self, block: int) -> None:
        """Record a block leaving a free list to satisfy an allocation."""
        self.free_list_words -= block

    def on_replenish(self, blocks: int, block_words: int) -> None:
        """Record a software-allocator trap creating *blocks* new blocks."""
        self.replenishments += 1
        self.free_list_words += blocks * block_words
        self._update_high_water()

    def _update_high_water(self) -> None:
        footprint = self.live_block_words + self.free_list_words
        if footprint > self.high_water_words:
            self.high_water_words = footprint

    # -- derived metrics ----------------------------------------------------

    @property
    def live_fragmentation(self) -> float:
        """Instantaneous internal fragmentation of live frames, in [0, 1).

        This is the paper's "wastes only 10% of the space" number: the
        fraction of live block space not holding requested data.
        """
        if self.live_block_words == 0:
            return 0.0
        return 1.0 - self.live_requested_words / self.live_block_words

    @property
    def lifetime_fragmentation(self) -> float:
        """Per-allocation average internal fragmentation, in [0, 1)."""
        if self.total_block_words == 0:
            return 0.0
        return 1.0 - self.total_requested_words / self.total_block_words

    @property
    def idle_free_fraction(self) -> float:
        """Fraction of the total footprint parked on free lists.

        The paper's second waste term: "space allocated to frames of sizes
        not currently in demand".
        """
        footprint = self.live_block_words + self.free_list_words
        if footprint == 0:
            return 0.0
        return self.free_list_words / footprint

    @property
    def trap_rate(self) -> float:
        """Fraction of allocations that trapped to the software allocator."""
        if self.allocations == 0:
            return 0.0
        return self.replenishments / self.allocations

    def summary(self) -> dict[str, float]:
        """Plain-dict summary for reports and benchmark tables."""
        return {
            "allocations": float(self.allocations),
            "frees": float(self.frees),
            "replenishments": float(self.replenishments),
            "promotions": float(self.promotions),
            "live_fragmentation": self.live_fragmentation,
            "lifetime_fragmentation": self.lifetime_fragmentation,
            "idle_free_fraction": self.idle_free_fraction,
            "trap_rate": self.trap_rate,
            "high_water_words": float(self.high_water_words),
        }
