"""Frame allocation: the specialized heap of section 5.3 (Figure 2).

Local frames, unlike stack frames on a conventional machine, are allocated
from a heap so that coroutines, retained frames, and multiple processes need
no special cases (feature F2 of the model).  The paper's trick is a
*specialized* heap that is nearly as fast as stack allocation:

* a geometric ladder of frame size classes (:mod:`repro.alloc.sizing`),
* an **allocation vector** ``AV`` of per-class free lists, with a one-word
  frame-size-index header on every frame so a free needs no size argument
  (:mod:`repro.alloc.avheap`),
* a trap to a software allocator when a list is empty.

For implementation I1 the paper just says "the frame is allocated from a
heap"; :mod:`repro.alloc.simpleheap` provides the conventional first-fit
heap that plays that role (and also backs the AV heap's software
allocator).  :mod:`repro.alloc.stats` measures the fragmentation the paper
quantifies ("wastes only 10% of the space").
"""

from repro.alloc.avheap import AVHeap, FRAME_OVERHEAD_WORDS
from repro.alloc.simpleheap import SimpleHeap
from repro.alloc.sizing import SizeLadder, geometric_ladder
from repro.alloc.stats import AllocationStats

__all__ = [
    "AVHeap",
    "FRAME_OVERHEAD_WORDS",
    "AllocationStats",
    "SimpleHeap",
    "SizeLadder",
    "geometric_ladder",
]
