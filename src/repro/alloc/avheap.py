"""The allocation-vector frame heap of section 5.3 (Figure 2).

    "An element of AV is the head of a list of free frames of that size
    ...  Each frame has an extra word which holds its frame size index, so
    that the size need not be specified when it is freed.  Only three
    memory references are required to allocate a frame (fetch list head
    from AV, fetch next pointer from first node, store it into list head),
    and four to free it.  If the free list is empty there is a trap to a
    software allocator which creates more frames of the desired size."

The heap lives entirely inside the simulated :class:`~repro.machine.memory.
Memory`, so the three-reference / four-reference costs are *measured*, not
asserted: the Figure 2 benchmark reads them off the cycle counter.

Layout
------
* ``AV[fsi]`` at ``av_base + fsi`` holds the head frame pointer of the free
  list for size class *fsi* (0 means empty).
* A frame block is ``1 + class_size`` words: one header word holding the
  fsi, then the frame body.  The *frame pointer* handed out points at the
  body, so the header sits at ``pointer - 1``.
* Frame pointers are even-aligned: the low bit of a context word
  distinguishes frame pointers (0) from packed procedure descriptors (1),
  see :mod:`repro.mesa.descriptor`.
* A free frame stores its free-list ``next`` pointer in body word 0 (the
  body is dead while the frame is free).

The software allocator is modelled as a bump allocator over an arena
region; each trap is charged as one ``ALLOCATOR_TRAP`` event (the paper
leaves its cost abstract — "creates more frames"; section 7.1 models the
general scheme as about five times the fast path, which the default
charge reproduces at the whole-call level).
"""

from __future__ import annotations

from repro.alloc.sizing import SizeLadder
from repro.alloc.stats import AllocationStats
from repro.errors import DoubleFree, FrameSizeError, HeapExhausted
from repro.machine.costs import Event
from repro.machine.memory import Memory

#: Words of overhead per frame block (the fsi header word).
FRAME_OVERHEAD_WORDS = 1

#: How many frames the software allocator creates per trap.  Creating a few
#: at a time amortizes traps, as a real software allocator would.
DEFAULT_REPLENISH_BATCH = 4

#: Bounded retry when the arena is full: how many larger size classes the
#: software allocator probes for a free frame to promote before giving up
#: and surfacing RESOURCE_EXHAUSTED.  Small on purpose — promotion wastes
#: the size difference as internal fragmentation, so an unbounded search
#: would trade a clean trap for creeping waste.
PROMOTION_LIMIT = 3


class AVHeap:
    """The fast frame heap: an allocation vector of per-class free lists.

    Parameters
    ----------
    memory:
        The simulated store; the AV and the arena both live in it.
    ladder:
        The size-class ladder shared with the compiler.
    av_base:
        Word address of the allocation vector (``len(ladder)`` words).
    arena_base, arena_words:
        The region the software allocator carves new frames from.
    replenish_batch:
        Frames created per software-allocator trap.
    """

    def __init__(
        self,
        memory: Memory,
        ladder: SizeLadder,
        av_base: int,
        arena_base: int,
        arena_words: int,
        replenish_batch: int = DEFAULT_REPLENISH_BATCH,
    ) -> None:
        if replenish_batch <= 0:
            raise ValueError(f"replenish_batch must be positive, got {replenish_batch}")
        self.memory = memory
        self.ladder = ladder
        self.av_base = av_base
        self.arena_base = arena_base
        self.arena_limit = arena_base + arena_words
        self.replenish_batch = replenish_batch
        self.stats = AllocationStats()
        #: Observability sink (repro.obs); None disables emission.
        self.tracer = None
        # Bump pointer for the software allocator.  Frame pointers must be
        # even, and the header occupies pointer-1, so blocks start odd.
        self._bump = arena_base if arena_base % 2 == 1 else arena_base + 1
        # Python-side validation state (not part of the machine's cost):
        # live frame pointer -> requested words, for stats and double-free
        # detection.
        self._live: dict[int, int] = {}
        self._known: set[int] = set()
        # Zero the AV (loader-style, uncounted).
        for fsi in range(len(ladder)):
            memory.poke(av_base + fsi, 0)

    # -- public API ----------------------------------------------------------

    def allocate(self, fsi: int, requested_words: int | None = None) -> int:
        """Allocate a frame of size class *fsi*; return its frame pointer.

        *requested_words* is the size the program actually needs (defaults
        to the full class size); it only feeds fragmentation statistics.
        The counted cost of the fast path is exactly three memory
        references, per the paper.
        """
        class_words = self.ladder.size_of(fsi)
        if requested_words is None:
            requested_words = class_words
        if requested_words > class_words:
            raise FrameSizeError(
                f"request of {requested_words} words exceeds class {fsi} "
                f"size {class_words}"
            )
        grant_fsi = fsi
        head = self.memory.read(self.av_base + fsi)  # ref 1: fetch list head
        if head == 0:
            try:
                self._replenish(fsi)
            except HeapExhausted:
                # Bounded retry (section 5.3's software allocator doing its
                # best): promote the request to a nearby larger class that
                # still has a free frame.  Only reached when the arena is
                # full, so the fast path's three-reference cost and the
                # normal trap path are untouched.
                grant_fsi, head = self._promote(fsi)
                class_words = self.ladder.size_of(grant_fsi)
            else:
                head = self.memory.read(self.av_base + fsi)
        next_frame = self.memory.read(head)  # ref 2: fetch next pointer
        self.memory.write(self.av_base + grant_fsi, next_frame)  # ref 3: store head
        self.stats.on_reuse(class_words + FRAME_OVERHEAD_WORDS)
        self.stats.on_allocate(
            grant_fsi, requested_words, class_words + FRAME_OVERHEAD_WORDS
        )
        self._live[head] = requested_words
        if self.tracer is not None:
            self.tracer.emit(
                "alloc.frame", "avheap", pointer=head, fsi=grant_fsi,
                words=requested_words, class_words=class_words,
            )
        return head

    def allocate_words(self, words: int) -> int:
        """Allocate the smallest class holding *words* (compiler-side helper)."""
        return self.allocate(self.ladder.fsi_for(words), requested_words=words)

    def free(self, frame: int) -> None:
        """Return *frame* to its free list.

        The size need not be supplied: the fsi header at ``frame - 1`` is
        read back, making the counted cost exactly four memory references.
        """
        if frame not in self._live:
            raise DoubleFree(frame)
        requested = self._live.pop(frame)
        fsi = self.memory.read(frame - 1)  # ref 1: fetch fsi header
        if not 0 <= fsi < len(self.ladder):
            raise FrameSizeError(f"corrupt fsi header {fsi} on frame {frame:#x}")
        head = self.memory.read(self.av_base + fsi)  # ref 2: fetch list head
        self.memory.write(frame, head)  # ref 3: link node
        self.memory.write(self.av_base + fsi, frame)  # ref 4: store list head
        class_words = self.ladder.size_of(fsi)
        self.stats.on_free(requested, class_words + FRAME_OVERHEAD_WORDS)
        if self.tracer is not None:
            self.tracer.emit(
                "alloc.free", "avheap", pointer=frame, fsi=fsi, words=requested,
            )

    def fsi_of(self, frame: int) -> int:
        """Uncounted read of a live frame's size-class index."""
        return self.memory.peek(frame - 1)

    def host_carve(self, fsi: int, requested_words: int | None = None) -> int:
        """Carve one live frame straight from the arena, uncounted.

        Migration adopting a foreign process (:mod:`repro.net.migrate`)
        needs backing store for the incoming frames on the target shard.
        That relocation is host work, not machine work — the paper's
        machine never executes it — so the carve uses the loader
        interface throughout: no memory references, no allocator trap,
        and no replenish statistics.  The block still gets a real fsi
        header so a later (counted) ``free`` works unchanged.
        """
        class_words = self.ladder.size_of(fsi)
        if requested_words is None:
            requested_words = class_words
        if requested_words > class_words:
            raise FrameSizeError(
                f"request of {requested_words} words exceeds class {fsi} "
                f"size {class_words}"
            )
        block_words = class_words + FRAME_OVERHEAD_WORDS
        if self._bump + block_words > self.arena_limit:
            raise HeapExhausted(
                f"frame arena exhausted carving class {fsi} for adoption"
            )
        base = self._bump
        self._bump += block_words
        if self._bump % 2 == 0:  # keep the next block's pointer even
            self._bump += 1
        pointer = base + FRAME_OVERHEAD_WORDS
        self.memory.poke(base, fsi)  # permanent fsi header
        self._known.add(pointer)
        self._live[pointer] = requested_words
        self.stats.on_allocate(fsi, requested_words, block_words)
        if self.tracer is not None:
            self.tracer.emit(
                "alloc.carve", "avheap", pointer=pointer, fsi=fsi,
                words=requested_words, class_words=class_words,
            )
        return pointer

    def note_requested(self, frame: int, requested_words: int) -> None:
        """Adjust a live frame's requested size, without memory traffic.

        Used by the processor-resident free-frame stack of section 7.1
        (:class:`repro.banks.deferred.FastFrameStack`): frames parked
        there stay allocated from the heap's point of view and are handed
        out again without touching the AV, so only the fragmentation
        accounting needs updating.
        """
        if frame not in self._live:
            raise DoubleFree(frame)
        old = self._live[frame]
        self._live[frame] = requested_words
        self.stats.live_requested_words += requested_words - old
        self.stats.total_requested_words += requested_words - old

    def is_live(self, frame: int) -> bool:
        """True if *frame* is currently allocated (validation helper)."""
        return frame in self._live

    def owns(self, address: int) -> bool:
        """True if *address* lies inside this heap's arena."""
        return self.arena_base <= address < self.arena_limit

    @property
    def live_frames(self) -> tuple[int, ...]:
        """Pointers of all currently allocated frames (for state dumps)."""
        return tuple(self._live)

    def free_list_length(self, fsi: int) -> int:
        """Walk (uncounted) the free list of class *fsi* and count nodes."""
        count = 0
        node = self.memory.peek(self.av_base + fsi)
        while node != 0:
            count += 1
            node = self.memory.peek(node)
        return count

    # -- software allocator ----------------------------------------------------

    def _replenish(self, fsi: int) -> None:
        """Trap: carve *replenish_batch* new frames of class *fsi*.

        Charged as one ALLOCATOR_TRAP event; the carving writes use the
        uncounted loader interface because their cost is folded into the
        trap charge (the paper treats the software allocator as a black
        box roughly 5x the fast path).
        """
        class_words = self.ladder.size_of(fsi)
        block_words = class_words + FRAME_OVERHEAD_WORDS
        self.memory.counter.record(Event.ALLOCATOR_TRAP)
        created = 0
        for _ in range(self.replenish_batch):
            if self._bump + block_words > self.arena_limit:
                break
            base = self._bump
            self._bump += block_words
            if self._bump % 2 == 0:  # keep the next block's pointer even
                self._bump += 1
            pointer = base + FRAME_OVERHEAD_WORDS
            self.memory.poke(base, fsi)  # permanent fsi header
            # Push onto the free list (loader writes).
            self.memory.poke(pointer, self.memory.peek(self.av_base + fsi))
            self.memory.poke(self.av_base + fsi, pointer)
            self._known.add(pointer)
            created += 1
        if created == 0:
            raise HeapExhausted(
                f"frame arena exhausted replenishing class {fsi} "
                f"({class_words} words)"
            )
        self.stats.on_replenish(created, block_words)
        if self.tracer is not None:
            self.tracer.emit(
                "alloc.trap", "avheap", fsi=fsi, created=created,
                class_words=class_words,
            )

    def _promote(self, fsi: int) -> tuple[int, int]:
        """Probe up to PROMOTION_LIMIT larger classes for a free frame.

        Each probe is a counted AV read (the software allocator walking
        the vector).  The granted frame keeps its own (larger) fsi header,
        so a later :meth:`free` returns it to the list it came from and
        the heap stays consistent.  Raises :class:`HeapExhausted` when no
        candidate class has a free frame either.
        """
        for candidate in range(fsi + 1, min(len(self.ladder), fsi + 1 + PROMOTION_LIMIT)):
            head = self.memory.read(self.av_base + candidate)
            if head != 0:
                self.stats.promotions += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "alloc.promote", "avheap",
                        requested_fsi=fsi, granted_fsi=candidate, pointer=head,
                    )
                return candidate, head
        raise HeapExhausted(
            f"frame arena exhausted and no free frame within "
            f"{PROMOTION_LIMIT} classes above {fsi}"
        )
