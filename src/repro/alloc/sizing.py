"""Frame size classes: the geometric ladder of section 5.3.

    "A procedure specifies its frame size in its first byte by a frame size
    index into an array of free lists called the allocation vector AV.
    Frame sizes increase from a minimum of about 16 bytes in steps of about
    20%; less than 20 steps are needed to cover any size up to several
    thousand bytes."

The choice of ladder is *private* to the compiler and the software
allocator — the fast heap only sees indices — so the ladder is a standalone
value object shared by both.  The paper also notes the knob this exposes:
"fewer frame sizes means more fragmentation, but more chance to use an
existing free frame"; benchmarks sweep the growth factor to show exactly
that trade-off.

Sizes here are in 16-bit *words* (the machine is word-addressed); the
paper's 16 bytes is 8 words.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrameSizeError

#: Paper defaults: minimum ~16 bytes (8 words), ~20% steps, up to several
#: thousand bytes (we use 4096 words = 8 KB, comfortably "several thousand").
DEFAULT_MIN_WORDS = 8
DEFAULT_GROWTH = 1.20
DEFAULT_MAX_WORDS = 4096


@dataclass(frozen=True)
class SizeLadder:
    """An immutable, strictly increasing tuple of frame sizes in words.

    ``fsi`` (frame size index) values index this tuple; ``fsi_for`` maps a
    requested size to the smallest class that fits, which is what the
    compiler does when it assigns each procedure its fsi.
    """

    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise FrameSizeError("size ladder must have at least one class")
        if any(b <= a for a, b in zip(self.sizes, self.sizes[1:], strict=False)):
            raise FrameSizeError(f"size ladder must strictly increase: {self.sizes}")
        if self.sizes[0] <= 0:
            raise FrameSizeError("size classes must be positive")

    def __len__(self) -> int:
        return len(self.sizes)

    def size_of(self, fsi: int) -> int:
        """Words in size class *fsi*; raises :class:`FrameSizeError` if bad."""
        if not 0 <= fsi < len(self.sizes):
            raise FrameSizeError(f"fsi {fsi} outside ladder of {len(self.sizes)} classes")
        return self.sizes[fsi]

    def fsi_for(self, words: int) -> int:
        """Smallest class index whose size is >= *words*.

        This is the compiler-side mapping; it raises if the request exceeds
        the largest class (such frames would go to the general allocator).
        """
        if words <= 0:
            raise FrameSizeError(f"frame size must be positive, got {words}")
        for fsi, size in enumerate(self.sizes):
            if size >= words:
                return fsi
        raise FrameSizeError(
            f"frame of {words} words exceeds largest class {self.sizes[-1]}"
        )

    def internal_waste(self, words: int) -> int:
        """Words wasted if a *words*-word frame is rounded up to its class."""
        return self.size_of(self.fsi_for(words)) - words

    @property
    def max_words(self) -> int:
        """The largest frame the ladder can satisfy."""
        return self.sizes[-1]


def geometric_ladder(
    min_words: int = DEFAULT_MIN_WORDS,
    growth: float = DEFAULT_GROWTH,
    max_words: int = DEFAULT_MAX_WORDS,
    align: int = 2,
) -> SizeLadder:
    """Build the paper's geometric ladder.

    Sizes start at *min_words* and grow by *growth* per step, rounded up to
    a multiple of *align* (frames are kept even-aligned so that a frame
    pointer's low bit is free for the context tag, mirroring Mesa's
    alignment tricks), deduplicated, and capped at the first size >=
    *max_words*.

    With the paper's parameters (16 bytes minimum, 20% steps) the ladder
    covering 8 KB has about 30 classes; covering ~1 KB takes under 20,
    which is the regime the paper's "less than 20 steps" describes.  The
    fragmentation consequence — average internal waste around half a step,
    i.e. ~10% — is checked by the Figure 2 benchmark.
    """
    if min_words <= 0:
        raise FrameSizeError(f"min_words must be positive, got {min_words}")
    if growth <= 1.0:
        raise FrameSizeError(f"growth must exceed 1.0, got {growth}")
    if max_words < min_words:
        raise FrameSizeError("max_words must be at least min_words")
    if align <= 0:
        raise FrameSizeError(f"align must be positive, got {align}")

    def rounded(value: float) -> int:
        words = int(value)
        if words < value:
            words += 1
        remainder = words % align
        if remainder:
            words += align - remainder
        return words

    sizes: list[int] = []
    current = float(min_words)
    while True:
        size = rounded(current)
        if not sizes or size > sizes[-1]:
            sizes.append(size)
        if size >= max_words:
            break
        current *= growth
    return SizeLadder(sizes=tuple(sizes))
