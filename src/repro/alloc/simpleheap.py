"""A conventional first-fit heap, for implementation I1 and long records.

Section 4 says only that "the frame is allocated from a heap"; this module
supplies that unremarkable heap so the I1-versus-I2 comparison has a fair,
measured baseline.  It is a classic boundary-tag-free first-fit allocator
with an in-memory free list, so its (much larger) memory-reference cost is
observed by the cycle counter, not assumed.

Layout
------
* A free block is ``[size, next, ...dead words]`` starting at its base.
* An allocated block is ``[size, ...body]``; the returned pointer addresses
  the body, so the size header sits at ``pointer - 1`` (same convention as
  the AV heap, letting the two interoperate for long argument records).
* Pointers are even-aligned for the context-tag trick: block bases are odd
  and body sizes are rounded up to odd, so every split tail starts odd too.
* ``free`` pushes onto the free-list head; adjacent-block coalescing runs
  as a deferred sweep (``coalesce``), which keeps per-free cost honest for
  the comparison while still bounding fragmentation in long runs.
"""

from __future__ import annotations

from repro.alloc.stats import AllocationStats
from repro.errors import DoubleFree, HeapExhausted
from repro.machine.memory import Memory

#: Minimum words in a block body (a free block needs a next-pointer word;
#: bodies are kept odd-sized for alignment, so the minimum is 3).
MIN_BODY_WORDS = 3

#: Header words per block (the size word).
HEADER_WORDS = 1


class SimpleHeap:
    """First-fit heap over an arena inside the simulated memory.

    The free list head lives in memory at *head_base*, so list traversal
    is counted memory traffic, exactly as it would be on the machine.
    """

    def __init__(self, memory: Memory, head_base: int, arena_base: int, arena_words: int) -> None:
        self.memory = memory
        self.head_base = head_base
        # Block bases are odd so body pointers come out even.
        base = arena_base if arena_base % 2 == 1 else arena_base + 1
        self.arena_base = base
        usable = arena_base + arena_words - base
        if usable < HEADER_WORDS + MIN_BODY_WORDS:
            raise ValueError("arena too small for even one block")
        if usable % 2 == 1:  # body = usable - header must come out odd
            usable -= 1
        self.arena_limit = base + usable
        self.stats = AllocationStats()
        #: Observability sink (repro.obs); None disables emission.
        self.tracer = None
        self._live: dict[int, int] = {}
        # One giant free block.
        memory.poke(base, usable - HEADER_WORDS)  # body size
        memory.poke(base + 1, 0)  # next
        memory.poke(head_base, base)

    # -- public API ----------------------------------------------------------

    def allocate(self, words: int) -> int:
        """First-fit allocate a *words*-word body; return the body pointer."""
        if words <= 0:
            raise ValueError(f"allocation size must be positive, got {words}")
        if words < MIN_BODY_WORDS:
            words = MIN_BODY_WORDS
        if words % 2 == 0:
            words += 1  # odd bodies keep split-tail bases odd, pointers even
        prev_addr = self.head_base
        block = self.memory.read(self.head_base)
        while block != 0:
            size = self.memory.read(block)
            if size >= words:
                next_block = self.memory.read(block + 1)
                remainder = size - words
                if remainder >= HEADER_WORDS + MIN_BODY_WORDS:
                    # Split: tail becomes a new free block.
                    tail = block + HEADER_WORDS + words
                    self.memory.write(tail, remainder - HEADER_WORDS)
                    self.memory.write(tail + 1, next_block)
                    self.memory.write(prev_addr, tail)
                    self.memory.write(block, words)
                else:
                    words_given = size
                    self.memory.write(prev_addr, next_block)
                    words = words_given
                pointer = block + HEADER_WORDS
                self._live[pointer] = words
                self.stats.on_reuse(words + HEADER_WORDS)
                self.stats.on_allocate(0, words, words + HEADER_WORDS)
                if self.tracer is not None:
                    self.tracer.emit(
                        "alloc.frame", "first_fit", pointer=pointer, words=words,
                    )
                return pointer
            prev_addr = block + 1
            block = self.memory.read(block + 1)
        raise HeapExhausted(f"no free block of {words} words")

    def free(self, pointer: int) -> None:
        """Return the block at *pointer* to the free list (no size needed)."""
        if pointer not in self._live:
            raise DoubleFree(pointer)
        words = self._live.pop(pointer)
        block = pointer - HEADER_WORDS
        head = self.memory.read(self.head_base)
        self.memory.write(block + 1, head)
        self.memory.write(self.head_base, block)
        self.stats.on_free(words, words + HEADER_WORDS)
        if self.tracer is not None:
            self.tracer.emit(
                "alloc.free", "first_fit", pointer=pointer, words=words,
            )

    def is_live(self, pointer: int) -> bool:
        """True if *pointer* is a currently allocated body."""
        return pointer in self._live

    def owns(self, address: int) -> bool:
        """True if *address* lies inside this heap's arena."""
        return self.arena_base <= address < self.arena_limit

    def coalesce(self) -> int:
        """Merge adjacent free blocks; return how many merges happened.

        Runs Python-side over a sorted snapshot (this is maintenance, not a
        per-operation cost the paper compares), then rebuilds the in-memory
        list with uncounted writes.
        """
        blocks: list[tuple[int, int]] = []
        node = self.memory.peek(self.head_base)
        while node != 0:
            blocks.append((node, self.memory.peek(node)))
            node = self.memory.peek(node + 1)
        blocks.sort()
        merged: list[tuple[int, int]] = []
        merges = 0
        for base, size in blocks:
            if merged and merged[-1][0] + HEADER_WORDS + merged[-1][1] == base:
                prev_base, prev_size = merged[-1]
                merged[-1] = (prev_base, prev_size + HEADER_WORDS + size)
                merges += 1
            else:
                merged.append((base, size))
        # Rebuild the list (loader writes).
        previous = self.head_base
        for base, size in merged:
            self.memory.poke(previous, base)
            self.memory.poke(base, size)
            previous = base + 1
        self.memory.poke(previous, 0)
        return merges

    def free_words(self) -> int:
        """Total body words currently on the free list (uncounted walk)."""
        total = 0
        node = self.memory.peek(self.head_base)
        while node != 0:
            total += self.memory.peek(node)
            node = self.memory.peek(node + 1)
        return total
