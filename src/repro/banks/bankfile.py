"""The register bank file (section 7.1).

    "We suppose that the processor has a small number of register banks
    (say 4-8) of some modest fixed size (say 16 words).  Each of these
    banks can hold the first 16 words of some local frame. ...  When the
    frame is freed, the shadowing register bank is also marked free, and
    can then be used to shadow a newly created frame; its contents are
    unimportant, and never need to be saved in storage."

A bank here is a small word array with a role (free, local-frame shadow,
or evaluation-stack holder), the frame it shadows, and a dirty-word set.
Reads and writes are charged as register events (one cycle, versus two
for a cache access — the section 7.3 argument).  Spilling and filling are
decided by :class:`repro.banks.renaming.BankManager`; the bank file just
keeps the registers and the statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import to_word

#: Paper defaults: 4-8 banks of 16 words.
DEFAULT_BANKS = 4
DEFAULT_BANK_WORDS = 16


class BankRole(enum.Enum):
    """What a bank currently holds (the S / L labels of Figure 3)."""

    FREE = "free"
    LOCAL = "local"  # shadows the first words of some frame
    STACK = "stack"  # holds the evaluation stack


@dataclass
class BankStats:
    """Counters behind the section 7.1 claims (benchmark C7).

    An *overflow* is a new-frame XFER that found no free bank and had to
    write the oldest bank out; an *underflow* is an XFER into a frame
    whose bank had been reclaimed, forcing a reload.  The paper:
    "Fragmentary Mesa statistics indicate that with 4 banks it happens on
    less than 5% of XFERs; and [4] reports that with 4-8 banks the rate
    is less than 1%."
    """

    assignments: int = 0
    releases: int = 0
    overflows: int = 0
    underflows: int = 0
    words_spilled: int = 0
    words_filled: int = 0
    #: XFERs observed (calls + returns + general transfers) — denominator.
    xfers: int = 0

    @property
    def overflow_rate(self) -> float:
        """(overflows + underflows) / xfers, the section 7.1 statistic."""
        if self.xfers == 0:
            return 0.0
        return (self.overflows + self.underflows) / self.xfers


def _frame_label(frame: object | None) -> str:
    """A human-readable name for the frame a bank shadows (trace data)."""
    proc = getattr(frame, "proc", None)
    if proc is not None:
        return proc.qualified_name
    return "<stack>" if frame is None else str(frame)


class Bank:
    """One register bank: a fixed-size word array plus bookkeeping."""

    def __init__(self, bank_id: int, size: int) -> None:
        self.id = bank_id
        self.size = size
        self.words = [0] * size
        self.role = BankRole.FREE
        #: The FrameState this bank shadows (role LOCAL), else None.
        self.frame: object | None = None
        #: Indices written since the last spill/assignment.
        self.dirty: set[int] = set()
        #: Assignment sequence number, for oldest-first victim selection.
        self.assigned_at = -1

    def rebind(self, role: BankRole, frame: object | None, seq: int) -> None:
        """Reassign the bank; contents are *not* cleared (renaming relies
        on the old stack contents becoming the new frame's locals)."""
        self.role = role
        self.frame = frame
        self.assigned_at = seq

    def release(self) -> None:
        """Mark free; "its contents are unimportant"."""
        self.role = BankRole.FREE
        self.frame = None
        self.dirty.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bank({self.id}, {self.role.value}, frame={self.frame})"


class BankFile:
    """The set of banks, with counted register access.

    The manager asks for free banks and victims; ``read``/``write`` are
    the data path used by local-variable instructions when the frame is
    shadowed.
    """

    def __init__(
        self,
        banks: int = DEFAULT_BANKS,
        bank_words: int = DEFAULT_BANK_WORDS,
        counter: CycleCounter | None = None,
        track_dirty: bool = True,
    ) -> None:
        if banks < 3:
            raise ValueError(
                f"need at least 3 banks (current L, current S, one spare), got {banks}"
            )
        if bank_words <= 0:
            raise ValueError(f"bank_words must be positive, got {bank_words}")
        self.counter = counter or CycleCounter()
        self.bank_words = bank_words
        self.track_dirty = track_dirty
        self.stats = BankStats()
        #: Observability sink (repro.obs); None disables emission.
        self.tracer = None
        self._banks = [Bank(i, bank_words) for i in range(banks)]
        self._seq = 0

    def __len__(self) -> int:
        return len(self._banks)

    def __iter__(self):
        return iter(self._banks)

    def bank(self, bank_id: int) -> Bank:
        return self._banks[bank_id]

    # -- assignment ------------------------------------------------------------

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def acquire_free(self, role: BankRole, frame: object | None = None) -> Bank | None:
        """Take a free bank, or None if all are busy (overflow condition)."""
        for bank in self._banks:
            if bank.role is BankRole.FREE:
                bank.rebind(role, frame, self.next_seq())
                bank.dirty.clear()
                self.stats.assignments += 1
                return bank
        return None

    def oldest(self, exclude: set[int]) -> Bank:
        """The least recently assigned busy bank not in *exclude*.

        Section 7.1: "the contents of the oldest bank is written out into
        the frame."
        """
        candidates = [
            bank
            for bank in self._banks
            if bank.role is not BankRole.FREE and bank.id not in exclude
        ]
        if not candidates:
            raise RuntimeError("no spillable bank; file too small for exclusions")
        return min(candidates, key=lambda bank: bank.assigned_at)

    # -- the register data path --------------------------------------------------

    def read(self, bank: Bank, index: int) -> int:
        """Counted register read of one shadowed word."""
        self.counter.record(Event.REGISTER_READ)
        return bank.words[index]

    def write(self, bank: Bank, index: int, value: int) -> None:
        """Counted register write of one shadowed word."""
        self.counter.record(Event.REGISTER_WRITE)
        bank.words[index] = to_word(value)
        bank.dirty.add(index)

    # -- spill support -------------------------------------------------------------

    def spill_words(self, bank: Bank) -> list[tuple[int, int]]:
        """(index, value) pairs the machine must write to the frame.

        With dirty tracking only written words go out; without it, every
        word does (the ablation the paper mentions: "It may be worthwhile
        to keep track of which registers have been written").  The dirty
        set is cleared — the bank now matches memory.
        """
        if self.track_dirty:
            pairs = [(index, bank.words[index]) for index in sorted(bank.dirty)]
        else:
            pairs = list(enumerate(bank.words))
        bank.dirty.clear()
        self.stats.words_spilled += len(pairs)
        self.counter.record(Event.BANK_FLUSH)
        if self.tracer is not None:
            self.tracer.emit(
                "bank.spill", frame=_frame_label(bank.frame), bank=bank.id,
                words=len(pairs),
            )
        return pairs

    def fill(self, bank: Bank, values: list[int]) -> None:
        """Load words (already read from memory by the machine) into the bank."""
        for index, value in enumerate(values):
            bank.words[index] = to_word(value)
        bank.dirty.clear()
        self.stats.words_filled += len(values)
        self.counter.record(Event.BANK_LOAD)
        if self.tracer is not None:
            self.tracer.emit(
                "bank.fill", frame=_frame_label(bank.frame), bank=bank.id,
                words=len(values),
            )

    def snapshot(self) -> list[tuple[int, str, object | None]]:
        """(id, role, frame) per bank — the rows of Figure 3."""
        return [(bank.id, bank.role.value, bank.frame) for bank in self._banks]
