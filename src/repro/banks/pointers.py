"""Pointers to local variables (section 7.4).

Shadowing frames in register banks creates the *multiple copy problem*:
an ordinary storage reference through a pointer may address a word whose
current value lives in a register, not in memory.  The paper's menu,
all implemented here and selectable in the machine configuration:

* **AVOID** — "The simplest solution is avoidance: outlaw pointers to
  local variables or the local frame."  Taking a local's address
  (``LLA``) is a trap under this policy.

* **FLAG_FLUSH** — C2 "can be avoided in most languages by flagging local
  frames to which pointers can exist ...  A flagged frame is flushed to
  storage whenever control leaves its context; of course it must be
  reloaded whenever control returns.  Now the frame can be correctly
  referenced by ordinary storage instructions, except when control is in
  its context."  (Good enough for Pascal; same-context aliasing through a
  pointer is also handled because loads/stores inside the context go to
  the bank, which is the single truth while control is there.)

* **DIVERT** — "the reference can be diverted to read or write the proper
  register.  ...  by confining frames to a fixed frame region of the
  address space, we can be sure for most storage references that C2 has
  not arisen; ...  An address in the frame region, however, must be
  compared with the address assigned to each of the register banks."
  :func:`divert_lookup` is that comparator bank.

C1 (a local with *no* memory address, under deferred allocation) is
handled where the address is created: the ``LLA`` instruction
materializes the frame, exactly the paper's "if there is a special
operation for generating a pointer to a local variable, this operation
can do the allocation".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.banks.bankfile import Bank, BankFile, BankRole


class PointerPolicy(enum.Enum):
    """The section 7.4 alternatives for pointers to locals."""

    AVOID = "avoid"
    FLAG_FLUSH = "flag_flush"
    DIVERT = "divert"


@dataclass
class DivertStats:
    """How often the frame-region comparators fired (benchmark C14)."""

    #: Storage references checked against the frame region.
    references_checked: int = 0
    #: References inside the frame region (comparators engaged).
    region_hits: int = 0
    #: References actually diverted to a register bank.
    diversions: int = 0

    @property
    def diversion_rate(self) -> float:
        if self.references_checked == 0:
            return 0.0
        return self.diversions / self.references_checked


def divert_lookup(
    banks: BankFile,
    address: int,
    shadow_base_of,
) -> tuple[Bank, int] | None:
    """Find the bank and register index shadowing memory word *address*.

    *shadow_base_of* maps a LOCAL bank to the memory address of the first
    word it shadows (None when the frame's allocation is deferred — such
    a frame has no address, so no pointer can reach it).  Returns
    ``(bank, index)`` when some bank currently holds the addressed word,
    else None — the caller then lets the storage reference proceed
    normally.
    """
    for bank in banks:
        if bank.role is not BankRole.LOCAL:
            continue
        base = shadow_base_of(bank)
        if base is None:
            continue
        if base <= address < base + bank.size:
            return bank, address - base
    return None
