"""Stack-bank renaming (section 7.2, Figure 3).

    "after the arguments have been loaded on the stack, the bank holding
    the stack can be renamed to be the shadower for the local frame of
    the called procedure.  As a consequence, the arguments will
    automatically appear as the first few local variables, without any
    actual data movement.  Thus on a call the pattern is:

        (top of return stack).Lbank := current Lbank
        current Lbank := stack
        stack := newly assigned bank

    On a return, the stack should remain as it is, and the current frame
    should be freed:

        free current Lbank
        current Lbank := (top of return stack).Lbank

    Thus the banks are not used in last-in first-out order."

:class:`BankManager` executes exactly that pattern.  It does not touch
memory itself: the interpreter supplies ``spill`` and ``fill`` callbacks
that move words between a bank and its frame (counted), so that the
manager stays a pure policy object and Figure 3 can be regenerated from
its event trace without a full machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.banks.bankfile import Bank, BankFile, BankRole


@dataclass(frozen=True)
class BankEvent:
    """One row of the Figure 3 trace: the assignment after an event."""

    event: str  # "begin X", "call A", "return", ...
    lbank: int  # current local bank id
    sbank: int  # current stack bank id


class BankManager:
    """Tracks the current local bank and stack bank, per Figure 3.

    Parameters
    ----------
    banks:
        The bank file.
    spill:
        ``spill(bank)`` — write the bank's (dirty) words into the frame it
        shadows, materializing the frame if its allocation was deferred.
        Only ever called for LOCAL-role banks.
    fill:
        ``fill(bank, frame)`` — load the frame's first words from memory
        into the bank (an *underflow*: "If an XFER is done to a frame
        which doesn't have a shadowing bank, a free bank is assigned and
        loaded from the frame").
    """

    def __init__(
        self,
        banks: BankFile,
        spill: Callable[[Bank], None],
        fill: Callable[[Bank, object], None],
    ) -> None:
        self.banks = banks
        self._spill = spill
        self._fill = fill
        self.lbank: Bank | None = None
        self.sbank: Bank | None = None
        self.trace: list[BankEvent] = []

    # -- lifecycle ----------------------------------------------------------------

    def begin(self, root_frame: object, event: str = "begin") -> None:
        """Assign banks for the first context: one L, one S."""
        self.lbank = self._acquire(BankRole.LOCAL, root_frame)
        self.sbank = self._acquire(BankRole.STACK, None)
        self._record(event)

    def on_call(
        self, callee_frame: object, arg_words: int = 0, event: str = "call"
    ) -> Bank | None:
        """The call pattern; returns the *caller's* Lbank for the return stack.

        The stack bank (holding the just-loaded arguments) is renamed to
        shadow *callee_frame* — zero data movement — and a fresh bank
        becomes the stack.  *arg_words* says how many stack words became
        locals; they are live in registers but not yet in memory, so they
        start dirty from the frame's point of view.
        """
        self.banks.stats.xfers += 1
        caller_lbank = self.lbank
        self.lbank = self.sbank
        if self.lbank is not None:
            self.lbank.rebind(BankRole.LOCAL, callee_frame, self.banks.next_seq())
            self.lbank.dirty.update(range(min(arg_words, self.lbank.size)))
        self.sbank = self._acquire(BankRole.STACK, None)
        self._record(event)
        return caller_lbank

    def on_return(self, caller_frame: object, caller_bank: Bank | None, event: str = "return") -> None:
        """The return pattern: free current L, restore the caller's.

        If the caller's bank was reclaimed in the meantime (or the return
        came through the general scheme and no bank is known), this is an
        *underflow*: a free bank is assigned and filled from the frame.
        The stack bank stays put — the results ride it back to the caller.
        """
        self.banks.stats.xfers += 1
        if self.lbank is not None:
            self.lbank.release()
            self.banks.stats.releases += 1
        if caller_bank is not None and caller_bank.frame is caller_frame:
            self.lbank = caller_bank
        else:
            # The return-stack entry may have been flushed while the bank
            # survived; only a truly bankless frame is an underflow.
            existing = self.bank_of(caller_frame)
            if existing is not None:
                self.lbank = existing
            else:
                self.banks.stats.underflows += 1
                self.lbank = self._acquire(BankRole.LOCAL, caller_frame)
                self._fill(self.lbank, caller_frame)
        self._record(event)

    def on_resume(self, frame: object, event: str = "resume") -> None:
        """General XFER into a frame context (coroutine, process switch).

        The frame gets a shadowing bank (underflow fill if none), and a
        fresh stack bank is assigned.
        """
        self.banks.stats.xfers += 1
        existing = None
        for bank in self.banks:
            if bank.role is BankRole.LOCAL and bank.frame is frame:
                existing = bank
                break
        if existing is not None:
            self.lbank = existing
        else:
            self.banks.stats.underflows += 1
            self.lbank = self._acquire(BankRole.LOCAL, frame)
            self._fill(self.lbank, frame)
        if self.sbank is None or self.sbank.role is not BankRole.STACK:
            self.sbank = self._acquire(BankRole.STACK, None)
        self._record(event)

    def flush_all(self, event: str = "flush") -> None:
        """The fallback: "all the banks are flushed into storage"."""
        for bank in self.banks:
            if bank.role is BankRole.LOCAL:
                self._spill(bank)
                bank.release()
            elif bank.role is BankRole.STACK:
                bank.release()
        self.lbank = None
        self.sbank = None
        self.trace.append(BankEvent(event, -1, -1))

    def release_frame_bank(self, frame: object) -> None:
        """Free the bank shadowing *frame* (the frame was freed)."""
        for bank in self.banks:
            if bank.role is BankRole.LOCAL and bank.frame is frame:
                bank.release()
                self.banks.stats.releases += 1
                return

    def bank_of(self, frame: object) -> Bank | None:
        """The bank currently shadowing *frame*, if any."""
        for bank in self.banks:
            if bank.role is BankRole.LOCAL and bank.frame is frame:
                return bank
        return None

    # -- internals ----------------------------------------------------------------

    def _acquire(self, role: BankRole, frame: object | None) -> Bank:
        """Get a bank, spilling the oldest if none is free (an overflow)."""
        bank = self.banks.acquire_free(role, frame)
        if bank is not None:
            return bank
        self.banks.stats.overflows += 1
        exclude = set()
        if self.lbank is not None:
            exclude.add(self.lbank.id)
        if self.sbank is not None:
            exclude.add(self.sbank.id)
        victim = self.banks.oldest(exclude)
        if victim.role is BankRole.LOCAL:
            self._spill(victim)
        victim.release()
        bank = self.banks.acquire_free(role, frame)
        assert bank is victim
        return bank

    def _record(self, event: str) -> None:
        self.trace.append(
            BankEvent(
                event,
                self.lbank.id if self.lbank is not None else -1,
                self.sbank.id if self.sbank is not None else -1,
            )
        )
