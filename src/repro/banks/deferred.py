"""Fast frame allocation and deferred allocation (section 7.1).

Two ideas, both implemented here:

1. **The free-frame stack.**  "Since nearly all local frames are fairly
   small, a reasonable strategy is to make the smallest frame size the 80
   bytes just cited; hopefully this would handle 95% of all frame
   allocations.  Now the processor can keep a stack of free frames of
   this size, and allocation will be extremely fast; furthermore, it can
   be done in parallel with the rest of an XFER operation."
   :class:`FastFrameStack` keeps such a processor-register stack in front
   of the AV heap; pops and pushes cost no memory references.

2. **Deferred allocation.**  "An alternative strategy is to defer
   allocating the frame until a register bank must be flushed out.  This
   means that 95% of the time there will be no allocation at all.
   Unfortunately, it also means that a local variable may have no
   assigned memory address" — the section 7.4 consequence handled by
   :mod:`repro.banks.pointers` and by ``LLA`` forcing materialization.
   The deferral itself lives in :class:`repro.interp.frames.FrameState`
   (a frame with ``address is None``); this module provides the backing
   allocator both strategies share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.alloc.avheap import AVHeap
from repro.errors import FrameSizeError


@dataclass
class FastFrameStats:
    """How often allocation stayed on the fast path (benchmark C9)."""

    fast_allocations: int = 0
    slow_allocations: int = 0
    fast_frees: int = 0
    slow_frees: int = 0

    @property
    def fast_fraction(self) -> float:
        total = self.fast_allocations + self.slow_allocations
        return self.fast_allocations / total if total else 0.0


class FastFrameStack:
    """A processor-register stack of standard-size free frames.

    Frames of the standard class (the paper's 80 bytes = 40 words) are
    popped and pushed with zero memory references; anything larger, or a
    pop from an empty stack, falls back to the AV heap's general path.
    Section 7.1's arithmetic — "If the general scheme is five times more
    costly and it is used 5% of the time, the effective speed of frame
    allocation is .8 times the fast speed" — is reproduced by benchmark
    C9 from these statistics plus the measured reference counts.
    """

    #: The paper's standard frame: "95% of all frames allocated are
    #: smaller than 80 bytes" — 40 words.
    STANDARD_WORDS = 40

    def __init__(self, heap: AVHeap, depth: int = 8, standard_words: int | None = None) -> None:
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        self.heap = heap
        self.depth = depth
        self.standard_words = standard_words or self.STANDARD_WORDS
        self.standard_fsi = heap.ladder.fsi_for(self.standard_words)
        self.stats = FastFrameStats()
        #: The register-resident stack of ready frame pointers.
        self._stack: list[int] = []
        self._prefill()

    def _prefill(self) -> None:
        """Fill the stack from the heap at startup (not counted as slow)."""
        while len(self._stack) < self.depth:
            self._stack.append(self.heap.allocate(self.standard_fsi))

    def allocate(self, words: int) -> tuple[int, bool]:
        """Allocate a frame of at least *words*; returns (pointer, fast).

        Standard-size requests pop the register stack when possible — no
        memory references at all; the frame never left the heap's books,
        so only its fragmentation accounting is updated.  Larger requests,
        or an empty stack, go to the AV heap (the general scheme).
        """
        if words <= self.standard_words and self._stack:
            pointer = self._stack.pop()
            self.heap.note_requested(pointer, words)
            self.stats.fast_allocations += 1
            return pointer, True
        self.stats.slow_allocations += 1
        if words > self.heap.ladder.max_words:
            raise FrameSizeError(f"frame of {words} words exceeds the ladder")
        fsi = self.heap.ladder.fsi_for(max(words, 1))
        return self.heap.allocate(fsi, requested_words=words), False

    def free(self, pointer: int) -> bool:
        """Free a frame; returns True if it parked on the fast stack.

        The fast path is a register push: zero memory references, the
        frame stays allocated from the heap's point of view.  Non-standard
        frames, or a full stack, take the general four-reference free.
        """
        fsi = self.heap.fsi_of(pointer)
        if fsi == self.standard_fsi and len(self._stack) < self.depth:
            self._stack.append(pointer)
            self.stats.fast_frees += 1
            return True
        self.heap.free(pointer)
        self.stats.slow_frees += 1
        return False

    @property
    def available(self) -> int:
        """Frames currently ready on the register stack."""
        return len(self._stack)
