"""Fast local variables and parameters (section 7, implementation I4).

The processor has "a small number of register banks (say 4-8) of some
modest fixed size (say 16 words)", each able to shadow the first words of
a local frame:

* :mod:`repro.banks.bankfile` — the banks themselves, with dirty-word
  tracking ("keep track of which registers have been written, to avoid
  the cost of dumping registers which have never been written");
* :mod:`repro.banks.renaming` — the stack-bank renaming of section 7.2
  and Figure 3, which makes argument passing "essentially free";
* :mod:`repro.banks.deferred` — the free-frame stack and deferred frame
  allocation of section 7.1 ("95% of the time there will be no
  allocation at all");
* :mod:`repro.banks.pointers` — the section 7.4 policies for pointers to
  local variables (avoidance, flagged frames, reference diversion).
"""

from repro.banks.bankfile import Bank, BankFile, BankRole, BankStats
from repro.banks.deferred import FastFrameStack
from repro.banks.pointers import PointerPolicy, divert_lookup
from repro.banks.renaming import BankEvent, BankManager

__all__ = [
    "Bank",
    "BankEvent",
    "BankFile",
    "BankManager",
    "BankRole",
    "BankStats",
    "FastFrameStack",
    "PointerPolicy",
    "divert_lookup",
]
