"""The linker: modules in, runnable :class:`ProgramImage` out.

Responsibilities, mirroring the paper's link-time story:

* assign each procedure its frame-size index from the ladder (the fsi
  byte is the compiler/allocator contract of section 5.3);
* lay out the code space (entry vectors, fsi bytes, bodies, and — under
  DIRECT linkage — the inline GF headers of section 6);
* lay out memory: GFT, allocation vector, link vectors, quad-aligned
  global frames, and the frame region;
* populate the tables: GFT entries (with bias slots for modules of more
  than 32 entry points), link vectors (packed descriptors under MESA/
  DIRECT, wide address pairs under SIMPLE);
* patch direct-call sites and the GF word in every direct header (D3:
  "fixing up addresses throughout the code, as is traditional in
  conventional linkers").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.avheap import AVHeap
from repro.alloc.simpleheap import SimpleHeap
from repro.alloc.sizing import SizeLadder, geometric_ladder
from repro.errors import LinkError
from repro.interp.frames import ProcMeta
from repro.interp.image import LinkedModule, ProgramImage
from repro.interp.machineconfig import FrameAllocatorKind, LinkageKind, MachineConfig
from repro.isa.program import ModuleCode
from repro.isa.program import CodeSpace
from repro.machine.costs import CycleCounter
from repro.machine.memory import MDS_WORDS, Memory
from repro.mesa.descriptor import ENTRIES_PER_BIAS, MAX_BIAS, pack_descriptor
from repro.mesa.globalframe import GlobalFrameBuilder
from repro.mesa.tables import GlobalFrameTable, LinkVector, WideLinkVector


@dataclass
class LinkOptions:
    """Link-time knobs independent of the machine configuration."""

    #: Instance counts per module (default 1 each); section 5.1's
    #: multi-instance support, and section 6's D2 constraint.
    instances: dict[str, int] = field(default_factory=dict)
    #: Frame-size ladder; defaults to the paper's geometric ladder.
    ladder: SizeLadder | None = None
    #: GFT capacity (entries).
    gft_capacity: int = 256
    #: Words reserved for the frame region; default: the rest of memory.
    frame_region_words: int | None = None
    #: Frames the software allocator creates per trap.
    replenish_batch: int = 4
    #: Feedback-directed frame-size index overrides, keyed by
    #: ``(module, procedure)``.  An override may only widen a frame's
    #: class (the ladder class must still hold ``frame_words``); the
    #: optimizer uses it to merge sparse AV classes into hot ones — the
    #: section 5.4 tuning lever.
    fsi_overrides: dict[tuple[str, str], int] = field(default_factory=dict)


#: Low memory reserved so that NIL (0) is never a valid frame address.
_RESERVED_WORDS = 16


def link(
    modules: list[ModuleCode],
    config: MachineConfig,
    entry: tuple[str, str],
    options: LinkOptions | None = None,
    check: bool = False,
) -> ProgramImage:
    """Bind *modules* into a program image for *config*.

    *entry* names the main procedure as ``(module, procedure)``.  With
    *check*, the static verifier runs over the finished image and errors
    raise :class:`repro.errors.CheckFailed` with the report attached.
    """
    options = options or LinkOptions()
    ladder = options.ladder or geometric_ladder()
    counter = CycleCounter(config.cost_model)
    memory = Memory(MDS_WORDS, counter)
    code = CodeSpace(counter)

    by_name = {module.name: module for module in modules}
    if len(by_name) != len(modules):
        raise LinkError("duplicate module names")
    if entry[0] not in by_name:
        raise LinkError(f"entry module {entry[0]!r} not among the modules")

    # -- 1. frame-size indices and code layout --------------------------------
    direct = config.linkage is LinkageKind.DIRECT
    # Selective DIRECTCALL headers: under non-DIRECT linkage, any
    # procedure targeted by a promoted dfc/sdfc fixup still needs the
    # section 6 header in front of its fsi byte.
    header_targets: dict[str, set[str]] = {}
    if not direct:
        for module in modules:
            for fixup in module.fixups:
                if fixup.kind in ("dfc", "sdfc"):
                    header_targets.setdefault(fixup.target_module, set()).add(
                        fixup.target_procedure
                    )
    fsi_of: dict[str, dict[str, int]] = {}
    for module in modules:
        fsi_of[module.name] = {
            procedure.name: _assign_fsi(ladder, module.name, procedure, options)
            for procedure in module.procedures
        }
        module.build_segment(
            fsi_of[module.name],
            direct_headers=True if direct else header_targets.get(module.name, set()),
        )
    code_bases = {module.name: code.place(module) for module in modules}

    # -- 2. memory layout -------------------------------------------------------
    cursor = _RESERVED_WORDS
    use_tables = config.linkage in (LinkageKind.MESA, LinkageKind.DIRECT)
    gft: GlobalFrameTable | None = None
    if use_tables:
        gft = GlobalFrameTable(memory, cursor, options.gft_capacity)
        memory.add_region("gft", cursor, options.gft_capacity)
        cursor += options.gft_capacity

    av_base = cursor
    memory.add_region("av", av_base, len(ladder))
    cursor += len(ladder)
    head_base = cursor  # first-fit heap's free-list head word
    cursor += 1

    # Link vectors (shared across instances of a module).
    lv_cls = LinkVector if use_tables else WideLinkVector
    lv_of: dict[str, LinkVector | WideLinkVector] = {}
    for module in modules:
        capacity = max(1, len(module.imports))
        lv = lv_cls(memory, cursor, capacity)
        lv_of[module.name] = lv
        cursor += lv.words()
    memory.add_region("link_vectors", head_base + 1, cursor - head_base - 1)

    # Global frames, quad-aligned.
    gf_words_needed = 0
    for module in modules:
        count = options.instances.get(module.name, 1)
        gf_words_needed += count * (3 + module.global_words + 4)
    gf_region_base = _align4(cursor)
    builder = GlobalFrameBuilder(memory, gf_region_base, gf_words_needed + 16)
    memory.add_region("global_frames", gf_region_base, gf_words_needed + 16)
    cursor = gf_region_base + gf_words_needed + 16

    # The frame region takes the rest (or the requested amount).
    frame_words = options.frame_region_words or (memory.size - cursor - 16)
    frame_region = memory.add_region("frames", cursor, frame_words)

    av_heap: AVHeap | None = None
    first_fit: SimpleHeap | None = None
    if config.allocator is FrameAllocatorKind.FIRST_FIT:
        first_fit = SimpleHeap(memory, head_base, frame_region.base, frame_words)
    else:
        av_heap = AVHeap(
            memory,
            ladder,
            av_base,
            frame_region.base,
            frame_words,
            replenish_batch=options.replenish_batch,
        )

    # -- 3. place instances: global frames and GFT entries -----------------------
    instances: dict[tuple[str, int], LinkedModule] = {}
    by_gf: dict[int, LinkedModule] = {}
    module_ids = 0
    for module in modules:
        count = options.instances.get(module.name, 1)
        if count < 1:
            raise LinkError(f"module {module.name!r} needs at least one instance")
        bias_slots = _bias_slots(len(module.procedures))
        for instance in range(count):
            module_ids += 1
            gf_address = builder.place(
                code_bases[module.name],
                lv_of[module.name].base,
                module_ids,
                module.global_words,
            )
            env_indices: list[int] = []
            if gft is not None:
                for bias in range(bias_slots):
                    env_indices.append(gft.add_entry(gf_address, bias))
            linked = LinkedModule(
                module=module,
                instance=instance,
                code_base=code_bases[module.name],
                gf_address=gf_address,
                lv_base=lv_of[module.name].base,
                lv=lv_of[module.name],
                env_indices=env_indices,
            )
            instances[linked.key()] = linked
            by_gf[gf_address] = linked

    # -- 4. populate link vectors ---------------------------------------------------
    for module in modules:
        lv = lv_of[module.name]
        for index, (target_module, target_proc) in enumerate(module.imports):
            target = _require_instance(instances, target_module, 0)
            procedure = target.module.procedure_named(target_proc)
            if use_tables:
                descriptor = _descriptor_for(target, procedure.ev_index)
                lv.set_entry(index, descriptor)
            else:
                entry_address = target.code_base + procedure.entry_offset
                lv.set_entry(index, entry_address, target.gf_address)

    # -- 5. call and descriptor fixups -------------------------------------------------
    _apply_fixups(code, modules, instances, options, use_tables=use_tables)

    # -- 6. procedure metadata -------------------------------------------------------------
    procs_by_entry: dict[int, ProcMeta] = {}
    for module in modules:
        base = code_bases[module.name]
        for procedure in module.procedures:
            meta = ProcMeta(
                module=module.name,
                name=procedure.name,
                entry_address=base + procedure.entry_offset,
                arg_count=procedure.arg_count,
                result_count=procedure.result_count,
                frame_words=procedure.frame_words,
                fsi=fsi_of[module.name][procedure.name],
                ev_index=procedure.ev_index,
            )
            procs_by_entry[meta.entry_address] = meta

    entry_module = _require_instance(instances, entry[0], 0)
    entry_proc = entry_module.module.procedure_named(entry[1])
    entry_meta = procs_by_entry[entry_module.code_base + entry_proc.entry_offset]

    image = ProgramImage(
        config=config,
        counter=counter,
        memory=memory,
        code=code,
        ladder=ladder,
        gft=gft,
        av_heap=av_heap,
        first_fit=first_fit,
        frame_region=frame_region,
        instances=instances,
        by_gf=by_gf,
        procs_by_entry=procs_by_entry,
        entry=entry_meta,
    )
    if check:
        from repro.check.checker import check_image
        from repro.errors import CheckFailed

        report = check_image(image)
        if not report.ok:
            raise CheckFailed(report)
    return image


# -- helpers ---------------------------------------------------------------------


def _align4(value: int) -> int:
    return (value + 3) & ~3


def _assign_fsi(
    ladder: SizeLadder,
    module_name: str,
    procedure,
    options: LinkOptions,
) -> int:
    """Tight ladder class, unless a (validated) override widens it."""
    tight = ladder.fsi_for(procedure.frame_words)
    override = options.fsi_overrides.get((module_name, procedure.name))
    if override is None:
        return tight
    if not 0 <= override < len(ladder):
        raise LinkError(
            f"fsi override {override} for {module_name}.{procedure.name} "
            f"is outside the {len(ladder)}-class ladder"
        )
    if ladder.size_of(override) < procedure.frame_words:
        raise LinkError(
            f"fsi override {override} ({ladder.size_of(override)} words) for "
            f"{module_name}.{procedure.name} is under its "
            f"{procedure.frame_words}-word frame"
        )
    return override


def _bias_slots(procedure_count: int) -> int:
    """GFT entries needed for a module of *procedure_count* entry points.

    One slot covers 32 procedures; the 2 bias bits allow four slots, for
    the paper's 128-entry escape hatch.
    """
    slots = (procedure_count + ENTRIES_PER_BIAS - 1) // ENTRIES_PER_BIAS
    slots = max(slots, 1)
    if slots > MAX_BIAS + 1:
        raise LinkError(
            f"module with {procedure_count} entry points exceeds the "
            f"{ENTRIES_PER_BIAS * (MAX_BIAS + 1)}-entry bias scheme"
        )
    return slots


def _descriptor_for(target: LinkedModule, ev_index: int) -> int:
    """Pack a descriptor for *ev_index* of *target*, using bias slots."""
    slot, code = divmod(ev_index, ENTRIES_PER_BIAS)
    if slot >= len(target.env_indices):
        raise LinkError(
            f"procedure ev index {ev_index} outside the bias slots of "
            f"module {target.name!r}"
        )
    return pack_descriptor(target.env_indices[slot], code)


def _require_instance(
    instances: dict[tuple[str, int], LinkedModule], module: str, instance: int
) -> LinkedModule:
    try:
        return instances[(module, instance)]
    except KeyError:
        raise LinkError(f"unresolved reference to module {module!r}") from None


def _apply_fixups(
    code: CodeSpace,
    modules: list[ModuleCode],
    instances: dict[tuple[str, int], LinkedModule],
    options: LinkOptions,
    use_tables: bool,
) -> None:
    """Patch DFC/SDFC operands, GF headers, and descriptor literals."""
    # GF headers: each headered procedure (every one under DIRECT, only
    # the promoted targets otherwise) gets its (single) instance's global
    # frame.  Multi-instance modules are not direct targets (D2).
    for module in modules:
        count = options.instances.get(module.name, 1)
        linked = instances[(module.name, 0)]
        for procedure in module.procedures:
            if procedure.direct_offset < 0:
                continue
            header = linked.code_base + procedure.direct_offset
            code.patch_word(header, linked.gf_address if count == 1 else 0)

    code.epoch += 1  # direct buffer patches below invalidate decode caches
    for module in modules:
        linked = instances[(module.name, 0)]
        for fixup in module.fixups:
            site_proc = module.procedure_named(fixup.procedure)
            site = linked.code_base + site_proc.entry_offset + 1 + fixup.site_offset
            buffer = code.buffer
            if fixup.kind == "desc":
                # A PROC(M.p) literal: patch the packed descriptor into
                # the LIW operand ("LOADLITERAL f; XFER", section 4).
                if not use_tables:
                    raise LinkError(
                        "PROC literals need packed descriptors; SIMPLE "
                        "linkage has none"
                    )
                target = _require_instance(instances, fixup.target_module, 0)
                target_proc = target.module.procedure_named(fixup.target_procedure)
                descriptor = _descriptor_for(target, target_proc.ev_index)
                buffer[site + 1] = (descriptor >> 8) & 0xFF
                buffer[site + 2] = descriptor & 0xFF
                continue
            target_count = options.instances.get(fixup.target_module, 1)
            if target_count != 1:
                raise LinkError(
                    f"direct call to multi-instance module "
                    f"{fixup.target_module!r} (D2: fall back to EXTERNALCALL)"
                )
            target = _require_instance(instances, fixup.target_module, 0)
            target_proc = target.module.procedure_named(fixup.target_procedure)
            if target_proc.direct_offset < 0:
                raise LinkError(
                    f"direct call to {fixup.target_module}.{fixup.target_procedure} "
                    "but its segment has no direct header"
                )
            target_address = target.code_base + target_proc.direct_offset
            if fixup.kind == "dfc":
                buffer[site + 1] = (target_address >> 16) & 0xFF
                buffer[site + 2] = (target_address >> 8) & 0xFF
                buffer[site + 3] = target_address & 0xFF
            elif fixup.kind == "sdfc":
                displacement = target_address - (site + 3)
                if not -0x8000 <= displacement <= 0x7FFF:
                    raise LinkError(
                        f"SHORTDIRECTCALL displacement {displacement} out of "
                        "range; use DFC"
                    )
                raw = displacement & 0xFFFF
                buffer[site + 1] = (raw >> 8) & 0xFF
                buffer[site + 2] = raw & 0xFF
            else:
                raise LinkError(f"unknown fixup kind {fixup.kind!r}")
