"""Compiler driver: source text to :class:`ModuleCode`.

``compile_program`` is the usual entry point: it parses every module,
collects cross-module signatures, and generates code for the requested
target.  Per section 2, the target (linkage, argument convention) is
baked into the encoding, so comparing implementations means recompiling —
which is exactly what the benchmark harness does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.interp.machineconfig import ArgConvention, LinkageKind, MachineConfig
from repro.isa.program import ModuleCode
from repro.lang import ast
from repro.lang.analysis import ProgramInfo
from repro.lang.codegen import CodegenOptions, generate_module
from repro.lang.parser import parse_module


@dataclass
class CompileOptions:
    """Source-to-encoding choices (a subset of the machine config)."""

    linkage: LinkageKind = LinkageKind.MESA
    arg_convention: ArgConvention = ArgConvention.COPY
    multi_instance: frozenset[str] = frozenset()
    #: Modules to keep behind the flexible EXTERNALCALL binding even
    #: under DIRECT linkage (the section 6/8 hybrid: early-bind "in the
    #: system" modules, stay flexible for code under development).
    flexible_modules: frozenset[str] = frozenset()
    #: Feedback-directed promotions: ``(module, procedure, call_ordinal)``
    #: sites compiled to SDFC/DFC even under MESA/SIMPLE linkage (see
    #: :mod:`repro.fdo`).
    promotions: frozenset[tuple[str, str, int]] = frozenset()
    #: Run the static verifier over the generated modules; errors raise
    #: :class:`repro.errors.CheckFailed` with the full report attached.
    check: bool = False

    @classmethod
    def for_config(
        cls,
        config: MachineConfig,
        multi_instance: frozenset[str] = frozenset(),
        flexible_modules: frozenset[str] = frozenset(),
        promotions: frozenset[tuple[str, str, int]] = frozenset(),
        check: bool = False,
    ) -> CompileOptions:
        """The compile options matching a machine configuration."""
        return cls(
            linkage=config.linkage,
            arg_convention=config.arg_convention,
            multi_instance=multi_instance,
            flexible_modules=flexible_modules,
            promotions=promotions,
            check=check,
        )

    def to_codegen(self) -> CodegenOptions:
        return CodegenOptions(
            linkage=self.linkage,
            arg_convention=self.arg_convention,
            multi_instance=self.multi_instance,
            flexible_modules=self.flexible_modules,
            promotions=self.promotions,
        )


def compile_program(
    sources: list[str], options: CompileOptions | None = None
) -> list[ModuleCode]:
    """Compile a whole program (a list of module source texts)."""
    options = options or CompileOptions()
    modules = [parse_module(source) for source in sources]
    info = ProgramInfo.collect(modules)
    generated = [generate_module(module, info, options.to_codegen()) for module in modules]
    if options.check:
        from repro.check.checker import check_modules
        from repro.errors import CheckFailed

        report = check_modules(generated, convention=options.arg_convention)
        if not report.ok:
            raise CheckFailed(report)
    return generated


def compile_module(
    source: str,
    options: CompileOptions | None = None,
    externals: ProgramInfo | None = None,
) -> ModuleCode:
    """Compile one module; *externals* supplies other modules' signatures."""
    options = options or CompileOptions()
    module = parse_module(source)
    info = externals or ProgramInfo()
    own = ProgramInfo.collect([module])
    merged = ProgramInfo(signatures={**info.signatures, **own.signatures})
    return generate_module(module, merged, options.to_codegen())


def parse_only(source: str) -> ast.ModuleDecl:
    """Parse without generating code (for tooling and tests)."""
    return parse_module(source)


def check_entry(modules: list[ModuleCode], entry: tuple[str, str]) -> None:
    """Validate that the entry procedure exists (friendlier link errors)."""
    for module in modules:
        if module.name == entry[0]:
            module.procedure_named(entry[1])
            return
    raise SemanticError(f"entry module {entry[0]!r} not found")
