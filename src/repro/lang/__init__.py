"""The compiler and linker (the paper's TRANSLATE_S).

A small Algol/Mesa-like source language — modules, procedures, integer
variables, VAR parameters, control flow — compiled to the stack bytecode
of :mod:`repro.isa`.  The pieces:

* :mod:`repro.lang.lexer` / :mod:`repro.lang.parser` — source text to AST;
* :mod:`repro.lang.analysis` — scopes, symbol tables, frame layout;
* :mod:`repro.lang.codegen` — AST to procedure bodies, with the calling
  sequence chosen by the target linkage (EXTERNALCALL for I1/I2,
  DIRECTCALL/SHORTDIRECTCALL for I3/I4, COPY or RENAME argument
  convention);
* :mod:`repro.lang.compiler` — the driver: source to
  :class:`~repro.isa.program.ModuleCode`;
* :mod:`repro.lang.linker` — modules to a runnable
  :class:`~repro.interp.image.ProgramImage` (tables built, direct calls
  patched).

Changing the linkage means recompiling, exactly as section 2 prescribes:
"Changing the encoding affects the compiler and the encoded programs, and
hence requires recompilation.  If done correctly, it does not affect the
source programs."
"""

from repro.lang.compiler import CompileOptions, compile_module, compile_program
from repro.lang.linker import LinkOptions, link

__all__ = [
    "CompileOptions",
    "LinkOptions",
    "compile_module",
    "compile_program",
    "link",
]
