"""Lexer: source text to tokens.

Comments are Pascal-style ``(* ... *)`` and nest, as in Mesa.
Identifiers are case-sensitive; keywords are upper-case.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.lang.tokens import KEYWORDS, SYMBOLS, Token, TokenKind


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; raises :class:`LexError` with position on junk."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = source[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if source.startswith("(*", index):
            depth = 1
            start_line, start_col = line, column
            advance(2)
            while index < length and depth:
                if source.startswith("(*", index):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", index):
                    depth -= 1
                    advance(2)
                else:
                    advance(1)
            if depth:
                raise LexError("unterminated comment", start_line, start_col)
            continue
        if char.isdigit():
            start = index
            start_line, start_col = line, column
            while index < length and source[index].isdigit():
                advance(1)
            tokens.append(Token(TokenKind.NUMBER, source[start:index], start_line, start_col))
            continue
        if char.isalpha() or char == "_":
            start = index
            start_line, start_col = line, column
            while index < length and (source[index].isalnum() or source[index] == "_"):
                advance(1)
            text = source[start:index]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        for symbol in SYMBOLS:
            if source.startswith(symbol, index):
                tokens.append(Token(TokenKind.SYMBOL, symbol, line, column))
                advance(len(symbol))
                break
        else:
            raise LexError(f"unexpected character {char!r}", line, column)
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
