"""Name resolution, signatures, and frame layout.

The analysis pass is deliberately thin — one scalar type makes most of
classical semantic analysis unnecessary — but it settles the three
things code generation needs:

* every name's storage class and slot (parameter/local index within the
  frame, or global index within the module's global frame);
* every call's target signature (argument count, value-returning or
  not), including cross-module targets;
* the module's import list, ordered by **static call frequency**, so the
  most frequent external targets get the one-byte ``EFC0``-``EFC7``
  opcodes (section 5.1).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.lang import ast


@dataclass(frozen=True)
class Signature:
    """What a caller must know about a procedure."""

    module: str
    name: str
    arg_count: int
    returns_value: bool


@dataclass
class ProgramInfo:
    """Signatures of every procedure in a program, keyed by (module, proc)."""

    signatures: dict[tuple[str, str], Signature] = field(default_factory=dict)

    @classmethod
    def collect(cls, modules: list[ast.ModuleDecl]) -> ProgramInfo:
        info = cls()
        for module in modules:
            for procedure in module.procedures:
                key = (module.name, procedure.name)
                if key in info.signatures:
                    raise SemanticError(
                        f"duplicate procedure {module.name}.{procedure.name}",
                        procedure.pos.line,
                        procedure.pos.column,
                    )
                info.signatures[key] = Signature(
                    module=module.name,
                    name=procedure.name,
                    arg_count=len(procedure.params),
                    returns_value=procedure.returns_value,
                )
        return info

    def lookup(self, module: str, proc: str, pos: ast.Position) -> Signature:
        try:
            return self.signatures[(module, proc)]
        except KeyError:
            raise SemanticError(
                f"unknown procedure {module}.{proc}", pos.line, pos.column
            ) from None


@dataclass
class Scope:
    """One procedure's name bindings: locals by slot, globals by index."""

    module: str
    proc: str
    locals: dict[str, int]
    globals: dict[str, int]

    def local_slot(self, name: str) -> int | None:
        return self.locals.get(name)

    def global_index(self, name: str) -> int | None:
        return self.globals.get(name)

    def resolve(self, name: str, pos: ast.Position) -> tuple[str, int]:
        """Return ("local", slot) or ("global", index); error if unbound."""
        slot = self.locals.get(name)
        if slot is not None:
            return ("local", slot)
        index = self.globals.get(name)
        if index is not None:
            return ("global", index)
        raise SemanticError(
            f"undefined name {name!r} in {self.module}.{self.proc}",
            pos.line,
            pos.column,
        )


def build_scope(module: ast.ModuleDecl, procedure: ast.ProcDecl) -> Scope:
    """Lay out a procedure's frame: parameters first, then locals.

    Parameters occupying the first slots is what makes the RENAME
    convention work: the stack bank's argument words become exactly
    those slots (section 7.2).
    """
    locals_map: dict[str, int] = {}
    for index, param in enumerate(procedure.params):
        if param.name in locals_map:
            raise SemanticError(
                f"duplicate parameter {param.name!r}", param.pos.line, param.pos.column
            )
        locals_map[param.name] = index
    for name in procedure.locals:
        if name in locals_map:
            raise SemanticError(
                f"local {name!r} shadows a parameter or duplicate local",
                procedure.pos.line,
                procedure.pos.column,
            )
        locals_map[name] = len(locals_map)
    globals_map: dict[str, int] = {}
    for index, name in enumerate(module.globals):
        if name in globals_map:
            raise SemanticError(f"duplicate global {name!r}")
        globals_map[name] = index
    return Scope(module.name, procedure.name, locals_map, globals_map)


def external_call_frequencies(module: ast.ModuleDecl) -> list[tuple[str, str]]:
    """External targets ordered by static call count, most frequent first.

    Section 5.1: "There are a number of one-byte opcodes, so that the
    (statically) most frequently called procedures in a module can be
    called in a single byte."  The order returned here becomes the link
    vector order, so indices 0-7 are the hottest targets.
    """
    counts: Counter[tuple[str, str]] = Counter()
    order: dict[tuple[str, str], int] = {}

    def visit_expr(node: ast.Expr) -> None:
        if isinstance(node, ast.Call):
            if node.module is not None and node.module != module.name:
                key = (node.module, node.proc)
                counts[key] += 1
                order.setdefault(key, len(order))
            for arg in node.args:
                visit_expr(arg)
        elif isinstance(node, ast.ProcLiteral):
            if node.module is not None and node.module != module.name:
                key = (node.module, node.proc)
                counts[key] += 1
                order.setdefault(key, len(order))
        elif isinstance(node, ast.XferExpr):
            visit_expr(node.dest)
            for arg in node.args:
                visit_expr(arg)
        elif isinstance(node, ast.BinOp):
            visit_expr(node.left)
            visit_expr(node.right)
        elif isinstance(node, (ast.UnOp, ast.Deref)):
            inner = node.operand if isinstance(node, ast.UnOp) else node.pointer
            visit_expr(inner)

    def visit_stmt(node: ast.Stmt) -> None:
        if isinstance(node, ast.Assign):
            visit_expr(node.value)
        elif isinstance(node, ast.StoreThrough):
            visit_expr(node.pointer)
            visit_expr(node.value)
        elif isinstance(node, ast.If):
            visit_expr(node.condition)
            for child in node.then_body + node.else_body:
                visit_stmt(child)
        elif isinstance(node, ast.While):
            visit_expr(node.condition)
            for child in node.body:
                visit_stmt(child)
        elif isinstance(node, ast.Return) and node.value is not None:
            visit_expr(node.value)
        elif isinstance(node, (ast.Output, ast.ExprStmt)):
            visit_expr(node.value if isinstance(node, ast.Output) else node.expr)

    for procedure in module.procedures:
        for statement in procedure.body:
            visit_stmt(statement)
    # Stable order: frequency descending, then first appearance.
    return sorted(counts, key=lambda key: (-counts[key], order[key]))


def contains_call(node: ast.Expr) -> bool:
    """Does evaluating *node* transfer control (call or XFER)?

    Code generation uses this to enforce the section 5.2 discipline: a
    transfer happens only when the evaluation stack holds nothing but the
    outgoing argument record ("code of the form f[g[], h[]] requires the
    results of g to be saved before h is called, and then retrieved").
    """
    if isinstance(node, (ast.Call, ast.XferExpr)):
        return True
    if isinstance(node, ast.BinOp):
        return contains_call(node.left) or contains_call(node.right)
    if isinstance(node, ast.UnOp):
        return contains_call(node.operand)
    if isinstance(node, ast.Deref):
        return contains_call(node.pointer)
    return False
