"""Abstract syntax for the mini-Mesa language.

The language is deliberately small — integers, procedures, modules,
structured control flow, explicit pointers (``@x`` / ``^p``), and the
control-transfer builtins — but it is enough to express every workload
the paper's statistics describe: call-heavy numeric code, recursion,
module-crossing calls, VAR-parameter pointer passing (section 7.4), and
coroutines over raw XFER.

A program is a set of ``MODULE``\\ s.  Procedures return at most one INT.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    line: int
    column: int


# -- expressions -----------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    pos: Position


@dataclass(frozen=True)
class Num(Expr):
    value: int


@dataclass(frozen=True)
class Name(Expr):
    """A variable use (local, parameter, or module global)."""

    ident: str


@dataclass(frozen=True)
class Deref(Expr):
    """``^p`` — read through a pointer."""

    pointer: Expr


@dataclass(frozen=True)
class AddrOf(Expr):
    """``@x`` — the address of a local or global (section 7.4's hazard)."""

    ident: str


@dataclass(frozen=True)
class BinOp(Expr):
    op: str  # + - * DIV MOD AND OR  = # < <= > >=
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    op: str  # - NOT
    operand: Expr


@dataclass(frozen=True)
class Call(Expr):
    """A procedure call; ``module`` is None for same-module calls."""

    module: str | None
    proc: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class XferExpr(Expr):
    """``XFER(dest, value...)`` — raw transfer; evaluates to the first
    word of the record that eventually transfers back in."""

    dest: Expr
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class MyContext(Expr):
    """``MYCONTEXT()`` — the running frame's context word (LLC)."""


@dataclass(frozen=True)
class SourceCtx(Expr):
    """``SOURCE()`` — the returnContext register (LRC): who last
    transferred to us."""


@dataclass(frozen=True)
class ProcLiteral(Expr):
    """``PROC(Mod.p)`` — the packed procedure descriptor as a value
    (section 4: "LOADLITERAL f; XFER")."""

    module: str | None
    proc: str


@dataclass(frozen=True)
class Allocate(Expr):
    """``ALLOCATE(n)`` — an n-word record from the frame heap (the long
    argument records of section 4)."""

    words: Expr


# -- statements ---------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    pos: Position


@dataclass(frozen=True)
class Assign(Stmt):
    target: str
    value: Expr


@dataclass(frozen=True)
class StoreThrough(Stmt):
    """``^p := e`` — write through a pointer."""

    pointer: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    condition: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...]


@dataclass(frozen=True)
class While(Stmt):
    condition: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None


@dataclass(frozen=True)
class Output(Stmt):
    """``OUTPUT e`` — append a value to the machine's output channel."""

    value: Expr


@dataclass(frozen=True)
class YieldStmt(Stmt):
    """``YIELD`` — voluntary process switch."""


@dataclass(frozen=True)
class Dispose(Stmt):
    """``DISPOSE p`` — free a record or retained frame by pointer."""

    pointer: Expr


@dataclass(frozen=True)
class RetainStmt(Stmt):
    """``RETAIN`` — mark the current frame retained (section 4)."""


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """A call (or XFER) in statement position; any result is discarded."""

    expr: Expr


# -- declarations ------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    name: str
    pos: Position


@dataclass(frozen=True)
class ProcDecl:
    name: str
    params: tuple[Param, ...]
    returns_value: bool
    locals: tuple[str, ...]
    body: tuple[Stmt, ...]
    pos: Position


@dataclass
class ModuleDecl:
    name: str
    globals: list[str] = field(default_factory=list)
    procedures: list[ProcDecl] = field(default_factory=list)

    def procedure(self, name: str) -> ProcDecl:
        for procedure in self.procedures:
            if procedure.name == name:
                return procedure
        raise KeyError(name)
