"""Token kinds for the mini-Mesa source language."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "ident"
    NUMBER = "number"
    KEYWORD = "keyword"
    SYMBOL = "symbol"
    EOF = "eof"


#: Reserved words.  ``DIV``/``MOD``/``AND``/``OR``/``NOT`` are operators;
#: ``XFER``/``MYCONTEXT``/``SOURCE``/``PROC`` are the control-transfer
#: builtins that expose the model's XFER primitive to source programs.
KEYWORDS = frozenset(
    {
        "MODULE",
        "PROCEDURE",
        "VAR",
        "INT",
        "BEGIN",
        "END",
        "IF",
        "THEN",
        "ELSE",
        "WHILE",
        "DO",
        "RETURN",
        "OUTPUT",
        "YIELD",
        "DIV",
        "MOD",
        "AND",
        "OR",
        "NOT",
        "XFER",
        "MYCONTEXT",
        "SOURCE",
        "PROC",
        "ALLOCATE",
        "DISPOSE",
        "RETAIN",
    }
)

#: Multi-character symbols first (the lexer tries longest match).
SYMBOLS = (
    ":=",
    "<=",
    ">=",
    ";",
    ":",
    ",",
    ".",
    "(",
    ")",
    "=",
    "#",
    "<",
    ">",
    "+",
    "-",
    "*",
    "@",
    "^",
)


@dataclass(frozen=True)
class Token:
    """One token with its source position (1-based line and column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.text == symbol

    def __str__(self) -> str:
        return f"{self.text!r}" if self.text else "<eof>"
