"""Code generation: AST to procedure bodies, per linkage and convention.

The calling sequence is where the implementations differ, so the
generator is parameterized by the target:

* **linkage** — same-module calls become ``LFC`` (I1/I2) or the
  PC-relative ``SDFC`` (I3/I4, jump-speed fetch); cross-module calls
  become ``EFC*`` through the link vector, or ``DFC`` with a link-time
  fixup — unless the target module is multi-instance, in which case the
  generator falls back to ``EFC`` exactly as D2 prescribes;
* **argument convention** — under COPY the callee gets a prologue of
  store-local instructions popping its arguments (section 5.2); under
  RENAME there is no prologue at all, because the stack bank becomes the
  frame bank and "the arguments will automatically appear as the first
  few local variables" (section 7.2).

Expression evaluation keeps the section 5.2 invariant that a transfer
happens only when the evaluation stack holds exactly the outgoing
argument record: operands alive across a call are spilled to frame
temporaries first (the measured cost of ``f[g[], h[]]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.interp.frames import LOCALS_BASE
from repro.interp.machineconfig import ArgConvention, LinkageKind
from repro.isa.assembler import (
    Assembler,
    Label,
    external_call,
    load_immediate,
    load_local,
    store_local,
)
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.isa.program import CallFixup, ModuleCode, Procedure
from repro.lang import ast
from repro.lang.analysis import (
    ProgramInfo,
    Scope,
    Signature,
    build_scope,
    contains_call,
    external_call_frequencies,
)

_BINARY_OPS = {
    "+": Op.ADD,
    "-": Op.SUB,
    "*": Op.MUL,
    "DIV": Op.DIV,
    "MOD": Op.MOD,
    "AND": Op.AND,
    "OR": Op.OR,
    "=": Op.EQ,
    "#": Op.NE,
    "<": Op.LT,
    "<=": Op.LE,
    ">": Op.GT,
    ">=": Op.GE,
}


@dataclass
class CodegenOptions:
    """The target the generator compiles for."""

    linkage: LinkageKind = LinkageKind.MESA
    arg_convention: ArgConvention = ArgConvention.COPY
    #: Modules linked with more than one instance: direct calls to them
    #: are impossible (D2) and same-module calls must stay LOCALCALL.
    multi_instance: frozenset[str] = frozenset()
    #: Under DIRECT linkage: modules whose procedures should stay behind
    #: the flexible EXTERNALCALL binding anyway.  Section 6: "If there is
    #: uncertainty about the procedure, it is best to stay with the more
    #: costly but flexible scheme" — the paper's hybrid (section 8: "an
    #: encoding which allows both the generality of §5 and the early
    #: binding of §6 is attractive").
    flexible_modules: frozenset[str] = frozenset()
    #: Selective early binding under MESA/SIMPLE linkage: call sites named
    #: as ``(module, procedure, call_ordinal)`` compile to SDFC (same
    #: module) or DFC (external) instead of LOCALCALL/EXTERNALCALL.  The
    #: ordinal counts the procedure's call sites in source order, which is
    #: also their body-offset order.  This is the feedback-directed half
    #: of the section 6/8 hybrid: the optimizer promotes exactly the hot
    #: monomorphic sites and leaves the rest on the flexible scheme.
    promotions: frozenset[tuple[str, str, int]] = frozenset()


@dataclass
class _PendingFixup:
    label: Label
    kind: str
    target_module: str
    target_procedure: str


class ProcedureGenerator:
    """Generates one procedure's body."""

    def __init__(
        self,
        module: ast.ModuleDecl,
        procedure: ast.ProcDecl,
        info: ProgramInfo,
        options: CodegenOptions,
        module_code: ModuleCode,
    ) -> None:
        self.module = module
        self.procedure = procedure
        self.info = info
        self.options = options
        self.module_code = module_code
        self.scope: Scope = build_scope(module, procedure)
        self.asm = Assembler()
        self._fixups: list[_PendingFixup] = []
        self._temp_base = len(self.scope.locals)
        self._temp_depth = 0
        self._max_temps = 0
        #: Statically tracked evaluation-stack depth, to enforce the
        #: empty-stack-at-transfer invariant.
        self._depth = 0
        #: Symbol metadata for the interprocedural analyzer: does the
        #: body perform a general XF, and does it capture a context word?
        self._performs_xfer = False
        self._captures_context = False
        #: Source-order index of the next call site, matched against
        #: :attr:`CodegenOptions.promotions`.
        self._call_ordinal = 0

    # -- driver ---------------------------------------------------------------

    def generate(self) -> tuple[Procedure, list[CallFixup]]:
        if self.options.arg_convention is ArgConvention.COPY:
            # Prologue: pop the arguments into their parameter slots
            # (last argument is on top).  Section 5.2: "When a procedure
            # is entered after a call, it stores the arguments into local
            # variables with ordinary STORE instructions."
            for index in reversed(range(len(self.procedure.params))):
                self.asm.emit_instruction(store_local(index))
        # Under RENAME there is no prologue: the arguments are already
        # the first locals (section 7.2).
        for statement in self.procedure.body:
            self._stmt(statement)
        if not self.procedure.body or not isinstance(self.procedure.body[-1], ast.Return):
            self._check_falls_off_end()
            self.asm.emit(Op.RET)
        body = self.asm.assemble()
        frame_words = LOCALS_BASE + len(self.scope.locals) + self._max_temps
        compiled = Procedure(
            name=self.procedure.name,
            ev_index=-1,  # assigned by the module generator
            arg_count=len(self.procedure.params),
            result_count=1 if self.procedure.returns_value else 0,
            frame_words=frame_words,
            body=body,
            performs_xfer=self._performs_xfer,
            captures_context=self._captures_context,
        )
        fixups = [
            CallFixup(
                procedure=self.procedure.name,
                site_offset=pending.label.offset,
                kind=pending.kind,
                target_module=pending.target_module,
                target_procedure=pending.target_procedure,
            )
            for pending in self._fixups
        ]
        return compiled, fixups

    def _check_falls_off_end(self) -> None:
        if self.procedure.returns_value:
            raise SemanticError(
                f"{self.module.name}.{self.procedure.name} returns INT but "
                "can fall off its end",
                self.procedure.pos.line,
                self.procedure.pos.column,
            )

    # -- temporaries ---------------------------------------------------------------

    def _take_temp(self) -> int:
        slot = self._temp_base + self._temp_depth
        self._temp_depth += 1
        self._max_temps = max(self._max_temps, self._temp_depth)
        return slot

    def _drop_temp(self) -> None:
        self._temp_depth -= 1

    # -- statements -------------------------------------------------------------------

    def _stmt(self, node: ast.Stmt) -> None:
        assert self._depth == 0, "statements start with an empty stack"
        if isinstance(node, ast.Assign):
            self._expr(node.value)
            kind, slot = self.scope.resolve(node.target, node.pos)
            if kind == "local":
                self.asm.emit_instruction(store_local(slot))
            else:
                self.asm.emit(Op.SG, slot)
            self._depth -= 1
        elif isinstance(node, ast.StoreThrough):
            # WR pops address then value: push value first, then address.
            self._spill_aware_pair(node.value, node.pointer)
            self.asm.emit(Op.WR)
            self._depth -= 2
        elif isinstance(node, ast.If):
            self._if(node)
        elif isinstance(node, ast.While):
            self._while(node)
        elif isinstance(node, ast.Return):
            self._return(node)
        elif isinstance(node, ast.Output):
            self._expr(node.value)
            self.asm.emit(Op.OUT)
            self._depth -= 1
        elif isinstance(node, ast.YieldStmt):
            self.asm.emit(Op.YIELD)
        elif isinstance(node, ast.RetainStmt):
            self.asm.emit(Op.RETAIN)
        elif isinstance(node, ast.Dispose):
            self._expr(node.pointer)
            self.asm.emit(Op.FREE)
            self._depth -= 1
        elif isinstance(node, ast.ExprStmt):
            produced = self._expr_statement(node.expr)
            if produced:
                self.asm.emit(Op.POP)
                self._depth -= 1
        else:  # pragma: no cover - parser produces no other statements
            raise SemanticError(f"unhandled statement {node!r}")
        assert self._depth == 0, "statements end with an empty stack"

    def _if(self, node: ast.If) -> None:
        self._expr(node.condition)
        self._depth -= 1
        else_label = self.asm.new_label("else")
        self.asm.jump(Op.JZB, else_label)
        for child in node.then_body:
            self._stmt(child)
        if node.else_body:
            end_label = self.asm.new_label("endif")
            self.asm.jump(Op.JB, end_label)
            self.asm.bind(else_label)
            for child in node.else_body:
                self._stmt(child)
            self.asm.bind(end_label)
        else:
            self.asm.bind(else_label)

    def _while(self, node: ast.While) -> None:
        top = self.asm.new_label("while")
        exit_label = self.asm.new_label("endwhile")
        self.asm.bind(top)
        self._expr(node.condition)
        self._depth -= 1
        self.asm.jump(Op.JZB, exit_label)
        for child in node.body:
            self._stmt(child)
        self.asm.jump(Op.JB, top)
        self.asm.bind(exit_label)

    def _return(self, node: ast.Return) -> None:
        if self.procedure.returns_value:
            if node.value is None:
                raise SemanticError(
                    f"{self.procedure.name} must return a value",
                    node.pos.line,
                    node.pos.column,
                )
            self._expr(node.value)
            self._depth -= 1
        elif node.value is not None:
            raise SemanticError(
                f"{self.procedure.name} returns nothing", node.pos.line, node.pos.column
            )
        self.asm.emit(Op.RET)

    def _expr_statement(self, node: ast.Expr) -> bool:
        """Generate a call/XFER in statement position; True if it left a value."""
        if isinstance(node, ast.Call):
            signature = self._signature_of(node)
            self._call(node, signature)
            return signature.returns_value
        if isinstance(node, ast.XferExpr):
            self._xfer(node)
            return True  # the incoming record's one word
        raise SemanticError(
            "only calls and XFER may stand as statements",
            node.pos.line,
            node.pos.column,
        )

    # -- expressions -----------------------------------------------------------------------

    def _expr(self, node: ast.Expr) -> None:
        """Generate code leaving exactly one value on the stack."""
        if isinstance(node, ast.Num):
            if not 0 <= node.value <= 0xFFFF:
                raise SemanticError(
                    f"literal {node.value} outside 16 bits", node.pos.line, node.pos.column
                )
            self.asm.emit_instruction(load_immediate(node.value))
            self._depth += 1
        elif isinstance(node, ast.Name):
            kind, slot = self.scope.resolve(node.ident, node.pos)
            if kind == "local":
                self.asm.emit_instruction(load_local(slot))
            else:
                self.asm.emit(Op.LG, slot)
            self._depth += 1
        elif isinstance(node, ast.AddrOf):
            kind, slot = self.scope.resolve(node.ident, node.pos)
            if kind == "local":
                self.asm.emit(Op.LLA, slot)
            else:
                self.asm.emit(Op.LGA, slot)
            self._depth += 1
        elif isinstance(node, ast.Deref):
            self._expr(node.pointer)
            self.asm.emit(Op.RD)
        elif isinstance(node, ast.UnOp):
            self._expr(node.operand)
            if node.op == "-":
                self.asm.emit(Op.NEG)
            else:  # logical NOT: x = 0
                self.asm.emit(Op.LI0)
                self.asm.emit(Op.EQ)
        elif isinstance(node, ast.BinOp):
            self._spill_aware_pair(node.left, node.right)
            self.asm.emit(_BINARY_OPS[node.op])
            self._depth -= 1
        elif isinstance(node, ast.Call):
            signature = self._signature_of(node)
            if not signature.returns_value:
                raise SemanticError(
                    f"{signature.module}.{signature.name} returns no value",
                    node.pos.line,
                    node.pos.column,
                )
            self._call(node, signature)
            self._depth += 1
        elif isinstance(node, ast.XferExpr):
            self._xfer(node)
            self._depth += 1
        elif isinstance(node, ast.MyContext):
            self.asm.emit(Op.LLC)
            self._captures_context = True
            self._depth += 1
        elif isinstance(node, ast.SourceCtx):
            self.asm.emit(Op.LRC)
            self._captures_context = True
            self._depth += 1
        elif isinstance(node, ast.ProcLiteral):
            self._proc_literal(node)
            self._depth += 1
        elif isinstance(node, ast.Allocate):
            self._expr(node.words)
            self.asm.emit(Op.ALOC)
        else:  # pragma: no cover - parser produces no other expressions
            raise SemanticError(f"unhandled expression {node!r}")

    def _spill_aware_pair(self, first: ast.Expr, second: ast.Expr) -> None:
        """Evaluate two operands, spilling across any transfer in the second.

        Leaves first below second on the stack.  If *second* transfers
        control, the first operand is parked in a frame temporary so the
        transfer sees only its own argument record (section 5.2).
        """
        if contains_call(second):
            self._expr(first)
            temp = self._take_temp()
            self.asm.emit_instruction(store_local(temp))
            self._depth -= 1
            self._expr(second)
            second_temp = self._take_temp()
            self.asm.emit_instruction(store_local(second_temp))
            self._depth -= 1
            self.asm.emit_instruction(load_local(temp))
            self.asm.emit_instruction(load_local(second_temp))
            self._depth += 2
            self._drop_temp()
            self._drop_temp()
        else:
            self._expr(first)
            self._expr(second)

    # -- transfers -------------------------------------------------------------------------------

    def _signature_of(self, node: ast.Call) -> Signature:
        module_name = node.module or self.module.name
        signature = self.info.lookup(module_name, node.proc, node.pos)
        if len(node.args) != signature.arg_count:
            raise SemanticError(
                f"{module_name}.{node.proc} takes {signature.arg_count} "
                f"argument(s), got {len(node.args)}",
                node.pos.line,
                node.pos.column,
            )
        return signature

    def _push_arguments(self, args: tuple[ast.Expr, ...], pos: ast.Position) -> None:
        """Load an argument record, spilling nested transfers to temps.

        After this, the stack holds exactly the record (plus whatever was
        below, which the caller guarantees is nothing).
        """
        if self._depth != 0:
            raise SemanticError(
                "internal: transfer with a non-empty stack", pos.line, pos.column
            )
        # Only a transfer in a *later* argument endangers earlier results.
        nested = any(contains_call(argument) for argument in args[1:])
        if nested:
            # Evaluate every argument to a temporary first — "the results
            # of g to be saved before h is called, and then retrieved".
            temps: list[int] = []
            for argument in args:
                self._expr(argument)
                temp = self._take_temp()
                self.asm.emit_instruction(store_local(temp))
                self._depth -= 1
                temps.append(temp)
            for temp in temps:
                self.asm.emit_instruction(load_local(temp))
                self._depth += 1
            for _ in temps:
                self._drop_temp()
        else:
            for argument in args:
                self._expr(argument)

    def _call(self, node: ast.Call, signature: Signature) -> None:
        """Emit the record load and the call instruction for the linkage."""
        self._push_arguments(node.args, node.pos)
        external = signature.module != self.module.name
        direct = self.options.linkage is LinkageKind.DIRECT
        flexible = signature.module in self.options.flexible_modules
        promoted = (
            self.module.name,
            self.procedure.name,
            self._call_ordinal,
        ) in self.options.promotions
        self._call_ordinal += 1
        if not external:
            own_multi = self.module.name in self.options.multi_instance
            if (direct or promoted) and not own_multi and not flexible:
                self._emit_direct("sdfc", signature)
            else:
                target = self.module.procedure(signature.name)
                ev_index = self.module.procedures.index(target)
                self.asm.emit(Op.LFC, ev_index)
        else:
            target_multi = signature.module in self.options.multi_instance
            if (direct or promoted) and not target_multi and not flexible:
                self._emit_direct("dfc", signature)
            else:
                lv_index = self.module_code.import_index(signature.module, signature.name)
                self.asm.emit_instruction(external_call(lv_index))
        self._depth -= len(node.args)

    def _emit_direct(self, kind: str, signature: Signature) -> None:
        label = self.asm.new_label(f"{kind}:{signature.module}.{signature.name}")
        self.asm.bind(label)
        if kind == "dfc":
            self.asm.emit(Op.DFC, 0)
        else:
            self.asm.emit_instruction(Instruction(Op.SDFC, 0))
        self._fixups.append(
            _PendingFixup(label, kind, signature.module, signature.name)
        )

    def _xfer(self, node: ast.XferExpr) -> None:
        """``XFER(dest, values...)``: record then destination word, then XF."""
        if self._depth != 0:
            raise SemanticError(
                "XFER with operands still on the stack", node.pos.line, node.pos.column
            )
        self._push_arguments(node.args, node.pos)
        if contains_call(node.dest):
            raise SemanticError(
                "the XFER destination may not itself transfer",
                node.pos.line,
                node.pos.column,
            )
        self._expr(node.dest)
        self.asm.emit(Op.XF)
        self._performs_xfer = True
        # The outgoing record and destination are consumed; the incoming
        # record (one word by convention) replaces them.
        self._depth -= len(node.args) + 1

    def _proc_literal(self, node: ast.ProcLiteral) -> None:
        module_name = node.module or self.module.name
        self.info.lookup(module_name, node.proc, node.pos)  # existence check
        label = self.asm.new_label(f"desc:{module_name}.{node.proc}")
        self.asm.bind(label)
        self.asm.emit(Op.LIW, 0)
        self._fixups.append(_PendingFixup(label, "desc", module_name, node.proc))


def generate_module(
    module: ast.ModuleDecl, info: ProgramInfo, options: CodegenOptions
) -> ModuleCode:
    """Compile every procedure of *module* into a :class:`ModuleCode`."""
    code = ModuleCode(name=module.name, global_words=len(module.globals))
    # Pre-populate imports in static-frequency order so that indices 0-7
    # get the one-byte call opcodes.
    for key in external_call_frequencies(module):
        code.import_index(*key)
    for ev_index, procedure in enumerate(module.procedures):
        generator = ProcedureGenerator(module, procedure, info, options, code)
        compiled, fixups = generator.generate()
        compiled.ev_index = ev_index
        code.procedures.append(compiled)
        code.fixups.extend(fixups)
    return code
