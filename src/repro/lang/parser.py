"""Recursive-descent parser for the mini-Mesa language.

Grammar (EBNF, ``{}`` = repetition, ``[]`` = option)::

    module     = "MODULE" ident ";" {globals} {procedure} "END" "."
    globals    = "VAR" identlist ":" "INT" ";"
    procedure  = "PROCEDURE" ident "(" [identlist] ")" [":" "INT"] ";"
                 {locals} "BEGIN" stmts "END" ";"
    locals     = "VAR" identlist ":" "INT" ";"
    stmts      = {stmt ";"}
    stmt       = assign | storethrough | if | while | return
               | "OUTPUT" expr | "YIELD" | call-or-xfer
    assign     = ident ":=" expr
    storethrough = "^" factor ":=" expr
    if         = "IF" expr "THEN" stmts ["ELSE" stmts] "END"
    while      = "WHILE" expr "DO" stmts "END"
    return     = "RETURN" [expr]
    expr       = simple [("="|"#"|"<"|"<="|">"|">=") simple]
    simple     = ["-"] term {("+"|"-"|"OR") term}
    term       = factor {("*"|"DIV"|"MOD"|"AND") factor}
    factor     = number | designator | call | "(" expr ")" | "NOT" factor
               | "@" ident | "^" factor
               | "XFER" "(" expr {"," expr} ")"
               | "MYCONTEXT" "(" ")" | "SOURCE" "(" ")"
               | "PROC" "(" [ident "."] ident ")"
    call       = [ident "."] ident "(" [expr {"," expr}] ")"
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind

_RELOPS = {"=", "#", "<", "<=", ">", ">="}
_ADDOPS = {"+", "-"}
_MULOPS = {"*"}


class Parser:
    """One-token-lookahead recursive descent."""

    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _pos(self) -> ast.Position:
        return ast.Position(self.current.line, self.current.column)

    def _error(self, message: str) -> ParseError:
        token = self.current
        return ParseError(f"{message}, found {token}", token.line, token.column)

    def _expect_symbol(self, symbol: str) -> Token:
        if not self.current.is_symbol(symbol):
            raise self._error(f"expected {symbol!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self._error(f"expected {word}")
        return self._advance()

    def _expect_ident(self) -> str:
        if self.current.kind is not TokenKind.IDENT:
            raise self._error("expected an identifier")
        return self._advance().text

    def _accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self._advance()
            return True
        return False

    def _accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self._advance()
            return True
        return False

    # -- declarations -------------------------------------------------------------

    def parse_module(self) -> ast.ModuleDecl:
        self._expect_keyword("MODULE")
        name = self._expect_ident()
        self._expect_symbol(";")
        module = ast.ModuleDecl(name=name)
        while self.current.is_keyword("VAR"):
            module.globals.extend(self._var_decl())
        while self.current.is_keyword("PROCEDURE"):
            module.procedures.append(self._procedure())
        self._expect_keyword("END")
        self._expect_symbol(".")
        if self.current.kind is not TokenKind.EOF:
            raise self._error("trailing text after module end")
        return module

    def _var_decl(self) -> list[str]:
        self._expect_keyword("VAR")
        names = [self._expect_ident()]
        while self._accept_symbol(","):
            names.append(self._expect_ident())
        self._expect_symbol(":")
        self._expect_keyword("INT")
        self._expect_symbol(";")
        return names

    def _procedure(self) -> ast.ProcDecl:
        pos = self._pos()
        self._expect_keyword("PROCEDURE")
        name = self._expect_ident()
        self._expect_symbol("(")
        params: list[ast.Param] = []
        if not self.current.is_symbol(")"):
            params.append(ast.Param(self._expect_ident(), self._pos()))
            while self._accept_symbol(","):
                params.append(ast.Param(self._expect_ident(), self._pos()))
        self._expect_symbol(")")
        returns_value = False
        if self._accept_symbol(":"):
            self._expect_keyword("INT")
            returns_value = True
        self._expect_symbol(";")
        local_names: list[str] = []
        while self.current.is_keyword("VAR"):
            local_names.extend(self._var_decl())
        self._expect_keyword("BEGIN")
        body = self._statements()
        self._expect_keyword("END")
        self._expect_symbol(";")
        return ast.ProcDecl(
            name=name,
            params=tuple(params),
            returns_value=returns_value,
            locals=tuple(local_names),
            body=body,
            pos=pos,
        )

    # -- statements --------------------------------------------------------------------

    def _statements(self) -> tuple[ast.Stmt, ...]:
        body: list[ast.Stmt] = []
        while not (
            self.current.is_keyword("END") or self.current.is_keyword("ELSE")
        ):
            body.append(self._statement())
            self._expect_symbol(";")
        return tuple(body)

    def _statement(self) -> ast.Stmt:
        pos = self._pos()
        if self.current.is_keyword("IF"):
            return self._if_statement()
        if self.current.is_keyword("WHILE"):
            return self._while_statement()
        if self.current.is_keyword("RETURN"):
            self._advance()
            if self.current.is_symbol(";"):
                return ast.Return(pos, None)
            return ast.Return(pos, self._expression())
        if self.current.is_keyword("OUTPUT"):
            self._advance()
            return ast.Output(pos, self._expression())
        if self.current.is_keyword("YIELD"):
            self._advance()
            return ast.YieldStmt(pos)
        if self.current.is_keyword("RETAIN"):
            self._advance()
            return ast.RetainStmt(pos)
        if self.current.is_keyword("DISPOSE"):
            self._advance()
            return ast.Dispose(pos, self._expression())
        if self.current.is_keyword("XFER"):
            return ast.ExprStmt(pos, self._factor())
        if self.current.is_symbol("^"):
            self._advance()
            pointer = self._factor()
            self._expect_symbol(":=")
            return ast.StoreThrough(pos, pointer, self._expression())
        if self.current.kind is TokenKind.IDENT:
            # assignment, or a call in statement position
            name = self._advance().text
            if self._accept_symbol(":="):
                return ast.Assign(pos, name, self._expression())
            return ast.ExprStmt(pos, self._call_tail(pos, name))
        raise self._error("expected a statement")

    def _if_statement(self) -> ast.Stmt:
        pos = self._pos()
        self._expect_keyword("IF")
        condition = self._expression()
        self._expect_keyword("THEN")
        then_body = self._statements()
        else_body: tuple[ast.Stmt, ...] = ()
        if self._accept_keyword("ELSE"):
            else_body = self._statements()
        self._expect_keyword("END")
        return ast.If(pos, condition, then_body, else_body)

    def _while_statement(self) -> ast.Stmt:
        pos = self._pos()
        self._expect_keyword("WHILE")
        condition = self._expression()
        self._expect_keyword("DO")
        body = self._statements()
        self._expect_keyword("END")
        return ast.While(pos, condition, body)

    # -- expressions ------------------------------------------------------------------------

    def _expression(self) -> ast.Expr:
        pos = self._pos()
        left = self._simple()
        if self.current.kind is TokenKind.SYMBOL and self.current.text in _RELOPS:
            op = self._advance().text
            right = self._simple()
            return ast.BinOp(pos, op, left, right)
        return left

    def _simple(self) -> ast.Expr:
        pos = self._pos()
        if self._accept_symbol("-"):
            left: ast.Expr = ast.UnOp(pos, "-", self._term())
        else:
            left = self._term()
        while True:
            if self.current.kind is TokenKind.SYMBOL and self.current.text in _ADDOPS:
                op = self._advance().text
            elif self.current.is_keyword("OR"):
                self._advance()
                op = "OR"
            else:
                return left
            left = ast.BinOp(pos, op, left, self._term())

    def _term(self) -> ast.Expr:
        pos = self._pos()
        left = self._factor()
        while True:
            if self.current.kind is TokenKind.SYMBOL and self.current.text in _MULOPS:
                op = self._advance().text
            elif self.current.is_keyword("DIV"):
                self._advance()
                op = "DIV"
            elif self.current.is_keyword("MOD"):
                self._advance()
                op = "MOD"
            elif self.current.is_keyword("AND"):
                self._advance()
                op = "AND"
            else:
                return left
            left = ast.BinOp(pos, op, left, self._factor())

    def _factor(self) -> ast.Expr:
        pos = self._pos()
        token = self.current
        if token.kind is TokenKind.NUMBER:
            self._advance()
            return ast.Num(pos, int(token.text))
        if token.is_symbol("("):
            self._advance()
            inner = self._expression()
            self._expect_symbol(")")
            return inner
        if token.is_keyword("NOT"):
            self._advance()
            return ast.UnOp(pos, "NOT", self._factor())
        if token.is_symbol("@"):
            self._advance()
            return ast.AddrOf(pos, self._expect_ident())
        if token.is_symbol("^"):
            self._advance()
            return ast.Deref(pos, self._factor())
        if token.is_keyword("XFER"):
            self._advance()
            self._expect_symbol("(")
            dest = self._expression()
            args: list[ast.Expr] = []
            while self._accept_symbol(","):
                args.append(self._expression())
            self._expect_symbol(")")
            return ast.XferExpr(pos, dest, tuple(args))
        if token.is_keyword("MYCONTEXT"):
            self._advance()
            self._expect_symbol("(")
            self._expect_symbol(")")
            return ast.MyContext(pos)
        if token.is_keyword("SOURCE"):
            self._advance()
            self._expect_symbol("(")
            self._expect_symbol(")")
            return ast.SourceCtx(pos)
        if token.is_keyword("ALLOCATE"):
            self._advance()
            self._expect_symbol("(")
            words = self._expression()
            self._expect_symbol(")")
            return ast.Allocate(pos, words)
        if token.is_keyword("PROC"):
            self._advance()
            self._expect_symbol("(")
            first = self._expect_ident()
            module: str | None = None
            proc = first
            if self._accept_symbol("."):
                module = first
                proc = self._expect_ident()
            self._expect_symbol(")")
            return ast.ProcLiteral(pos, module, proc)
        if token.kind is TokenKind.IDENT:
            name = self._advance().text
            if self.current.is_symbol("(") or self.current.is_symbol("."):
                return self._call_tail(pos, name)
            return ast.Name(pos, name)
        raise self._error("expected an expression")

    def _call_tail(self, pos: ast.Position, first: str) -> ast.Expr:
        """Parse the rest of a call after its leading identifier."""
        module: str | None = None
        proc = first
        if self._accept_symbol("."):
            module = first
            proc = self._expect_ident()
        self._expect_symbol("(")
        args: list[ast.Expr] = []
        if not self.current.is_symbol(")"):
            args.append(self._expression())
            while self._accept_symbol(","):
                args.append(self._expression())
        self._expect_symbol(")")
        return ast.Call(pos, module, proc, tuple(args))


def parse_module(source: str) -> ast.ModuleDecl:
    """Parse one module's source text."""
    return Parser(tokenize(source)).parse_module()
