"""Global frame layout and placement (section 5.1).

A module instance's global frame holds, "in addition to the global
variables of the instance, ... the code base; this is an application of
point (3) above" (several table entries sharing a common part).  Our
layout, in words from the frame base:

====  =======================================================
word  contents
====  =======================================================
0     code base (byte address of the module's code segment)
1     link vector base (word address of this module's LV)
2     module instance id (diagnostics; a real GF has a flag word)
3..   global variables
====  =======================================================

Global frames are quad-aligned inside a dedicated region so that GFT
entries have their two bias bits free.
"""

from __future__ import annotations

from repro.errors import LinkError
from repro.machine.memory import Memory
from repro.mesa.tables import GF_ALIGNMENT

#: Header words before the globals.
GF_HEADER_WORDS = 3

#: Header field offsets.
GF_CODE_BASE = 0
GF_LINK_VECTOR = 1
GF_MODULE_ID = 2


class GlobalFrameBuilder:
    """Places global frames, quad-aligned, inside a memory region.

    The builder is a link-time object: placement writes use the uncounted
    loader interface.  Run-time access to a placed frame goes through the
    counted helpers below.
    """

    def __init__(self, memory: Memory, base: int, words: int) -> None:
        self.memory = memory
        self.base = base
        self.limit = base + words
        self._cursor = _align_up(base, GF_ALIGNMENT)

    def place(self, code_base: int, lv_base: int, module_id: int, global_words: int) -> int:
        """Allocate and initialize one global frame; returns its address."""
        size = GF_HEADER_WORDS + global_words
        address = self._cursor
        if address + size > self.limit:
            raise LinkError(
                f"global frame region exhausted placing {size} words at "
                f"{address:#x}"
            )
        self._cursor = _align_up(address + size, GF_ALIGNMENT)
        self.memory.poke(address + GF_CODE_BASE, code_base)
        self.memory.poke(address + GF_LINK_VECTOR, lv_base)
        self.memory.poke(address + GF_MODULE_ID, module_id)
        for offset in range(global_words):
            self.memory.poke(address + GF_HEADER_WORDS + offset, 0)
        return address

    @property
    def words_used(self) -> int:
        """Words consumed so far (for space accounting)."""
        return self._cursor - self.base


def read_code_base(memory: Memory, gf_address: int) -> int:
    """Run-time counted read of a global frame's code base."""
    return memory.read(gf_address + GF_CODE_BASE)


def read_link_vector(memory: Memory, gf_address: int) -> int:
    """Run-time counted read of a global frame's link vector base."""
    return memory.read(gf_address + GF_LINK_VECTOR)


def global_address(gf_address: int, index: int) -> int:
    """Word address of global variable *index* of the given frame."""
    return gf_address + GF_HEADER_WORDS + index


def _align_up(value: int, alignment: int) -> int:
    remainder = value % alignment
    return value if remainder == 0 else value + alignment - remainder
