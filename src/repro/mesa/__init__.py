"""The Mesa implementation's data structures (section 5, I2).

Everything here embodies one idea (the paper's T1-T3): "changing a full
memory address to an index into a table, and storing the original address
in the table entry".  The four tables, in the order an EXTERNALCALL meets
them (Figure 1):

1. the **link vector** LV — one entry per procedure called statically from
   a module, holding a procedure descriptor;
2. the **global frame table** GFT — one entry per module instance, holding
   the (quad-aligned) global frame address plus a 2-bit entry-point bias;
3. the **global frame** — globals plus the *code base* of the module's
   code segment;
4. the **entry vector** EV — at the code base, one 16-bit entry per
   procedure giving its first byte (the fsi byte) relative to the code
   base.

The packed 16-bit procedure descriptor (1 tag + 10 env + 5 code bits) and
its bias escape hatch live in :mod:`repro.mesa.descriptor`.
"""

from repro.mesa.descriptor import (
    NIL,
    ContextKind,
    context_kind,
    frame_context,
    is_descriptor,
    is_frame,
    pack_descriptor,
    unpack_descriptor,
)
from repro.mesa.globalframe import GF_HEADER_WORDS, GlobalFrameBuilder
from repro.mesa.linkage import ResolvedTarget, resolve_descriptor, resolve_local
from repro.mesa.tables import GlobalFrameTable, LinkVector, WideLinkVector

__all__ = [
    "NIL",
    "ContextKind",
    "GF_HEADER_WORDS",
    "GlobalFrameBuilder",
    "GlobalFrameTable",
    "LinkVector",
    "ResolvedTarget",
    "WideLinkVector",
    "context_kind",
    "frame_context",
    "is_descriptor",
    "is_frame",
    "pack_descriptor",
    "resolve_descriptor",
    "resolve_local",
    "unpack_descriptor",
]
