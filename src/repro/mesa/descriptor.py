"""Context words and the packed procedure descriptor (sections 4-5).

A *context* in the machine encoding is one 16-bit word, the variant record
of section 4::

    Context: TYPE = RECORD [
      CASE tag: {frame, proc} OF
        frame => [ FramePointer ];
        proc  => [ code: ProcPointer, env: EnvPointer ]
      ENDCASE]

Section 5.1 gives the Mesa packing: "It is packed into a 16 bit word, with
a one bit tag, a ten bit env field, and a five bit code field."  We use
the low bit as the tag.  Frame pointers are always even (the allocators
guarantee it), so:

* ``0`` is NIL;
* an even nonzero word is a frame pointer;
* an odd word is a procedure descriptor: ``env`` (a GFT index) in bits
  15..6 and ``code`` (an EV index) in bits 5..1.

The five-bit code field caps a module at 32 entry points; the 2 spare
bits of a GFT entry supply a *bias* in multiples of 32, so "a single
module instance may have up to four GFT entries, all pointing to the same
global frame, but with different biases, for a total of 128 entries" —
:func:`effective_entry_index` implements that arithmetic.
"""

from __future__ import annotations

import enum

from repro.errors import InvalidContext, OperandRangeError

#: The NIL context ("returnContext is set to NIL by a return").
NIL = 0

#: Field widths of the packed descriptor.
ENV_BITS = 10
CODE_BITS = 5

#: Limits implied by the widths.
MAX_ENV = (1 << ENV_BITS) - 1  # 1023: the GFT can index 1024 instances
MAX_CODE = (1 << CODE_BITS) - 1  # 31: entry points per GFT entry
ENTRIES_PER_BIAS = 1 << CODE_BITS  # 32
MAX_BIAS = 3  # two spare GFT bits
MAX_BIASED_ENTRIES = ENTRIES_PER_BIAS * (MAX_BIAS + 1)  # 128


class ContextKind(enum.Enum):
    """The three shapes a context word can take."""

    NIL = "nil"
    FRAME = "frame"
    PROCEDURE = "procedure"


def pack_descriptor(env: int, code: int) -> int:
    """Pack (GFT index, EV index) into a 16-bit procedure descriptor."""
    if not 0 <= env <= MAX_ENV:
        raise OperandRangeError(f"env {env} exceeds {ENV_BITS}-bit GFT index")
    if not 0 <= code <= MAX_CODE:
        raise OperandRangeError(f"code {code} exceeds {CODE_BITS}-bit EV index")
    return (env << (CODE_BITS + 1)) | (code << 1) | 1


def unpack_descriptor(word: int) -> tuple[int, int]:
    """Unpack a descriptor word to (env, code); raises on non-descriptors."""
    if not is_descriptor(word):
        raise InvalidContext(f"word {word:#06x} is not a procedure descriptor")
    return (word >> (CODE_BITS + 1)) & MAX_ENV, (word >> 1) & MAX_CODE


def frame_context(frame_pointer: int) -> int:
    """The context word for an existing frame (the frame case)."""
    if frame_pointer == NIL:
        raise InvalidContext("NIL is not a frame")
    if frame_pointer % 2 != 0:
        raise InvalidContext(f"frame pointer {frame_pointer:#x} is not even")
    return frame_pointer


def is_descriptor(word: int) -> bool:
    """True if the word's tag bit marks a procedure descriptor."""
    return word % 2 == 1


def is_frame(word: int) -> bool:
    """True if the word is a (non-NIL) frame pointer."""
    return word != NIL and word % 2 == 0


def context_kind(word: int) -> ContextKind:
    """Classify a context word."""
    if word == NIL:
        return ContextKind.NIL
    if is_descriptor(word):
        return ContextKind.PROCEDURE
    return ContextKind.FRAME


def effective_entry_index(code: int, bias: int) -> int:
    """The EV index a descriptor reaches through a biased GFT entry.

    Section 5.1: "The two spare bits in a GFT entry are used to specify a
    bias for the entry point, in multiples of 32."
    """
    if not 0 <= bias <= MAX_BIAS:
        raise OperandRangeError(f"bias {bias} exceeds 2 bits")
    if not 0 <= code <= MAX_CODE:
        raise OperandRangeError(f"code {code} exceeds {CODE_BITS}-bit EV index")
    return code + ENTRIES_PER_BIAS * bias
