"""Call-target resolution: the indirection chains of Figure 1.

Each function here performs one linkage discipline's run-time lookups,
through the *counted* memory interfaces, and reports how many levels of
table indirection it traversed.  The F1 benchmark calls these directly to
regenerate Figure 1's accounting; the interpreter calls them to execute
calls.

The chains:

========================  =============================================
discipline                levels (reads)
========================  =============================================
EXTERNALCALL (I2, §5.1)   LV -> GFT -> GF(code base) -> EV      (4)
LOCALCALL   (I2, §5.1)    EV                                    (1)
EXTERNALCALL (I1, §4)     wide LV (entry, gf)                   (2)
DIRECTCALL  (I3, §6)      none - GF and fsi are at the target   (0)
========================  =============================================

Every discipline then reads the frame-size byte at the procedure's entry
(it is the first byte of the procedure, section 5.1) before allocating
the frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.program import CodeSpace, DFC_HEADER_BYTES
from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import Memory
from repro.mesa.descriptor import effective_entry_index, unpack_descriptor
from repro.mesa.globalframe import read_code_base
from repro.mesa.tables import GlobalFrameTable, LinkVector, WideLinkVector


@dataclass(frozen=True)
class ResolvedTarget:
    """Everything a call needs about its destination procedure.

    ``entry_address`` is the absolute code address of the procedure's fsi
    byte; execution starts at ``entry_address + 1``.  ``code_base`` is -1
    when the discipline did not need to discover it (DIRECTCALL leaves it
    to be fetched lazily from the global frame if the context is ever
    suspended).  ``levels`` counts table indirections, the Figure 1
    metric.
    """

    gf_address: int
    code_base: int
    entry_address: int
    fsi: int
    levels: int

    @property
    def first_instruction(self) -> int:
        """Absolute code address of the procedure's first instruction."""
        return self.entry_address + 1


def resolve_descriptor(
    memory: Memory,
    code: CodeSpace,
    gft: GlobalFrameTable,
    descriptor: int,
) -> ResolvedTarget:
    """Resolve a packed procedure descriptor (I2): GFT -> GF -> EV.

    Three counted reads plus the fsi byte; callers that fetched the
    descriptor from a link vector add one more level (Figure 1's four).
    """
    env, code_index = unpack_descriptor(descriptor)
    gf_address, bias = gft.read_entry(env)  # read 1: GFT entry
    code_base = read_code_base(memory, gf_address)  # read 2: code base in GF
    ev_index = effective_entry_index(code_index, bias)
    offset = code.read_ev_entry(code_base, ev_index)  # read 3: EV entry
    entry = code_base + offset
    fsi = code.read_byte(entry)  # the frame-size byte (section 5.3)
    return ResolvedTarget(
        gf_address=gf_address,
        code_base=code_base,
        entry_address=entry,
        fsi=fsi,
        levels=3,
    )


def resolve_external_mesa(
    memory: Memory,
    code: CodeSpace,
    gft: GlobalFrameTable,
    lv: LinkVector,
    index: int,
) -> ResolvedTarget:
    """The full EXTERNALCALL chain of Figure 1: LV -> GFT -> GF -> EV."""
    descriptor = lv.read_entry(index)  # read 0: the link vector
    target = resolve_descriptor(memory, code, gft, descriptor)
    return ResolvedTarget(
        gf_address=target.gf_address,
        code_base=target.code_base,
        entry_address=target.entry_address,
        fsi=target.fsi,
        levels=target.levels + 1,
    )


def resolve_local(
    memory: Memory,
    code: CodeSpace,
    gf_address: int,
    code_base: int,
    ev_index: int,
) -> ResolvedTarget:
    """LOCALCALL (section 5.1): same environment, one EV indirection.

    "A call to a procedure in the same module is handled by a LOCALCALL n
    instruction ... it keeps the same environment and code base, and has
    only one level of indirection."
    """
    offset = code.read_ev_entry(code_base, ev_index)
    entry = code_base + offset
    fsi = code.read_byte(entry)
    return ResolvedTarget(
        gf_address=gf_address,
        code_base=code_base,
        entry_address=entry,
        fsi=fsi,
        levels=1,
    )


def resolve_external_wide(
    memory: Memory,
    code: CodeSpace,
    lv: WideLinkVector,
    index: int,
) -> ResolvedTarget:
    """I1's external call: the wide link vector holds full addresses."""
    entry, gf_address = lv.read_entry(index)  # two counted reads
    fsi = code.read_byte(entry)
    return ResolvedTarget(
        gf_address=gf_address,
        code_base=-1,  # I1 keeps absolute PCs; no code base needed
        entry_address=entry,
        fsi=fsi,
        levels=2,
    )


class LinkageCache:
    """Host-side memoization of call-site resolution (a simulation
    speedup, never a modelled mechanism).

    Call targets are overwhelmingly static — the link vector, GFT, EV
    and DIRECTCALL headers only change under the explicit code-swapping
    services — so a call site's :class:`ResolvedTarget` can be computed
    once and replayed.  To keep the paper metrics bit-identical, the
    first (miss) resolution records which counter events the table walk
    charged, and every hit replays exactly those charges without
    touching the tables.

    Invalidation follows the same "unusual event" discipline as the IFU
    return stack: any code-space epoch bump (relocation, procedure
    replacement, segment growth) empties the cache, and
    :mod:`repro.interp.services` also invalidates explicitly.
    """

    def __init__(self, counter: CycleCounter) -> None:
        self.counter = counter
        self._entries: dict[tuple[int, int], tuple[ResolvedTarget, tuple[tuple[Event, int], ...]]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple[int, int]) -> ResolvedTarget | None:
        """Return the cached target for *key*, replaying its modelled
        charges, or None on a miss (the caller resolves and stores)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        resolved, charges = entry
        record = self.counter.record
        for event, times in charges:
            record(event, times)
        return resolved

    def begin(self) -> dict[Event, int]:
        """Snapshot the counter before a miss's real table walk."""
        return dict(self.counter.counts)

    def store(
        self,
        key: tuple[int, int],
        resolved: ResolvedTarget,
        before: dict[Event, int],
    ) -> None:
        """Memoize *resolved* along with the events the walk charged."""
        counts = self.counter.counts
        charges = tuple(
            (event, counts[event] - seen)
            for event, seen in before.items()
            if counts[event] != seen
        )
        self._entries[key] = (resolved, charges)

    def invalidate(self) -> None:
        """Drop everything (code epoch bump or an explicit service)."""
        if self._entries:
            self._entries.clear()
        self.invalidations += 1

    def stats(self) -> dict[str, int]:
        """Host-side effectiveness counters (not paper metrics)."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }


def resolve_direct(code: CodeSpace, target_address: int, counted: bool = False) -> ResolvedTarget:
    """DIRECTCALL (section 6): GF and fsi are stored at the target.

    "at p is stored the global frame address GF and the frame size fsi,
    immediately followed by the first instruction" — zero table levels.
    The IFU streams over the header exactly as it streams instructions
    ("it converts GF and fsi into instructions of the form
    SETGLOBALFRAME GF and ALLOCATEFRAME fsi"), so by default the header
    bytes are *uncounted* IFU fetches, not data references; pass
    ``counted=True`` to model a machine without that IFU trick.
    """
    if counted:
        gf_address = code.read_word(target_address)
        fsi = code.read_byte(target_address + 2)
    else:
        high = code.fetch_byte(target_address)
        low = code.fetch_byte(target_address + 1)
        gf_address = (high << 8) | low
        fsi = code.fetch_byte(target_address + 2)
    return ResolvedTarget(
        gf_address=gf_address,
        code_base=-1,  # fetched lazily from the GF only if ever suspended
        entry_address=target_address + DFC_HEADER_BYTES - 1,
        fsi=fsi,
        levels=0,
    )
