"""The link vector and global frame table (section 5.1).

Both tables live inside the simulated memory, so every run-time lookup is
a counted memory reference — the levels of indirection in Figure 1 are
measured, not asserted.  Link-time population uses the uncounted loader
interface.

Two link-vector flavours exist because implementations I1 and I2 differ
exactly here:

* :class:`LinkVector` (I2) — one word per import, holding a packed 16-bit
  procedure descriptor; one read resolves it to (env, code) indices that
  then chain through the GFT and EV.
* :class:`WideLinkVector` (I1) — two words per import, holding the full
  entry address and full global frame address; no further tables needed.
  This is the "very straightforward" representation whose space cost
  motivates the whole of section 5 (point T1).
"""

from __future__ import annotations

from repro.errors import LinkError, OperandRangeError
from repro.machine.memory import Memory
from repro.mesa.descriptor import MAX_BIAS

#: Global frames are quad-aligned, so a GFT entry's low 2 bits are free
#: for the entry-point bias (section 5.1).
GF_ALIGNMENT = 4


class GlobalFrameTable:
    """The GFT: one word per module instance, ``gf_address | bias``.

    "A global frame table GFT with a 16 bit entry for each module
    instance; the entry holds the address of the global frame for the
    instance.  ...  they are limited to a 64k segment of the address
    space and are quad-aligned; hence 14 bits is enough to address a
    global frame."
    """

    def __init__(self, memory: Memory, base: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"GFT capacity must be positive, got {capacity}")
        self.memory = memory
        self.base = base
        self.capacity = capacity
        self._next_index = 0

    def add_entry(self, gf_address: int, bias: int = 0) -> int:
        """Link-time: append an entry; returns its GFT index (the env field)."""
        if gf_address % GF_ALIGNMENT != 0:
            raise LinkError(f"global frame {gf_address:#x} is not quad-aligned")
        if not 0 <= bias <= MAX_BIAS:
            raise OperandRangeError(f"bias {bias} exceeds 2 bits")
        if self._next_index >= self.capacity:
            raise LinkError(f"GFT full at {self.capacity} entries")
        index = self._next_index
        self._next_index += 1
        self.memory.poke(self.base + index, gf_address | bias)
        return index

    def read_entry(self, index: int) -> tuple[int, int]:
        """Run-time: one counted read; returns (gf_address, bias)."""
        if not 0 <= index < self._next_index:
            raise LinkError(f"GFT index {index} not populated")
        word = self.memory.read(self.base + index)
        return word & ~(GF_ALIGNMENT - 1), word & (GF_ALIGNMENT - 1)

    def peek_entry(self, index: int) -> tuple[int, int]:
        """Uncounted read, for analyses and dumps."""
        word = self.memory.peek(self.base + index)
        return word & ~(GF_ALIGNMENT - 1), word & (GF_ALIGNMENT - 1)

    def __len__(self) -> int:
        return self._next_index


class LinkVector:
    """A module's packed link vector (I2): one descriptor word per import.

    "A link vector LV associated with a module, with a 16 bit entry for
    each procedure called statically from the module; the entry holds the
    procedure descriptor."
    """

    WORDS_PER_ENTRY = 1

    def __init__(self, memory: Memory, base: int, capacity: int) -> None:
        self.memory = memory
        self.base = base
        self.capacity = capacity

    def set_entry(self, index: int, descriptor: int) -> None:
        """Link-time: store a packed descriptor at *index*."""
        self._check(index)
        self.memory.poke(self.base + index, descriptor)

    def read_entry(self, index: int) -> int:
        """Run-time: one counted read returning the descriptor word."""
        self._check(index)
        return self.memory.read(self.base + index)

    def words(self) -> int:
        """Table size in words (for space accounting)."""
        return self.capacity * self.WORDS_PER_ENTRY

    def _check(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise LinkError(f"link vector index {index} outside 0..{self.capacity - 1}")


class WideLinkVector:
    """I1's link vector: full (entry address, global frame address) pairs.

    The simple implementation of section 4 keeps complete addresses
    everywhere: resolving an external call costs two reads but no further
    indirection.  Space per entry doubles — the trade T1 quantifies.
    """

    WORDS_PER_ENTRY = 2

    def __init__(self, memory: Memory, base: int, capacity: int) -> None:
        self.memory = memory
        self.base = base
        self.capacity = capacity

    def set_entry(self, index: int, entry_address: int, gf_address: int) -> None:
        """Link-time: store the full address pair at *index*."""
        self._check(index)
        self.memory.poke(self.base + 2 * index, entry_address)
        self.memory.poke(self.base + 2 * index + 1, gf_address)

    def read_entry(self, index: int) -> tuple[int, int]:
        """Run-time: two counted reads returning (entry_address, gf_address)."""
        self._check(index)
        entry = self.memory.read(self.base + 2 * index)
        gf = self.memory.read(self.base + 2 * index + 1)
        return entry, gf

    def words(self) -> int:
        """Table size in words (for space accounting)."""
        return self.capacity * self.WORDS_PER_ENTRY

    def _check(self, index: int) -> None:
        if not 0 <= index < self.capacity:
            raise LinkError(f"link vector index {index} outside 0..{self.capacity - 1}")
