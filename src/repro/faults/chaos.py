"""The chaos conformance harness: seeded fault plans across I1-I4.

The paper's central promise is that I1-I4 are four implementations of
*one* machine: same programs, same answers, different costs.  That
promise must also hold under duress — an exhausted arena, a drained
free list, a flush storm, an injected trap, a kill-and-restore — or
the ladder's differential measurements mean nothing.  This harness
replays seeded :class:`~repro.faults.plan.FaultPlan` schedules over the
corpus on every implementation and classifies each run:

``RECOVERED``
    The machine absorbed the fault and finished with the program's
    expected results (the section 5.3 software allocator refilled a
    drained list; the section 7.1 fallback flushed and refilled).
``TRAPPED``
    The run surfaced a modelled trap cleanly — a
    :class:`~repro.errors.TrapError` with exact (kind, pc, proc)
    diagnostics — never a host exception from inside the interpreter.
``RESUMED``
    The machine was killed after a snapshot, restored onto a freshly
    linked image, and finished with expected results and modelled
    meters **bit-identical** to an uninterrupted reference run.

Conformance: for every seed x plan x program, all implementations must
land in the same outcome class (and on the same trap kind when
TRAPPED).  PCs and procedure names are asserted *valid* per
implementation, not equal across them — the four encodings place
instructions differently by design.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from repro.errors import TrapError
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, Injection, at_step, on_event
from repro.faults.snapshot import capture, restore
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.interp.traps import TrapKind, TrapTransfer
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.workloads.programs import CORPUS, Program

#: The report format version (see docs/faults.md for the policy).
CHAOS_SCHEMA = "repro-chaos/1"

#: Implementations under conformance test.
ALL_PRESETS = ("i1", "i2", "i3", "i4")

#: Default corpus subset: recursive programs stress the allocators and
#: the return stack; calls/mathlib stress linkage under flush storms.
DEFAULT_PROGRAMS = ("fib", "calls", "queens", "mathlib", "ackermann")

#: Restore attempts per case before declaring the plan divergent.
MAX_RESTORES = 3

#: Plans that only make sense where recursion forces every
#: implementation (including I4's deferred allocation) into the heap.
_RECURSIVE = frozenset({"fib", "ackermann", "queens"})


class OutcomeClass(enum.Enum):
    RECOVERED = "recovered"
    TRAPPED = "trapped"
    RESUMED = "resumed"


@dataclass
class Outcome:
    """How one (program, implementation, plan) run ended."""

    klass: OutcomeClass
    trap: str = ""
    pc: int = -1
    proc: str = ""
    detail: str = ""
    results: list[int] = field(default_factory=list)
    output: list[int] = field(default_factory=list)
    steps: int = 0
    meters: dict = field(default_factory=dict)
    restores: int = 0
    injections_fired: int = 0

    def to_dict(self) -> dict:
        return {
            "class": self.klass.value,
            "trap": self.trap,
            "pc": self.pc,
            "proc": self.proc,
            "detail": self.detail,
            "results": list(self.results),
            "steps": self.steps,
            "restores": self.restores,
            "injections_fired": self.injections_fired,
        }


class ChaosError(Exception):
    """The harness itself is misconfigured (not a conformance failure)."""


# ---------------------------------------------------------------------------
# Building machines and reference runs
# ---------------------------------------------------------------------------


def _build(program: Program, preset: str, engine: str = "interp") -> Machine:
    config = MachineConfig.preset(preset)
    modules = compile_program(list(program.sources), CompileOptions.for_config(config))
    image = link(modules, config, program.entry)
    machine = Machine(image)
    if engine == "jit":
        from repro.jit import install_jit

        install_jit(machine)
    return machine


class _EventCounter:
    """A minimal tracer that tallies event kinds (reference runs)."""

    trace_steps = False

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def emit(self, kind: str, name: str = "", **data) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1


@dataclass
class Reference:
    """An uninterrupted run of (program, preset): the oracle."""

    results: list[int]
    output: list[int]
    steps: int
    meters: dict
    event_counts: dict[str, int]


def reference_run(program: Program, preset: str) -> Reference:
    """Run *program* on *preset* with no faults; record the oracle."""
    machine = _build(program, preset)
    counter = _EventCounter()
    machine.attach_tracer(counter)
    machine.start(program.entry[0], program.entry[1], *program.args)
    results = machine.run()
    return Reference(
        results=results,
        output=list(machine.output),
        steps=machine.steps,
        meters=machine.counter.snapshot(),
        event_counts=dict(counter.counts),
    )


# ---------------------------------------------------------------------------
# Canned plan generators
# ---------------------------------------------------------------------------
#
# Each generator gets the program, the per-preset references (for
# sizing triggers so they fire on *every* implementation), and a seeded
# RNG; it returns a FaultPlan, or None when the plan does not apply to
# this program (e.g. too few allocations to target).


def _min_event(refs: dict[str, Reference], kind: str) -> int:
    return min(ref.event_counts.get(kind, 0) for ref in refs.values())


def _min_steps(refs: dict[str, Reference]) -> int:
    return min(ref.steps for ref in refs.values())


def _plan_av_empty(program, refs, rng) -> FaultPlan | None:
    """Drain every AV free list on the k-th allocation; the next one
    takes the section 5.3 software-allocator trap and the run recovers."""
    ceiling = _min_event(refs, "alloc.frame")
    if ceiling < 1:
        return None
    k = rng.randint(1, ceiling)
    return FaultPlan(
        name="av_empty",
        seed=0,
        injections=(Injection(on_event("alloc.frame", k), "drain_av"),),
    )


def _plan_heap_exhaust(program, refs, rng) -> FaultPlan | None:
    """Empty the frame arena at machine start; the first allocation must
    surface RESOURCE_EXHAUSTED on every implementation.

    Fires on ``machine.begin`` (not a mid-run step) because frees refill
    free lists: exhausting mid-run lets a free/allocate interleaving —
    which legitimately differs between implementations — decide whether
    the next allocation traps, and the outcome class would diverge.
    Only recursive programs apply: they call before they ever free, on
    every rung of the ladder including I4's deferred allocation.
    """
    if program.name not in _RECURSIVE:
        return None
    return FaultPlan(
        name="heap_exhaust",
        seed=0,
        injections=(Injection(on_event("machine.begin", 1), "exhaust_heap"),),
    )


def _plan_spill_storm(program, refs, rng) -> FaultPlan | None:
    """Force return-stack and bank flushes at three seeded call points;
    I3/I4 must fall back to the general scheme and still finish right
    (on I1/I2 the actions are no-ops and the run is undisturbed)."""
    calls = _min_event(refs, "xfer.call")
    if calls < 3:
        return None
    k = rng.randint(1, calls // 3)
    return FaultPlan(
        name="spill_storm",
        seed=0,
        injections=(
            Injection(on_event("xfer.call", k), "flush_rstack"),
            Injection(on_event("xfer.call", 2 * k), "flush_banks"),
            Injection(on_event("xfer.call", 3 * k), "flush_rstack"),
        ),
    )


def _plan_kill_resume(program, refs, rng) -> FaultPlan | None:
    """Snapshot at step S1, kill at step S2: the driver restores the
    snapshot onto a fresh image and the finished run must be
    bit-identical to the uninterrupted reference on all meters."""
    steps = _min_steps(refs)
    if steps < 10:
        return None
    s1 = rng.randint(1, steps // 2)
    s2 = rng.randint(s1 + 1, steps - 1)
    return FaultPlan(
        name="kill_resume",
        seed=0,
        injections=(
            Injection(at_step(s1), "snapshot"),
            Injection(at_step(s2), "kill"),
        ),
    )


def _plan_trap_inject(program, refs, rng) -> FaultPlan | None:
    """Dispatch a DIVIDE_BY_ZERO trap at a seeded step; with no trap
    context registered every implementation must surface the same
    TrapError kind with valid (pc, proc) diagnostics."""
    steps = _min_steps(refs)
    if steps < 2:
        return None
    s = rng.randint(1, steps - 1)
    return FaultPlan(
        name="trap_inject",
        seed=0,
        injections=(Injection(at_step(s), "trap", detail="divide_by_zero"),),
    )


CANNED_PLANS = {
    "av_empty": _plan_av_empty,
    "heap_exhaust": _plan_heap_exhaust,
    "spill_storm": _plan_spill_storm,
    "kill_resume": _plan_kill_resume,
    "trap_inject": _plan_trap_inject,
}


def make_plan(
    name: str, program: Program, refs: dict[str, Reference], seed: int
) -> FaultPlan | None:
    """Instantiate canned plan *name* for *program*, seeded; None if it
    does not apply.  The same (name, program, seed) always yields the
    same plan — triggers are sized from the references, which are a
    pure function of program and preset."""
    rng = random.Random(f"{name}:{program.name}:{seed}")
    plan = CANNED_PLANS[name](program, refs, rng)
    if plan is None:
        return None
    return FaultPlan(name=plan.name, seed=seed, injections=plan.injections)


# ---------------------------------------------------------------------------
# Running one case
# ---------------------------------------------------------------------------


def run_case(
    program: Program, preset: str, plan: FaultPlan, engine: str = "interp"
) -> Outcome:
    """Run *program* on *preset* under *plan*; classify the ending.

    The controller drives the machine's run loop: state actions fire
    inside the injector; control actions break the loop at an
    instruction boundary and are executed here (snapshot the state
    vector, kill-and-restore onto a fresh image, dispatch a trap).

    With ``engine="jit"`` every machine gets a compiled engine; the
    injector's tracer pins execution to the interpreter (the deopt
    contract), so outcomes must be identical — this arm checks that
    installing the engine never perturbs a faulted run.
    """
    machine = _build(program, preset, engine)
    injector = FaultInjector(plan)
    machine.attach_tracer(injector)
    machine.start(program.entry[0], program.entry[1], *program.args)

    saved: tuple[dict, dict] | None = None  # (machine state, injector state)
    restores = 0
    fired = 0

    while True:
        try:
            machine.run()
        except TrapError as err:
            return Outcome(
                klass=OutcomeClass.TRAPPED,
                trap=err.trap,
                pc=err.pc,
                proc=err.proc,
                detail=err.detail,
                steps=machine.steps,
                meters=machine.counter.snapshot(),
                restores=restores,
                injections_fired=fired + len(injector.fired),
            )
        if machine.halted:
            return Outcome(
                klass=(
                    OutcomeClass.RESUMED if restores else OutcomeClass.RECOVERED
                ),
                results=machine.results(),
                output=list(machine.output),
                steps=machine.steps,
                meters=machine.counter.snapshot(),
                restores=restores,
                injections_fired=fired + len(injector.fired),
            )
        # The injector broke the loop for a control action.
        machine.yield_requested = False
        for index, injection in injector.take_pending():
            if injection.action == "snapshot":
                saved = (capture(machine), injector.state())
            elif injection.action == "kill":
                if saved is None:
                    raise ChaosError(
                        f"plan {plan.name!r} kills at injection {index} "
                        f"with no prior snapshot"
                    )
                if restores >= MAX_RESTORES:
                    raise ChaosError(
                        f"plan {plan.name!r} exceeded {MAX_RESTORES} restores"
                    )
                fired += len(injector.fired)
                machine_state, injector_state = saved
                machine = _build(program, preset, engine)
                injector = FaultInjector(plan, state=injector_state)
                # The kill already happened; it must not fire again in
                # the restored run.
                injector.disarm(index)
                machine.attach_tracer(injector)
                restore(machine, machine_state)
                restores += 1
                break  # stale pending actions died with the old machine
            elif injection.action == "trap":
                try:
                    machine.trap(TrapKind(injection.detail), "injected")
                except TrapTransfer:
                    pass
                except TrapError as err:
                    return Outcome(
                        klass=OutcomeClass.TRAPPED,
                        trap=err.trap,
                        pc=err.pc,
                        proc=err.proc,
                        detail=err.detail,
                        steps=machine.steps,
                        meters=machine.counter.snapshot(),
                        restores=restores,
                        injections_fired=fired + len(injector.fired),
                    )


# ---------------------------------------------------------------------------
# The conformance sweep
# ---------------------------------------------------------------------------


@dataclass
class CaseResult:
    """One (program, seed, plan) cell: outcomes on every preset."""

    program: str
    seed: int
    plan: dict
    outcomes: dict[str, Outcome]
    failures: list[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "seed": self.seed,
            "plan": self.plan,
            "outcomes": {p: o.to_dict() for p, o in self.outcomes.items()},
            "failures": list(self.failures),
        }


@dataclass
class ChaosReport:
    """The full sweep: cases, skips, and the conformance verdict."""

    cases: list[CaseResult] = field(default_factory=list)
    skipped: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def to_dict(self) -> dict:
        return {
            "schema": CHAOS_SCHEMA,
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
            "skipped": list(self.skipped),
        }

    def summary(self) -> str:
        lines = []
        failed = [case for case in self.cases if not case.ok]
        by_class: dict[str, int] = {}
        for case in self.cases:
            for outcome in case.outcomes.values():
                key = outcome.klass.value
                by_class[key] = by_class.get(key, 0) + 1
        lines.append(
            f"chaos: {len(self.cases)} cases x {len(ALL_PRESETS)} impls, "
            f"{len(self.skipped)} skipped (plan not applicable)"
        )
        lines.append(
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(by_class.items()))
        )
        if failed:
            lines.append(f"FAILED: {len(failed)} non-conformant cases")
            for case in failed[:10]:
                lines.append(
                    f"  {case.program} seed={case.seed} "
                    f"plan={case.plan['name']}: {'; '.join(case.failures)}"
                )
        else:
            lines.append("all implementations conformant")
        return "\n".join(lines)


def _check_case(
    program: Program, plan: FaultPlan, outcomes: dict[str, Outcome],
    refs: dict[str, Reference],
) -> list[str]:
    """Conformance and per-outcome validity checks for one case."""
    failures: list[str] = []
    classes = {o.klass for o in outcomes.values()}
    if len(classes) > 1:
        failures.append(
            "outcome classes diverge: "
            + ", ".join(f"{p}={o.klass.value}" for p, o in sorted(outcomes.items()))
        )
        return failures

    klass = next(iter(classes))
    if klass is OutcomeClass.TRAPPED:
        kinds = {o.trap for o in outcomes.values()}
        if len(kinds) > 1:
            failures.append(f"trap kinds diverge: {sorted(kinds)}")
        for preset, outcome in outcomes.items():
            if not outcome.trap:
                failures.append(f"{preset}: trapped without a kind")
            if outcome.pc < 0:
                failures.append(f"{preset}: trapped without a pc")
            if not outcome.proc:
                failures.append(f"{preset}: trapped without a procedure")
        return failures

    expected = list(program.expect_results)
    for preset, outcome in outcomes.items():
        if outcome.results != expected:
            failures.append(
                f"{preset}: results {outcome.results} != expected {expected}"
            )
        if program.expect_output and outcome.output != list(program.expect_output):
            failures.append(f"{preset}: output diverged from the program's")
    if klass is OutcomeClass.RESUMED:
        for preset, outcome in outcomes.items():
            if outcome.restores < 1:
                failures.append(f"{preset}: classed RESUMED without a restore")
            if outcome.meters != refs[preset].meters:
                delta = {
                    key: outcome.meters.get(key, 0) - refs[preset].meters.get(key, 0)
                    for key in set(outcome.meters) | set(refs[preset].meters)
                    if outcome.meters.get(key, 0) != refs[preset].meters.get(key, 0)
                }
                failures.append(
                    f"{preset}: meters diverged from uninterrupted run: {delta}"
                )
            if outcome.steps != refs[preset].steps:
                failures.append(
                    f"{preset}: steps {outcome.steps} != reference "
                    f"{refs[preset].steps}"
                )
    return failures


def run_chaos(
    programs: tuple[str, ...] = DEFAULT_PROGRAMS,
    seeds: int | tuple[int, ...] = 5,
    plans: tuple[str, ...] = tuple(CANNED_PLANS),
    presets: tuple[str, ...] = ALL_PRESETS,
    engine: str = "interp",
) -> ChaosReport:
    """The sweep: programs x seeds x plans, each across *presets*."""
    seed_list = tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
    report = ChaosReport()
    for name in programs:
        program = CORPUS[name]
        if program.needs_descriptors and "i1" in presets:
            report.skipped.append({"program": name, "reason": "needs descriptors"})
            continue
        refs = {preset: reference_run(program, preset) for preset in presets}
        for seed in seed_list:
            for plan_name in plans:
                plan = make_plan(plan_name, program, refs, seed)
                if plan is None:
                    report.skipped.append(
                        {"program": name, "seed": seed, "plan": plan_name,
                         "reason": "not applicable"}
                    )
                    continue
                outcomes = {
                    preset: run_case(program, preset, plan, engine)
                    for preset in presets
                }
                failures = _check_case(program, plan, outcomes, refs)
                report.cases.append(
                    CaseResult(
                        program=name,
                        seed=seed,
                        plan=plan.to_dict(),
                        outcomes=outcomes,
                        failures=failures,
                    )
                )
    return report
