"""Deterministic fault injection, snapshot/restore, and chaos testing.

The paper's ladder of implementations (I1-I4) is only trustworthy if
every rung degrades *identically* under resource exhaustion: an empty AV
free list, a full frame arena, a bank-file overflow storm, a trap inside
a trap.  This package makes those situations reproducible on demand and
checks that the implementations never diverge:

* :mod:`repro.faults.plan` — a seeded, declarative **FaultPlan** DSL:
  inject at step N, at cycle N, or on the k-th occurrence of any traced
  event (``alloc.frame``, ``bank.spill``, ``ifu.flush``, ``xfer.trap``,
  ...).
* :mod:`repro.faults.inject` — the **FaultInjector**, a
  :class:`~repro.obs.tracer.Tracer` that watches the machine's own event
  stream and applies the plan.  Injection rides the existing
  observability hooks, so the interpreter needs no new branches and the
  modelled meters are untouched until a fault actually fires.
* :mod:`repro.faults.snapshot` — versioned serialization of the complete
  machine state vector (frames, heaps and AV free lists, bank file, IFU
  return stack, process table, counters, pending traps).  ``capture``
  then ``restore`` onto a freshly linked image resumes a run that is
  bit-identical to an uninterrupted one on all modelled meters.
* :mod:`repro.faults.chaos` — the conformance harness: replay seeded
  fault plans across I1-I4 over the corpus and assert every run
  **recovers**, **traps** cleanly with exact (kind, pc, proc)
  diagnostics, or **resumes** from its last snapshot — and that the
  implementations never disagree on the outcome class.

See ``docs/faults.md`` for the fault taxonomy and the snapshot schema
versioning policy.
"""

from repro.faults.chaos import (
    CANNED_PLANS,
    ChaosReport,
    Outcome,
    OutcomeClass,
    run_case,
    run_chaos,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import (
    CONTROL_ACTIONS,
    STATE_ACTIONS,
    FaultPlan,
    Injection,
    Trigger,
    at_cycle,
    at_step,
    on_event,
)
from repro.faults.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotError,
    capture,
    restore,
)

__all__ = [
    "CANNED_PLANS",
    "CONTROL_ACTIONS",
    "ChaosReport",
    "FaultInjector",
    "FaultPlan",
    "Injection",
    "Outcome",
    "OutcomeClass",
    "SNAPSHOT_SCHEMA",
    "STATE_ACTIONS",
    "SnapshotError",
    "Trigger",
    "at_cycle",
    "at_step",
    "capture",
    "on_event",
    "restore",
    "run_case",
    "run_chaos",
]
