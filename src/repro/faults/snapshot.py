"""Versioned snapshot/restore of the complete machine state vector.

The abstract machine's state is a closed, serializable object: the
sixteen-bit store, the code space, the evaluation stack, the machine
registers (LF, PC, GF, CB, returnContext), the frame graph, the frame
allocator (AV free lists, bump pointer, fast-frame stack, or first-fit
list), the IFU return stack, the register bank file with its renaming
assignment, the process table, the shared cycle counter, and any
registered trap contexts.  :func:`capture` serializes all of it to a
JSON-ready dict; :func:`restore` rebuilds it onto a **freshly linked
machine for the same program and configuration**, after which running
the machine is bit-identical — on every modelled meter — to never
having stopped.

Schema versioning policy (see ``docs/faults.md``): the schema string
``repro-snapshot/2`` names the layout; any change to the meaning or
shape of a section bumps the version, and :func:`restore` refuses a
snapshot whose schema it does not know.  (Version 2 added the process
records' ``remote`` field and the scheduler's ``blocks`` stat — a
process can now be BLOCKED on a Remote XFER, see :mod:`repro.net`.)  Host-side caches (decode
cache, linkage cache) are deliberately **not** captured: they are
rebuilt cold, and their charging discipline guarantees identical meters
either way.  Host trap *handlers* (Python callables) are likewise not
captured; trap *contexts* (in-machine procedure descriptors) are.

Frames are serialized as a graph keyed by Python identity: every
reachable :class:`~repro.interp.frames.FrameState` gets an index, and
frame-valued fields (machine.frame, returnContext, return-stack
entries, bank bindings, process records) store indices.  A frame is
reconstructed from its procedure's ``entry_address`` through
``image.procs_by_entry`` — the link step is deterministic, so entry
addresses agree between the capturing and restoring images.
"""

from __future__ import annotations

from repro.banks.bankfile import BankRole
from repro.banks.renaming import BankEvent
from repro.errors import ReproError
from repro.ifu.ifu import TransferKind
from repro.ifu.returnstack import ReturnStackEntry
from repro.interp.frames import FrameState
from repro.interp.traps import TrapKind

#: The schema this module writes and the only one it restores.
SNAPSHOT_SCHEMA = "repro-snapshot/2"

#: Config fields that must match between capture and restore; the rest
#: (cost model, step limit) are carried by the rebuilt image itself.
_CONFIG_FIELDS = (
    "linkage",
    "arg_convention",
    "allocator",
    "return_stack_depth",
    "return_stack_policy",
    "bank_count",
    "bank_words",
    "track_dirty",
    "deferred_allocation",
    "pointer_policy",
    "eval_stack_depth",
)

_ALLOC_STATS_FIELDS = (
    "allocations",
    "frees",
    "replenishments",
    "promotions",
    "live_requested_words",
    "live_block_words",
    "free_list_words",
    "high_water_words",
    "total_requested_words",
    "total_block_words",
)

_BANK_STATS_FIELDS = (
    "assignments",
    "releases",
    "overflows",
    "underflows",
    "words_spilled",
    "words_filled",
    "xfers",
)

_FAST_STATS_FIELDS = (
    "fast_allocations",
    "slow_allocations",
    "fast_frees",
    "slow_frees",
)

_DIVERT_FIELDS = ("references_checked", "region_hits", "diversions")


class SnapshotError(ReproError):
    """A snapshot cannot be taken or restored in the current state."""


def _config_token(config) -> dict:
    token = {}
    for name in _CONFIG_FIELDS:
        value = getattr(config, name)
        token[name] = getattr(value, "value", value)
    return token


def _rle_encode(words: list[int]) -> list[list[int]]:
    """Run-length encode a word array as [value, count] pairs."""
    runs: list[list[int]] = []
    for word in words:
        if runs and runs[-1][0] == word:
            runs[-1][1] += 1
        else:
            runs.append([word, 1])
    return runs


def _rle_decode(runs: list[list[int]]) -> list[int]:
    words: list[int] = []
    for value, count in runs:
        words.extend([value] * count)
    return words


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------


def _collect_frames(machine, scheduler=None) -> list[FrameState]:
    """Every FrameState the restored machine could ever touch."""
    seen: dict[int, FrameState] = {}

    def add(frame) -> None:
        if isinstance(frame, FrameState) and id(frame) not in seen:
            seen[id(frame)] = frame

    for frame in machine.frames.by_address.values():
        add(frame)
    add(machine.frame)
    add(machine.return_context)
    if machine.rstack is not None:
        for entry in machine.rstack.entries():
            add(entry.frame)
    if machine.bankfile is not None:
        for bank in machine.bankfile:
            add(bank.frame)
    if scheduler is not None:
        for process in scheduler.processes:
            add(process.frame)
    return list(seen.values())


def capture(machine, scheduler=None) -> dict:
    """Serialize the complete state vector of *machine* to a dict.

    The machine must be at an instruction boundary (between ``step()``
    calls — the run loop's yield break lands exactly there).  When a
    *scheduler* is supplied its process table is captured too, but only
    between time slices (``scheduler.current is None``): mid-slice the
    running process's state vector is split between the machine and the
    process record, and a snapshot would tear it.
    """
    if scheduler is not None and scheduler.current is not None:
        raise SnapshotError(
            "cannot snapshot mid-slice: the running process's state is "
            "not yet saved to its process record"
        )

    frames = _collect_frames(machine, scheduler)
    index_of = {id(frame): i for i, frame in enumerate(frames)}

    def ref(frame) -> int | None:
        return index_of[id(frame)] if isinstance(frame, FrameState) else None

    state: dict = {
        "schema": SNAPSHOT_SCHEMA,
        "config": _config_token(machine.config),
        "frames": [
            {
                "entry_address": f.proc.entry_address,
                "gf": f.gf,
                "fsi": f.fsi,
                "address": f.address,
                "code_base": f.code_base,
                "flagged": f.flagged,
                "freed": f.freed,
                "retained": f.retained,
                "stashed_stack": list(f.stashed_stack),
                "registered": (
                    f.address is not None
                    and machine.frames.by_address.get(f.address) is f
                ),
            }
            for f in frames
        ],
        "memory": {
            "size": machine.memory.size,
            "words": _rle_encode(machine.memory._words),
            "traffic": dict(machine.memory.traffic),
        },
        "code": {
            "bytes": machine.code.buffer.hex(),
            "epoch": machine.code.epoch,
        },
        "counter": {
            "counts": {e.value: c for e, c in machine.counter.counts.items()},
            "cycles": machine.counter.cycles,
        },
        "registers": {
            "frame": ref(machine.frame),
            "pc": machine.pc,
            "gf": machine.gf,
            "cb": machine.cb,
            "halted": machine.halted,
            "steps": machine.steps,
            "output": list(machine.output),
            "deferred_frames": machine.deferred_frames,
            "trap_count": machine.trap_count,
        },
        "stack": list(machine.stack.contents()),
        "return_context": _encode_return_context(machine, ref),
        "fetch": {
            "fast": {k.value: c for k, c in machine.fetch.fast.items()},
            "slow": {k.value: c for k, c in machine.fetch.slow.items()},
        },
        "divert": {
            name: getattr(machine.divert_stats, name) for name in _DIVERT_FIELDS
        },
        "trap_contexts": {
            kind.value: word for kind, word in machine.trap_contexts.items()
        },
    }

    if machine.rstack is not None:
        rstats = machine.rstack.stats
        state["rstack"] = {
            "entries": [
                {
                    "frame": ref(entry.frame),
                    "pc": entry.pc,
                    "cb": entry.cb,
                    "bank": entry.bank.id if entry.bank is not None else None,
                }
                for entry in machine.rstack.entries()
            ],
            "stats": {
                "pushes": rstats.pushes,
                "hits": rstats.hits,
                "misses": rstats.misses,
                "flushes": dict(rstats.flushes),
                "entries_flushed": rstats.entries_flushed,
            },
        }

    if machine.bankfile is not None:
        manager = machine.banks
        state["banks"] = {
            "file": [
                {
                    "id": bank.id,
                    "words": list(bank.words),
                    "role": bank.role.value,
                    "frame": ref(bank.frame),
                    "dirty": sorted(bank.dirty),
                    "assigned_at": bank.assigned_at,
                }
                for bank in machine.bankfile
            ],
            "seq": machine.bankfile._seq,
            "stats": {
                name: getattr(machine.bankfile.stats, name)
                for name in _BANK_STATS_FIELDS
            },
            "lbank": manager.lbank.id if manager.lbank is not None else None,
            "sbank": manager.sbank.id if manager.sbank is not None else None,
            "trace": [[e.event, e.lbank, e.sbank] for e in manager.trace],
        }

    av_heap = machine.image.av_heap
    if av_heap is not None:
        state["av_heap"] = {
            "bump": av_heap._bump,
            "live": {str(ptr): words for ptr, words in av_heap._live.items()},
            "known": sorted(av_heap._known),
            "stats": _alloc_stats_dict(av_heap.stats),
        }
    first_fit = machine.image.first_fit
    if first_fit is not None:
        state["first_fit"] = {
            "live": {str(ptr): words for ptr, words in first_fit._live.items()},
            "stats": _alloc_stats_dict(first_fit.stats),
        }
    if machine.fast_frames is not None:
        fast = machine.fast_frames
        state["fast_frames"] = {
            "stack": list(fast._stack),
            "stats": {
                name: getattr(fast.stats, name) for name in _FAST_STATS_FIELDS
            },
        }

    if scheduler is not None:
        state["scheduler"] = {
            "quantum": scheduler.quantum,
            "trap_quota": scheduler.trap_quota,
            "rotor": scheduler._rotor,
            "stats": {
                "switches": scheduler.stats.switches,
                "preemptions": scheduler.stats.preemptions,
                "yields": scheduler.stats.yields,
                "quarantines": scheduler.stats.quarantines,
                "blocks": scheduler.stats.blocks,
            },
            "processes": [
                {
                    "pid": p.pid,
                    "module": p.module,
                    "proc": p.proc,
                    "args": list(p.args),
                    "status": p.status.value,
                    "started": p.started,
                    "frame": ref(p.frame),
                    "pc": p.pc,
                    "gf": p.gf,
                    "cb": p.cb,
                    "stack": list(p.stack),
                    "results": list(p.results),
                    "steps": p.steps,
                    "traps": p.traps,
                    "fault": p.fault,
                    "remote": p.remote,
                }
                for p in scheduler.processes
            ],
        }

    return state


def _encode_return_context(machine, ref) -> dict:
    context = machine.return_context
    if isinstance(context, FrameState):
        return {"kind": "frame", "frame": ref(context)}
    if context is None:
        return {"kind": "none"}
    return {"kind": "word", "value": context}


def _alloc_stats_dict(stats) -> dict:
    data = {name: getattr(stats, name) for name in _ALLOC_STATS_FIELDS}
    data["per_class_allocations"] = {
        str(fsi): count for fsi, count in stats.per_class_allocations.items()
    }
    return data


# ---------------------------------------------------------------------------
# Restore
# ---------------------------------------------------------------------------


def restore(machine, state: dict, scheduler=None) -> None:
    """Load *state* into a freshly built machine for the same program.

    *machine* must come from re-linking the same sources with the same
    configuration — the deterministic link guarantees identical entry
    addresses and table layout, which the config token and code-length
    checks verify.  After restore, ``machine.run()`` continues exactly
    where the captured machine stopped.
    """
    schema = state.get("schema")
    if schema != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"unknown snapshot schema {schema!r} (this build reads "
            f"{SNAPSHOT_SCHEMA!r})"
        )
    token = _config_token(machine.config)
    if token != state["config"]:
        raise SnapshotError(
            f"configuration mismatch: snapshot {state['config']} vs "
            f"machine {token}"
        )
    if "scheduler" in state and scheduler is None:
        raise SnapshotError("snapshot carries a process table; pass a scheduler")

    # Code space: the relink should reproduce it bit-for-bit; restoring
    # the bytes also covers runs that patched code (services).
    code_bytes = bytes.fromhex(state["code"]["bytes"])
    if len(code_bytes) != len(machine.code.buffer):
        raise SnapshotError(
            f"code size mismatch: snapshot {len(code_bytes)} bytes vs "
            f"relinked image {len(machine.code.buffer)} — not the same program"
        )
    machine.code.buffer[:] = code_bytes
    machine.code.epoch = state["code"]["epoch"]
    machine.invalidate_linkage()

    # The store, whole.
    memory = machine.memory
    if state["memory"]["size"] != memory.size:
        raise SnapshotError("memory size mismatch")
    words = _rle_decode(state["memory"]["words"])
    if len(words) != memory.size:
        raise SnapshotError("memory image does not decode to the full store")
    memory._words[:] = words
    memory.traffic.clear()
    memory.traffic.update(state["memory"]["traffic"])

    # Meters.
    counter = machine.counter
    for event_value, count in state["counter"]["counts"].items():
        counter.counts[_event(event_value)] = count
    counter.cycles = state["counter"]["cycles"]

    # The frame graph.
    frames: list[FrameState] = []
    machine.frames.by_address.clear()
    for record in state["frames"]:
        meta = machine.image.procs_by_entry.get(record["entry_address"])
        if meta is None:
            raise SnapshotError(
                f"no procedure at entry {record['entry_address']:#x} in the "
                f"relinked image — not the same program"
            )
        frame = FrameState(
            proc=meta,
            gf=record["gf"],
            fsi=record["fsi"],
            address=record["address"],
            code_base=record["code_base"],
            flagged=record["flagged"],
            freed=record["freed"],
            retained=record["retained"],
            stashed_stack=tuple(record["stashed_stack"]),
        )
        frames.append(frame)
        if record["registered"]:
            machine.frames.register(frame)

    def deref(index) -> FrameState | None:
        return frames[index] if index is not None else None

    # Machine registers.
    registers = state["registers"]
    machine.frame = deref(registers["frame"])
    machine.pc = registers["pc"]
    machine.gf = registers["gf"]
    machine.cb = registers["cb"]
    machine.halted = registers["halted"]
    machine.steps = registers["steps"]
    machine.output = list(registers["output"])
    machine.deferred_frames = registers["deferred_frames"]
    machine.trap_count = registers["trap_count"]
    machine.yield_requested = False

    rc = state["return_context"]
    if rc["kind"] == "frame":
        machine.return_context = deref(rc["frame"])
    elif rc["kind"] == "word":
        machine.return_context = rc["value"]
    else:
        machine.return_context = None

    machine.stack.clear()
    machine.stack.load(tuple(state["stack"]))

    fetch = machine.fetch
    fetch.fast.clear()
    fetch.slow.clear()
    for value, count in state["fetch"]["fast"].items():
        fetch.fast[TransferKind(value)] = count
    for value, count in state["fetch"]["slow"].items():
        fetch.slow[TransferKind(value)] = count

    for name in _DIVERT_FIELDS:
        setattr(machine.divert_stats, name, state["divert"][name])

    machine.trap_contexts.clear()
    for kind_value, word in state["trap_contexts"].items():
        machine.trap_contexts[TrapKind(kind_value)] = word

    # The register bank file, before the return stack (entries point at
    # banks).
    if machine.bankfile is not None:
        banks_state = state.get("banks")
        if banks_state is None:
            raise SnapshotError("machine has banks but snapshot has none")
        bankfile = machine.bankfile
        for record in banks_state["file"]:
            bank = bankfile.bank(record["id"])
            bank.words[:] = record["words"]
            bank.role = BankRole(record["role"])
            bank.frame = deref(record["frame"])
            bank.dirty = set(record["dirty"])
            bank.assigned_at = record["assigned_at"]
        bankfile._seq = banks_state["seq"]
        for name in _BANK_STATS_FIELDS:
            setattr(bankfile.stats, name, banks_state["stats"][name])
        manager = machine.banks
        manager.lbank = (
            bankfile.bank(banks_state["lbank"])
            if banks_state["lbank"] is not None
            else None
        )
        manager.sbank = (
            bankfile.bank(banks_state["sbank"])
            if banks_state["sbank"] is not None
            else None
        )
        manager.trace = [
            BankEvent(event, lbank, sbank)
            for event, lbank, sbank in banks_state["trace"]
        ]

    if machine.rstack is not None:
        rstack_state = state.get("rstack")
        if rstack_state is None:
            raise SnapshotError("machine has a return stack but snapshot has none")
        rstack = machine.rstack
        rstack._entries.clear()
        for record in rstack_state["entries"]:
            rstack._entries.append(
                ReturnStackEntry(
                    frame=deref(record["frame"]),
                    pc=record["pc"],
                    cb=record["cb"],
                    bank=(
                        machine.bankfile.bank(record["bank"])
                        if record["bank"] is not None and machine.bankfile is not None
                        else None
                    ),
                )
            )
        stats = rstack.stats
        stats.pushes = rstack_state["stats"]["pushes"]
        stats.hits = rstack_state["stats"]["hits"]
        stats.misses = rstack_state["stats"]["misses"]
        stats.flushes = dict(rstack_state["stats"]["flushes"])
        stats.entries_flushed = rstack_state["stats"]["entries_flushed"]

    av_heap = machine.image.av_heap
    if av_heap is not None:
        heap_state = state.get("av_heap")
        if heap_state is None:
            raise SnapshotError("machine has an AV heap but snapshot has none")
        av_heap._bump = heap_state["bump"]
        av_heap._live = {int(k): v for k, v in heap_state["live"].items()}
        av_heap._known = set(heap_state["known"])
        _restore_alloc_stats(av_heap.stats, heap_state["stats"])
    first_fit = machine.image.first_fit
    if first_fit is not None:
        ff_state = state.get("first_fit")
        if ff_state is None:
            raise SnapshotError("machine has a first-fit heap but snapshot has none")
        first_fit._live = {int(k): v for k, v in ff_state["live"].items()}
        _restore_alloc_stats(first_fit.stats, ff_state["stats"])
    if machine.fast_frames is not None:
        fast_state = state.get("fast_frames")
        if fast_state is None:
            raise SnapshotError("machine has a fast-frame stack but snapshot has none")
        machine.fast_frames._stack = list(fast_state["stack"])
        for name in _FAST_STATS_FIELDS:
            setattr(machine.fast_frames.stats, name, fast_state["stats"][name])

    if scheduler is not None and "scheduler" in state:
        _restore_scheduler(scheduler, state["scheduler"], deref)


def _restore_scheduler(scheduler, data: dict, deref) -> None:
    from repro.interp.processes import Process, ProcessStatus

    scheduler.quantum = data["quantum"]
    scheduler.trap_quota = data["trap_quota"]
    scheduler._rotor = data["rotor"]
    scheduler.current = None
    stats = scheduler.stats
    stats.switches = data["stats"]["switches"]
    stats.preemptions = data["stats"]["preemptions"]
    stats.yields = data["stats"]["yields"]
    stats.quarantines = data["stats"]["quarantines"]
    stats.blocks = data["stats"]["blocks"]
    scheduler.processes = [
        Process(
            pid=p["pid"],
            module=p["module"],
            proc=p["proc"],
            args=tuple(p["args"]),
            status=ProcessStatus(p["status"]),
            started=p["started"],
            frame=deref(p["frame"]),
            pc=p["pc"],
            gf=p["gf"],
            cb=p["cb"],
            stack=tuple(p["stack"]),
            results=list(p["results"]),
            steps=p["steps"],
            traps=p["traps"],
            fault=p["fault"],
            remote=p["remote"],
        )
        for p in data["processes"]
    ]


def _event(value: str):
    from repro.machine.costs import Event

    return Event(value)


def _restore_alloc_stats(stats, data: dict) -> None:
    for name in _ALLOC_STATS_FIELDS:
        setattr(stats, name, data[name])
    stats.per_class_allocations = {
        int(fsi): count for fsi, count in data["per_class_allocations"].items()
    }
