"""The FaultPlan DSL: declarative, seeded, serializable fault schedules.

A plan is data, not code: a name, the seed that generated it, and a list
of :class:`Injection` records.  Each injection pairs a :class:`Trigger`
(when to fire) with an *action* (what to do), so a plan can be stored in
a chaos report, diffed between runs, and replayed bit-for-bit on any
implementation.

Triggers
--------
``at_step(n)``
    Fire when the machine has executed *n* instructions.  Rides the
    ``machine.step`` trace event, so the injector asks for per-step
    tracing only when a plan needs it.
``at_cycle(n)``
    Fire at the first traced event whose modelled cycle stamp is >= *n*.
``on_event(kind, k)``
    Fire on the *k*-th occurrence of a traced event kind — the k-th
    ``alloc.frame``, ``bank.spill``, ``ifu.flush``, ``xfer.trap``, and
    so on.  A kind without a dot suffix matches its whole family
    (``alloc`` matches ``alloc.frame`` and ``alloc.trap``).

Actions
-------
State actions corrupt or exhaust a resource *in place* and let the run
continue (the machine must degrade gracefully):

* ``drain_av`` — zero every AV free-list head (section 5.3's empty-list
  trap on the next allocation);
* ``exhaust_heap`` — empty the frame arena completely: bump pointer to
  the limit, free lists drained, the processor's fast-frame stack
  cleared (the next allocation must surface RESOURCE_EXHAUSTED);
* ``flush_rstack`` — force the IFU return stack's "something unusual"
  full flush;
* ``flush_banks`` — force the section 7.1 fallback: "all the banks are
  flushed into storage".

Control actions break the run loop at the next instruction boundary
(meter-neutrally, via the scheduler's yield flag) and hand control to
the driver:

* ``snapshot`` — capture the complete state vector;
* ``kill`` — abandon the machine; the driver restores the last snapshot
  onto a fresh image and resumes;
* ``trap`` — dispatch a machine trap of kind ``detail`` (e.g.
  ``divide_by_zero``), exercising trap-in-trap and quarantine paths.

Network actions target the wire, not a machine: they are interpreted by
the transport's fault policy (:class:`repro.net.transport.NetFaultPolicy`)
rather than the :class:`~repro.faults.inject.FaultInjector`, and their
triggers must be ``on_event`` over the ``net.send`` stream — the k-th
message offered to the transport:

* ``net_drop`` — the message vanishes (the caller's timeout/retry path
  must recover it);
* ``net_dup`` — the message is delivered twice (request-id dedup on the
  callee must keep execution at-most-once);
* ``net_delay`` — delivery is deferred by ``detail`` pump ticks;
* ``net_partition`` — the link ``detail`` (``"a->b:ticks"``, or just
  ``"ticks"`` for all links) queues messages until it heals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Actions applied in place while the run continues.
STATE_ACTIONS = frozenset({"drain_av", "exhaust_heap", "flush_rstack", "flush_banks"})

#: Actions that break the run loop and are executed by the driver.
CONTROL_ACTIONS = frozenset({"snapshot", "kill", "trap"})

#: Actions applied to wire messages by the transport's fault policy
#: (repro.net); their triggers count ``net.send`` occurrences.
NET_ACTIONS = frozenset({"net_drop", "net_dup", "net_delay", "net_partition"})


@dataclass(frozen=True)
class Trigger:
    """When an injection fires.

    ``kind`` is ``"step"``, ``"cycle"``, or ``"event"``; ``at`` is the
    step/cycle threshold or the occurrence ordinal (1-based); ``event``
    names the traced event kind (only for ``kind == "event"``).
    """

    kind: str
    at: int
    event: str = ""

    def __post_init__(self) -> None:
        if self.kind not in ("step", "cycle", "event"):
            raise ValueError(f"unknown trigger kind {self.kind!r}")
        if self.at < 1:
            raise ValueError(f"trigger threshold must be >= 1, got {self.at}")
        if (self.kind == "event") != bool(self.event):
            raise ValueError("event triggers (only) must name an event kind")


@dataclass(frozen=True)
class Injection:
    """One scheduled fault: a trigger plus an action.

    ``detail`` parameterizes the action (the trap kind for ``trap``).
    ``once`` is currently always True — an injection fires at most once;
    repeated faults are expressed as multiple injections, which keeps
    replay-after-restore unambiguous.
    """

    trigger: Trigger
    action: str
    detail: str = ""
    once: bool = True

    def __post_init__(self) -> None:
        if self.action not in STATE_ACTIONS | CONTROL_ACTIONS | NET_ACTIONS:
            raise ValueError(f"unknown action {self.action!r}")
        if self.action in NET_ACTIONS and self.trigger.kind != "event":
            raise ValueError(
                f"net action {self.action!r} needs an on_event trigger over "
                "the net.send stream"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of injections."""

    name: str
    seed: int
    injections: tuple[Injection, ...] = field(default_factory=tuple)

    def needs_step_tracing(self) -> bool:
        """True if any trigger requires per-step trace events."""
        return any(i.trigger.kind in ("step", "cycle") for i in self.injections)

    def to_dict(self) -> dict:
        """JSON-ready representation (for chaos reports)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "injections": [
                {
                    "trigger": {
                        "kind": i.trigger.kind,
                        "at": i.trigger.at,
                        "event": i.trigger.event,
                    },
                    "action": i.action,
                    "detail": i.detail,
                }
                for i in self.injections
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=data["name"],
            seed=data["seed"],
            injections=tuple(
                Injection(
                    trigger=Trigger(
                        kind=i["trigger"]["kind"],
                        at=i["trigger"]["at"],
                        event=i["trigger"].get("event", ""),
                    ),
                    action=i["action"],
                    detail=i.get("detail", ""),
                )
                for i in data.get("injections", ())
            ),
        )


# -- trigger constructors ----------------------------------------------------


def at_step(n: int) -> Trigger:
    """Fire once the machine has executed *n* instructions."""
    return Trigger(kind="step", at=n)


def at_cycle(n: int) -> Trigger:
    """Fire at the first traced event at or past modelled cycle *n*."""
    return Trigger(kind="cycle", at=n)


def on_event(event: str, k: int = 1) -> Trigger:
    """Fire on the *k*-th occurrence of traced event kind *event*."""
    return Trigger(kind="event", at=k, event=event)
