"""The FaultInjector: a tracer that applies a FaultPlan to a machine.

Injection rides the observability bus.  The injector *is* a
:class:`~repro.obs.tracer.Tracer`: it watches the machine's own event
stream (``machine.step`` for step/cycle triggers, any traced kind for
event triggers) and fires injections at exactly the declared points.
Because every instrumentation site in the interpreter is already a
single ``tracer is None`` check, the machine needs **no new branches**
for fault injection, and a run with an injector attached but no
injection fired is bit-identical to an untraced run on all modelled
meters.

Two delivery modes, matching the plan DSL's action split:

* **State actions** are applied immediately, inside :meth:`emit` —
  draining a free list or flushing the banks is precisely the kind of
  asynchronous environmental pressure the machine must absorb
  mid-instruction.
* **Control actions** are *deferred*: the injector queues them and sets
  ``machine.yield_requested``, which breaks the run loop at the next
  instruction boundary without touching the meters (the same mechanism
  the cooperative scheduler uses).  The driver — usually
  :mod:`repro.faults.chaos` — drains :meth:`take_pending` and performs
  the snapshot / kill / trap.

The injector's own progress (per-injection occurrence counts, armed
flags) is part of :meth:`state` so a snapshot can capture it and a
restored run replays the remaining injections deterministically.
"""

from __future__ import annotations

from repro.faults.plan import NET_ACTIONS, STATE_ACTIONS, FaultPlan, Injection


class FaultInjector:
    """Watches a machine's trace stream and applies *plan*.

    Compose with other sinks via :class:`~repro.obs.tracer.TeeTracer`
    when a run also wants recording; the injector emits a
    ``fault.inject`` marker into *echo* (if given) for each firing so
    chaos reports can show exactly when each fault landed.
    """

    def __init__(self, plan: FaultPlan, state: dict | None = None, echo=None) -> None:
        self.plan = plan
        self.machine = None
        self.echo = echo
        #: Ask the machine for per-step events only if the plan needs them.
        self.trace_steps = plan.needs_step_tracing()
        #: Control actions awaiting the driver, as (plan index, injection)
        #: pairs (drained by take_pending).
        self.pending: list[tuple[int, Injection]] = []
        #: (injection index, steps, cycles) per firing, for reports.
        self.fired: list[tuple[int, int, int]] = []
        self._counts = [0] * len(plan.injections)
        # Net actions belong to the transport's fault policy (repro.net),
        # not to a machine's trace stream: never arm them here.
        self._armed = [i.action not in NET_ACTIONS for i in plan.injections]
        self._applying = False
        if state is not None:
            counts = state.get("event_counts", [])
            armed = state.get("armed", [])
            for i in range(min(len(counts), len(self._counts))):
                self._counts[i] = counts[i]
            for i in range(min(len(armed), len(self._armed))):
                self._armed[i] = armed[i]

    def bind(self, machine) -> None:
        """Tracer protocol: remember the machine whose stream this is."""
        self.machine = machine

    def state(self) -> dict:
        """Progress to embed in a snapshot (see :mod:`.snapshot`)."""
        return {"event_counts": list(self._counts), "armed": list(self._armed)}

    def disarm(self, index: int) -> None:
        """Mark injection *index* as already fired (restore-side)."""
        if 0 <= index < len(self._armed):
            self._armed[index] = False

    # -- the tracer interface -------------------------------------------------

    def emit(self, kind: str, name: str = "", **data) -> None:
        """Match *kind* against every armed trigger; fire what matches.

        Re-entrant emissions (a state action's own flush emits
        ``ifu.flush`` / ``bank.spill`` events) are ignored: an injection
        cannot trigger another injection mid-application.
        """
        if self._applying or self.machine is None:
            return
        machine = self.machine
        for index, injection in enumerate(self.plan.injections):
            if not self._armed[index]:
                continue
            trigger = injection.trigger
            if trigger.kind == "step":
                # machine.steps is incremented before the step event is
                # emitted, so >= compares completed instructions.
                if kind != "machine.step" or machine.steps < trigger.at:
                    continue
            elif trigger.kind == "cycle":
                if machine.counter.cycles < trigger.at:
                    continue
            else:  # event trigger: exact kind or whole family ("alloc")
                if kind != trigger.event and not kind.startswith(trigger.event + "."):
                    continue
                self._counts[index] += 1
                if self._counts[index] < trigger.at:
                    continue
            self._armed[index] = False
            self.fired.append((index, machine.steps, machine.counter.cycles))
            if self.echo is not None:
                self.echo.emit(
                    "fault.inject",
                    injection.action,
                    index=index,
                    detail=injection.detail,
                    trigger=trigger.kind,
                    at=trigger.at,
                    event=trigger.event,
                )
            if injection.action in STATE_ACTIONS:
                self._applying = True
                try:
                    self._apply_state_action(injection)
                finally:
                    self._applying = False
            else:
                self.pending.append((index, injection))
                machine.yield_requested = True

    def take_pending(self) -> list[tuple[int, Injection]]:
        """Drain the queued control actions (driver-side)."""
        drained = self.pending
        self.pending = []
        return drained

    # -- state actions --------------------------------------------------------

    def _apply_state_action(self, injection: Injection) -> None:
        machine = self.machine
        action = injection.action
        if action == "drain_av":
            heap = machine.image.av_heap
            if heap is not None:
                # Uncounted pokes: the fault is environmental, not a cost
                # the program incurred.  The next allocation finds every
                # head empty and takes the section 5.3 trap.
                for fsi in range(len(heap.ladder)):
                    machine.memory.poke(heap.av_base + fsi, 0)
        elif action == "exhaust_heap":
            heap = machine.image.av_heap
            if heap is not None:
                heap._bump = heap.arena_limit
                for fsi in range(len(heap.ladder)):
                    machine.memory.poke(heap.av_base + fsi, 0)
                if machine.fast_frames is not None:
                    machine.fast_frames._stack.clear()
            first_fit = machine.image.first_fit
            if first_fit is not None:
                machine.memory.poke(first_fit.head_base, 0)
        elif action == "flush_rstack":
            rstack = machine.rstack
            if rstack is not None and len(rstack):
                machine._flush_return_stack("fault", rstack.take_all())
        elif action == "flush_banks":
            if machine.banks is not None:
                machine.banks.flush_all(event="fault")
        else:  # pragma: no cover - plan validation rejects unknown actions
            raise AssertionError(f"unhandled state action {action!r}")
