"""Space accounting: T1, D1, and program censuses.

Three layers of the paper's space story:

* **T1 (section 5)** — the table-indirection model: replacing *n* uses of
  an *f*-bit address with *n* *i*-bit indices plus one table entry
  changes the space from ``n*f`` to ``n*i + f``.  The paper's example:
  n=3, i=10, f=32 gives 96 - 62 = 34 bits saved, about one third.

* **D1 (section 6)** — per-call-site space under each linkage.  An
  EXTERNALCALL is 1-2 bytes plus a 2-byte LV entry shared by all sites
  in the module; a DIRECTCALL is 4 bytes with no LV entry ("the space is
  only 30% more if the procedure is called only once from the module");
  a SHORTDIRECTCALL is 3 bytes ("the space is the same as in the current
  scheme for a single call of p from a module, and 50% more (6 bytes
  instead of 4) for two calls").

* **censuses** — instruction-length histograms and whole-program code +
  table sizes of actually compiled programs, per linkage (claims C2 and
  C6 in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interp.machineconfig import MachineConfig
from repro.isa.disassembler import disassemble
from repro.isa.program import EV_ENTRY_BYTES, ModuleCode


# ---------------------------------------------------------------------------
# T1: the indirection model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class T1Savings:
    """Space with and without one level of table indirection, in bits."""

    uses: int  # n
    index_bits: int  # i
    address_bits: int  # f

    @property
    def direct_bits(self) -> int:
        """n full addresses inline: n * f."""
        return self.uses * self.address_bits

    @property
    def indirect_bits(self) -> int:
        """n indices plus one table entry: n * i + f."""
        return self.uses * self.index_bits + self.address_bits

    @property
    def saved_bits(self) -> int:
        return self.direct_bits - self.indirect_bits

    @property
    def saved_fraction(self) -> float:
        if self.direct_bits == 0:
            return 0.0
        return self.saved_bits / self.direct_bits

    @property
    def break_even_uses(self) -> float:
        """Uses above which indirection wins: n*(f-i) > f."""
        if self.address_bits <= self.index_bits:
            return float("inf")
        return self.address_bits / (self.address_bits - self.index_bits)


def t1_savings(uses: int, index_bits: int, address_bits: int) -> T1Savings:
    """The T1 model; ``t1_savings(3, 10, 32)`` is the paper's example."""
    return T1Savings(uses=uses, index_bits=index_bits, address_bits=address_bits)


# ---------------------------------------------------------------------------
# D1: call-site space per linkage
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class D1CallSpace:
    """Bytes to call one external procedure *calls* times from a module."""

    calls: int
    #: EXTERNALCALL: per-site bytes (1 for EFC0-7, 2 for EFCB) plus the
    #: shared 2-byte link vector entry.
    external_bytes: int
    #: DIRECTCALL: 4 bytes per site, no LV entry.
    direct_bytes: int
    #: SHORTDIRECTCALL: 3 bytes per site, no LV entry.
    short_direct_bytes: int

    @property
    def direct_overhead(self) -> float:
        """DFC space relative to EFC (the "only 30% more" number)."""
        return self.direct_bytes / self.external_bytes - 1.0

    @property
    def short_direct_overhead(self) -> float:
        """SDFC space relative to EFC (0% for one call, 50% for two)."""
        return self.short_direct_bytes / self.external_bytes - 1.0


def d1_call_space(calls: int, one_byte_opcode: bool = True) -> D1CallSpace:
    """The D1 arithmetic for *calls* sites calling one external procedure.

    ``one_byte_opcode`` models the hot targets that get EFC0-EFC7; cold
    targets pay 2 bytes per site (EFCB n).
    """
    if calls < 1:
        raise ValueError("at least one call site")
    site = 1 if one_byte_opcode else 2
    return D1CallSpace(
        calls=calls,
        external_bytes=calls * site + EV_ENTRY_BYTES,  # LV entry is 2 bytes
        direct_bytes=calls * 4,
        short_direct_bytes=calls * 3,
    )


def sdfc_reach_model(opcode_count: int = 16, operand_bits: int = 16) -> int:
    """Bytes addressable PC-relative by a family of SDFC opcodes.

    Section 6: "With 16 such SHORTDIRECTCALL opcodes, a three byte
    instruction can address one megabyte around the instruction" — the
    opcode contributes log2(16) = 4 extra displacement bits.
    """
    import math

    return 2 ** (operand_bits + int(math.log2(opcode_count)))


# ---------------------------------------------------------------------------
# Program censuses
# ---------------------------------------------------------------------------


def byte_census(modules: list[ModuleCode]) -> dict[int, int]:
    """Instruction-length histogram over all procedure bodies.

    The modules must have built segments (so bodies are final).  Claim
    C2: "about two-thirds of the instructions compiled for a large
    sample of source programs occupy a single byte."
    """
    census: dict[int, int] = {}
    for module in modules:
        for procedure in module.procedures:
            for item in disassemble(procedure.body):
                census[item.length] = census.get(item.length, 0) + 1
    return census


def one_byte_fraction(census: dict[int, int]) -> float:
    """Fraction of instructions that are a single byte."""
    total = sum(census.values())
    return census.get(1, 0) / total if total else 0.0


@dataclass(frozen=True)
class ProgramSpace:
    """Whole-program space for one linkage choice."""

    linkage: str
    code_bytes: int
    lv_words: int
    gft_entries: int

    @property
    def total_bytes(self) -> int:
        return self.code_bytes + 2 * self.lv_words + 2 * self.gft_entries


def code_size_by_linkage(
    sources: list[str], entry: tuple[str, str] = ("Main", "main")
) -> list[ProgramSpace]:
    """Compile + link the same program under each linkage; report space.

    This is the measured version of the section 8 triangle's space axis:
    I2 (MESA) minimizes it, I1 (SIMPLE) pays wide tables, I3 (DIRECT)
    pays wide call sites and inline GF headers.
    """
    from repro.lang.compiler import CompileOptions, compile_program
    from repro.lang.linker import link

    results: list[ProgramSpace] = []
    for config in (MachineConfig.i1(), MachineConfig.i2(), MachineConfig.i3()):
        options = CompileOptions.for_config(config)
        modules = compile_program(sources, options)
        image = link(modules, config, entry)
        tables = image.table_words()
        results.append(
            ProgramSpace(
                linkage=config.linkage.value,
                code_bytes=image.code_bytes(),
                lv_words=tables["link_vectors"],
                gft_entries=tables["gft"],
            )
        )
    return results
