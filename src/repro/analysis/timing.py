"""Timing analyses: per-transfer event costs across the ladder.

The paper's section 8 triangle — simplicity (I1), space (I2), speed
(I3/I4) — is quantified here by running the *same source program* under
each configuration and normalizing the meters by the number of
transfers.  Nothing is asserted: the memory references, register
accesses, and modelled cycles come off the shared counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.machine.costs import Event


@dataclass(frozen=True)
class TransferCosts:
    """Whole-run meters normalized per call+return pair."""

    label: str
    results: tuple[int, ...]
    steps: int
    calls: int
    returns: int
    memory_refs: float  # per transfer
    register_refs: float  # per transfer
    cycles_per_transfer: float
    jump_speed_fraction: float
    total_cycles: int
    #: The raw CycleCounter delta for the run: one entry per
    #: :class:`~repro.machine.costs.Event` value plus ``"cycles"`` — the
    #: machine-readable snapshot behind ``repro measure --json``.
    counters: dict = field(default_factory=dict)

    @property
    def transfers(self) -> int:
        return self.calls + self.returns


def measure_program(
    sources: list[str],
    config: MachineConfig,
    label: str,
    entry: tuple[str, str] = ("Main", "main"),
    args: tuple[int, ...] = (),
    multi_instance: frozenset[str] = frozenset(),
    engine: str = "interp",
) -> TransferCosts:
    """Compile + link + run under *config*; return normalized meters.

    The baseline (instruction execution that would happen regardless of
    the transfer mechanism) is *not* subtracted: the comparison across
    configurations of the same program isolates the mechanism because
    everything else is identical code.  ``engine="jit"`` runs compiled
    blocks instead of the interpreter — the meters are bit-identical by
    the JIT's conformance contract, only the host wall-clock changes.
    """
    from repro.lang.compiler import CompileOptions, compile_program
    from repro.lang.linker import link

    options = CompileOptions.for_config(config, multi_instance=multi_instance)
    modules = compile_program(sources, options)
    image = link(modules, config, entry)
    machine = Machine(image)
    if engine == "jit":
        from repro.jit import install_jit

        install_jit(machine)
    baseline = machine.counter.snapshot()
    machine.start(entry[0], entry[1], *args)
    results = tuple(machine.run())
    delta = machine.counter.delta_since(baseline)

    from repro.ifu.ifu import TransferKind

    call_kinds = (
        TransferKind.EXTERNAL_CALL,
        TransferKind.LOCAL_CALL,
        TransferKind.DIRECT_CALL,
        TransferKind.SHORT_DIRECT_CALL,
    )
    calls = sum(machine.fetch.fast.get(kind, 0) for kind in call_kinds) + sum(
        machine.fetch.slow.get(kind, 0) for kind in call_kinds
    )
    returns = machine.fetch.fast.get(TransferKind.RETURN, 0) + machine.fetch.slow.get(
        TransferKind.RETURN, 0
    )
    transfers = max(1, calls + returns)
    memory = delta[Event.MEMORY_READ.value] + delta[Event.MEMORY_WRITE.value]
    registers = delta[Event.REGISTER_READ.value] + delta[Event.REGISTER_WRITE.value]
    return TransferCosts(
        label=label,
        results=results,
        steps=machine.steps,
        calls=calls,
        returns=returns,
        memory_refs=memory / transfers,
        register_refs=registers / transfers,
        cycles_per_transfer=delta["cycles"] / transfers,
        jump_speed_fraction=machine.fetch.call_return_jump_speed_fraction,
        total_cycles=delta["cycles"],
        counters=dict(delta),
    )


def transfer_cost_table(
    sources: list[str],
    entry: tuple[str, str] = ("Main", "main"),
    args: tuple[int, ...] = (),
    configs: list[tuple[str, MachineConfig]] | None = None,
    engine: str = "interp",
) -> list[TransferCosts]:
    """Measure the same program under the whole implementation ladder."""
    if configs is None:
        configs = [
            ("I1 simple", MachineConfig.i1()),
            ("I2 mesa", MachineConfig.i2()),
            ("I3 direct+rstack", MachineConfig.i3()),
            ("I4 banks", MachineConfig.i4()),
        ]
    return [
        measure_program(sources, config, label, entry=entry, args=args,
                        engine=engine)
        for label, config in configs
    ]


def call_density(sources: list[str], config: MachineConfig | None = None,
                 entry: tuple[str, str] = ("Main", "main")) -> tuple[int, int, float]:
    """(transfers, instructions, instructions-per-transfer) for claim C1.

    Section 1: "one call or return for every 10 instructions executed is
    not uncommon".
    """
    config = config or MachineConfig.i2()
    costs = measure_program(sources, config, "density", entry=entry)
    transfers = costs.calls + costs.returns
    if transfers == 0:
        return 0, costs.steps, float("inf")
    return transfers, costs.steps, costs.steps / transfers
