"""Analyses: the arithmetic behind the paper's space and time claims.

* :mod:`repro.analysis.space` — the T1 table-indirection model, the D1
  call-site space accounting, and instruction/byte censuses of compiled
  programs;
* :mod:`repro.analysis.timing` — per-call event breakdowns across the
  implementation ladder (runs the same program under I1-I4 and divides
  the meters by the call count);
* :mod:`repro.analysis.report` — plain-text table formatting shared by
  the benchmarks, so every experiment prints paper-value-versus-measured
  rows the same way.
"""

from repro.analysis.report import format_table
from repro.analysis.space import (
    D1CallSpace,
    byte_census,
    code_size_by_linkage,
    d1_call_space,
    t1_savings,
)
from repro.analysis.timing import TransferCosts, measure_program, transfer_cost_table

__all__ = [
    "D1CallSpace",
    "TransferCosts",
    "byte_census",
    "code_size_by_linkage",
    "d1_call_space",
    "format_table",
    "measure_program",
    "t1_savings",
    "transfer_cost_table",
]
