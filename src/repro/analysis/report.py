"""Plain-text tables for benchmark output.

Every benchmark prints rows of "paper says / we measured"; this tiny
formatter keeps them aligned and consistent.  No dependency on any
plotting or tabulation library — the output is meant for terminals and
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as an aligned monospace table with a header rule."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells)).rstrip()

    rule = "  ".join("-" * width for width in widths)
    body = [line(headers), rule]
    body.extend(line(row) for row in materialized)
    return "\n".join(body)


def banner(title: str) -> str:
    """A section banner for benchmark output."""
    bar = "=" * len(title)
    return f"\n{title}\n{bar}"
