"""Fetch-speed classification: is this transfer as fast as a jump?

Section 6's headline: calls and returns "can be as fast as unconditional
jumps at least 95% of the time".  The operational meaning: the IFU can
compute the next fetch address without waiting for data memory.

* ``DIRECTCALL`` / ``SHORTDIRECTCALL`` — yes: the target is a literal (or
  PC-relative) operand, "the IFU can treat a DIRECTCALL just like an
  unconditional jump".
* A return with a **return-stack hit** — yes: the PC comes out of IFU
  registers.
* ``EXTERNALCALL`` / ``LOCALCALL`` — no: the target address emerges only
  after the table reads of Figure 1.
* A return-stack **miss**, and any general ``XFER`` — no: the PC comes
  from the frame in memory.

:class:`FetchStats` tallies transfers along those lines; benchmark C5
reads the jump-speed fraction off it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.machine.costs import CycleCounter, Event


class TransferKind(enum.Enum):
    """The dynamic classification of a control transfer."""

    EXTERNAL_CALL = "external_call"
    LOCAL_CALL = "local_call"
    DIRECT_CALL = "direct_call"
    SHORT_DIRECT_CALL = "short_direct_call"
    RETURN = "return"
    XFER = "xfer"  # general transfer (coroutines, traps)
    PROCESS_SWITCH = "process_switch"


#: Call kinds whose target the IFU knows without data reads.
_FAST_CALLS = {TransferKind.DIRECT_CALL, TransferKind.SHORT_DIRECT_CALL}


@dataclass
class FetchStats:
    """Per-run tally of transfers, split fast (jump-speed) vs slow."""

    fast: dict[TransferKind, int] = field(default_factory=dict)
    slow: dict[TransferKind, int] = field(default_factory=dict)

    def record(
        self,
        kind: TransferKind,
        fast: bool,
        counter: CycleCounter | None = None,
    ) -> None:
        """Tally one transfer; optionally charge the cycle counter."""
        bucket = self.fast if fast else self.slow
        bucket[kind] = bucket.get(kind, 0) + 1
        if counter is not None:
            counter.record(Event.FAST_TRANSFER if fast else Event.SLOW_TRANSFER)

    @staticmethod
    def call_is_fast(kind: TransferKind) -> bool:
        """Whether a call of *kind* fetches at jump speed."""
        return kind in _FAST_CALLS

    # -- derived metrics -----------------------------------------------------

    def total(self) -> int:
        return sum(self.fast.values()) + sum(self.slow.values())

    def total_fast(self) -> int:
        return sum(self.fast.values())

    @property
    def jump_speed_fraction(self) -> float:
        """The C5 number: fraction of all transfers fetched at jump speed."""
        total = self.total()
        return self.total_fast() / total if total else 0.0

    def calls_and_returns(self) -> int:
        """Transfers that are simple calls or returns (the paper's universe)."""
        keys = {
            TransferKind.EXTERNAL_CALL,
            TransferKind.LOCAL_CALL,
            TransferKind.DIRECT_CALL,
            TransferKind.SHORT_DIRECT_CALL,
            TransferKind.RETURN,
        }
        return sum(count for kind, count in self.fast.items() if kind in keys) + sum(
            count for kind, count in self.slow.items() if kind in keys
        )

    @property
    def call_return_jump_speed_fraction(self) -> float:
        """Jump-speed fraction restricted to simple calls and returns.

        This is the claim as the paper states it: "simple Pascal-style
        calls and returns can be ... as fast as unconditional jumps at
        least 95% of the time" — coroutine and process transfers are
        outside the claim's universe.
        """
        keys = {
            TransferKind.EXTERNAL_CALL,
            TransferKind.LOCAL_CALL,
            TransferKind.DIRECT_CALL,
            TransferKind.SHORT_DIRECT_CALL,
            TransferKind.RETURN,
        }
        universe = self.calls_and_returns()
        if universe == 0:
            return 0.0
        fast = sum(count for kind, count in self.fast.items() if kind in keys)
        return fast / universe

    def summary(self) -> dict[str, float]:
        """Plain-dict summary for report tables."""
        return {
            "transfers": float(self.total()),
            "fast": float(self.total_fast()),
            "jump_speed_fraction": self.jump_speed_fraction,
            "call_return_jump_speed_fraction": self.call_return_jump_speed_fraction,
        }
