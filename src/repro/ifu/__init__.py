"""Fast instruction fetching (section 6, implementation I3).

The goal: "make a call or return as fast as an unconditional jump".  Two
mechanisms deliver it:

* the statically bound ``DIRECTCALL`` (its target is a literal operand, so
  the instruction fetch unit follows it exactly like a jump), and
* a small IFU **return stack** holding (frame pointer, global frame, PC)
  for each call in flight, so returns need no memory read to find the
  next instruction — as long as transfers stay last-in first-out.

"When something unusual happens (e.g., any XFER other than a simple call
or return, or running out of space in the return stack), fall back to the
general scheme by flushing the return stack."  The flush writes the
deferred linkage state (return links, saved PCs) into the frames, after
which the section 5 machinery takes over seamlessly.
"""

from repro.ifu.ifu import FetchStats, TransferKind
from repro.ifu.returnstack import OverflowPolicy, ReturnStack, ReturnStackEntry

__all__ = [
    "FetchStats",
    "OverflowPolicy",
    "ReturnStack",
    "ReturnStackEntry",
    "TransferKind",
]
