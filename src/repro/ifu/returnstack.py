"""The IFU return stack (section 6).

    "However, the IFU can keep a small stack of return information: frame
    pointer, global frame pointer GF and PC.  As long as calls and returns
    follow a LIFO discipline this allows returns to be handled as fast as
    calls."

An entry records a *suspended caller*: its frame, its global frame and
code base (one read apart in the real machine; we keep both), the
absolute PC to resume at, and — for implementation I4 — the register bank
shadowing its frame (section 7.1: "The return stack discussed in section
6 keeps track of the bank associated with each local frame").

The stack itself is registers, so pushes and pops are not memory traffic.
Memory is touched only by :meth:`flush`, which implements the paper's
fallback rule: "the frame pointer LF goes into the returnLink component
of the next higher frame, and the PC goes into the PC component of LF.
The global frame pointer can be discarded, since it can be recovered from
the local frame."
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field


class OverflowPolicy(enum.Enum):
    """What to do when a push finds the stack full.

    ``FULL_FLUSH`` is the paper's stated rule (overflow is listed among
    the "something unusual" events that flush the whole stack);
    ``SPILL_OLDEST`` writes out only the bottom entry, an ablation that
    trades hardware complexity for hit rate (benchmark C12 compares
    them).
    """

    FULL_FLUSH = "full_flush"
    SPILL_OLDEST = "spill_oldest"


@dataclass
class ReturnStackEntry:
    """One suspended caller: where to resume and what state to restore."""

    frame: object  # the caller's FrameState (interp.frames)
    pc: int  # absolute code address to resume at
    #: The caller's code base (so a flush can store a CB-relative PC
    #: without re-reading the global frame); -1 if never discovered.
    cb: int = -1
    #: The caller's register bank (section 7.1), or None (I1-I3, or the
    #: bank was reclaimed).
    bank: object | None = None


@dataclass
class ReturnStackStats:
    """Counters for benchmark C12 and the C5 jump-speed claim."""

    pushes: int = 0
    #: Pops that found an entry (returns handled at jump speed).
    hits: int = 0
    #: Pops that found the stack empty (general-scheme returns).
    misses: int = 0
    #: Flush events, by reason string ("overflow", "xfer", "process", ...).
    flushes: dict[str, int] = field(default_factory=dict)
    #: Total entries written out by flushes.
    entries_flushed: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of returns served from the stack."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def on_flush(self, reason: str, entries: int) -> None:
        self.flushes[reason] = self.flushes.get(reason, 0) + 1
        self.entries_flushed += entries


class ReturnStack:
    """A bounded LIFO of :class:`ReturnStackEntry`.

    The stack does not know how to write frames to memory — the machine
    does — so :meth:`take_for_flush` hands entries back (oldest first,
    paired with each entry's *callee* frame, which is where the return
    link must be written) and the interpreter performs the stores.
    """

    def __init__(
        self,
        depth: int = 8,
        policy: OverflowPolicy = OverflowPolicy.FULL_FLUSH,
    ) -> None:
        if depth <= 0:
            raise ValueError(f"return stack depth must be positive, got {depth}")
        self.depth = depth
        self.policy = policy
        self.stats = ReturnStackStats()
        #: Observability sink (repro.obs); None disables emission.
        self.tracer = None
        # A deque so SPILL_OLDEST's bottom-entry removal is O(1) instead
        # of list.pop(0)'s O(depth); iteration order stays oldest-first.
        self._entries: deque[ReturnStackEntry] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, entry: ReturnStackEntry) -> None:
        """Record a caller.  The machine must handle overflow *before*
        pushing (it owns the memory writes); pushing onto a full stack is
        a programming error here."""
        if self.full:
            raise OverflowError("push onto full return stack; flush first")
        self._entries.append(entry)
        self.stats.pushes += 1

    def pop(self) -> ReturnStackEntry | None:
        """Pop the most recent caller, or None on a miss (empty stack)."""
        if self._entries:
            self.stats.hits += 1
            if self.tracer is not None:
                self.tracer.emit("ifu.hit", depth=len(self._entries))
            return self._entries.pop()
        self.stats.misses += 1
        if self.tracer is not None:
            self.tracer.emit("ifu.miss")
        return None

    def note_flush(self, reason: str, entries: int) -> None:
        """Record a flush of *entries* entries (the machine did the
        stores); emits one ``ifu.flush`` event when tracing is on."""
        self.stats.on_flush(reason, entries)
        if self.tracer is not None:
            self.tracer.emit("ifu.flush", reason, entries=entries)

    def peek(self) -> ReturnStackEntry | None:
        """The entry a return would use, without popping."""
        return self._entries[-1] if self._entries else None

    def overflow_victims(self) -> list[ReturnStackEntry]:
        """Remove and return the entries to write out before a push.

        Under ``FULL_FLUSH`` that is every entry; under ``SPILL_OLDEST``
        just the bottom one.  Oldest first, so the machine can chain the
        return links correctly.
        """
        if self.policy is OverflowPolicy.FULL_FLUSH:
            victims = list(self._entries)
            self._entries.clear()
        else:
            victims = [self._entries.popleft()]
        return victims

    def take_all(self) -> list[ReturnStackEntry]:
        """Remove and return all entries, oldest first (for full flushes)."""
        victims = list(self._entries)
        self._entries.clear()
        return victims

    def entries(self) -> tuple[ReturnStackEntry, ...]:
        """Snapshot, oldest first (diagnostics and tests)."""
        return tuple(self._entries)
