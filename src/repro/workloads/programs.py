"""The program corpus: mini-Mesa sources for the dynamic measurements.

Each entry is a complete program (one or more modules) with a designated
entry point and its expected output, so the corpus doubles as an
integration-test suite: every benchmark first asserts the program
computes the right answer on the configuration under test, then reads
the meters.

The mix is chosen to cover the paper's statistical claims:

* ``calls``, ``pipeline`` — call-dense structured code ("one call or
  return for every 10 instructions"), shallow depth oscillation ("long
  runs of calls nearly uninterrupted by returns ... are quite rare");
* ``fib``, ``ackermann`` — recursion, deep depth excursions (the
  adversarial case for the return stack and the bank file);
* ``mathlib`` — cross-module traffic through the link vector /
  DIRECTCALL;
* ``sort`` — pointer-based array code over the global frame (section
  7.4 traffic through RD/WR);
* ``varparams`` — pointers to locals passed as VAR parameters;
* ``coroutine`` — non-LIFO transfers through raw XFER.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Program:
    """One corpus entry: sources, entry point, expected results/output."""

    name: str
    sources: tuple[str, ...]
    entry: tuple[str, str] = ("Main", "main")
    args: tuple[int, ...] = ()
    expect_results: tuple[int, ...] = ()
    expect_output: tuple[int, ...] = ()
    #: Programs using XFER cannot run under SIMPLE linkage (no packed
    #: descriptors), and process programs need a scheduler.
    needs_descriptors: bool = False


_FIB = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(11);
END;
END.
"""

_ACKERMANN = """
MODULE Main;
PROCEDURE ack(m, n): INT;
BEGIN
  IF m = 0 THEN RETURN n + 1; END;
  IF n = 0 THEN RETURN ack(m - 1, 1); END;
  RETURN ack(m - 1, ack(m, n - 1));
END;
PROCEDURE main(): INT;
BEGIN
  RETURN ack(2, 3);
END;
END.
"""

# Call-dense, shallow: lots of little leaf procedures, the structured-
# programming style the introduction describes.
_CALLS = """
MODULE Main;
VAR acc: INT;
PROCEDURE inc(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE double(x): INT;
BEGIN
  RETURN x + x;
END;
PROCEDURE combine(a, b): INT;
BEGIN
  RETURN inc(a) + double(b);
END;
PROCEDURE step(x): INT;
BEGIN
  RETURN combine(inc(x), double(x));
END;
PROCEDURE main(): INT;
VAR i: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 40 DO
    acc := acc + step(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""

# fib(11)=89; ack(2,3)=9; calls: sum over i<40 of (i+2 + 4i) = 5*780+80=3980


_MATHLIB = (
    """
MODULE Main;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 1;
  WHILE i <= 10 DO
    acc := acc + Math.gcd(i * 12, 18) + Math.power(2, Math.mod3(i));
    i := i + 1;
  END;
  RETURN acc;
END;
END.
""",
    """
MODULE Math;
PROCEDURE gcd(a, b): INT;
BEGIN
  WHILE b # 0 DO
    a := a MOD b;
    IF a = 0 THEN RETURN b; END;
    b := b MOD a;
  END;
  RETURN a;
END;
PROCEDURE power(base, exponent): INT;
VAR result: INT;
BEGIN
  result := 1;
  WHILE exponent > 0 DO
    result := result * base;
    exponent := exponent - 1;
  END;
  RETURN result;
END;
PROCEDURE mod3(x): INT;
BEGIN
  RETURN x MOD 3;
END;
END.
""",
)

# Pointer-based insertion sort over a pseudo-array of module globals.
_SORT = """
MODULE Main;
VAR a0, a1, a2, a3, a4, a5, a6, a7: INT;
PROCEDURE put(base, i, v);
BEGIN
  ^(base + i) := v;
END;
PROCEDURE get(base, i): INT;
BEGIN
  RETURN ^(base + i);
END;
PROCEDURE sort(base, n);
VAR i, j, key: INT;
BEGIN
  i := 1;
  WHILE i < n DO
    key := get(base, i);
    j := i - 1;
    WHILE (j >= 0) AND (get(base, j) > key) DO
      put(base, j + 1, get(base, j));
      j := j - 1;
    END;
    put(base, j + 1, key);
    i := i + 1;
  END;
END;
PROCEDURE main(): INT;
VAR base, i, acc: INT;
BEGIN
  base := @a0;
  put(base, 0, 31); put(base, 1, 4); put(base, 2, 15); put(base, 3, 9);
  put(base, 4, 26); put(base, 5, 5); put(base, 6, 3); put(base, 7, 58);
  sort(base, 8);
  i := 0;
  acc := 0;
  WHILE i < 8 DO
    OUTPUT get(base, i);
    acc := acc * 2 + get(base, i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""

_VARPARAMS = """
MODULE Main;
PROCEDURE swap(p, q);
VAR t: INT;
BEGIN
  t := ^p;
  ^p := ^q;
  ^q := t;
END;
PROCEDURE minmax(a, b, lo, hi);
BEGIN
  IF a > b THEN
    ^lo := b; ^hi := a;
  ELSE
    ^lo := a; ^hi := b;
  END;
END;
PROCEDURE main(): INT;
VAR x, y, lo, hi: INT;
BEGIN
  x := 3;
  y := 8;
  swap(@x, @y);
  minmax(x, y, @lo, @hi);
  RETURN x * 1000 + y * 100 + lo * 10 + hi;
END;
END.
"""
# x=8,y=3 -> minmax(8,3): lo=3,hi=8 -> 8*1000+3*100+3*10+8 = 8338

_COROUTINE = """
MODULE Main;
PROCEDURE squares(seed): INT;
VAR who, v: INT;
BEGIN
  who := SOURCE();
  v := seed;
  WHILE 1 DO
    who := XFER(who, v * v);
    who := SOURCE();
    v := v + 1;
  END;
  RETURN 0;
END;
PROCEDURE main(): INT;
VAR co, acc, i, v: INT;
BEGIN
  v := XFER(PROC(squares), 1);
  co := SOURCE();
  acc := v;
  i := 0;
  WHILE i < 4 DO
    v := XFER(co, 0);
    co := SOURCE();
    acc := acc + v;
    i := i + 1;
  END;
  RETURN acc;
END;
END.
"""
# 1 + 4 + 9 + 16 + 25 = 55

# A two-stage pipeline of tiny procedures, call-dense and shallow, with
# a second module in the loop.
_PIPELINE = (
    """
MODULE Main;
PROCEDURE stage1(x): INT;
BEGIN
  RETURN Filter.clip(x + 3);
END;
PROCEDURE stage2(x): INT;
BEGIN
  RETURN Filter.scale(stage1(x));
END;
PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < 30 DO
    acc := acc + stage2(i);
    i := i + 1;
  END;
  RETURN acc;
END;
END.
""",
    """
MODULE Filter;
PROCEDURE clip(x): INT;
BEGIN
  IF x > 20 THEN RETURN 20; END;
  RETURN x;
END;
PROCEDURE scale(x): INT;
BEGIN
  RETURN x * 3;
END;
END.
""",
)


# N-queens (n=5): pointer-array board over globals, recursive backtracking.
_QUEENS = """
MODULE Main;
VAR c0, c1, c2, c3, c4: INT;
PROCEDURE ok(base, row, col): INT;
VAR i, c: INT;
BEGIN
  i := 0;
  WHILE i < row DO
    c := ^(base + i);
    IF c = col THEN RETURN 0; END;
    IF c - col = row - i THEN RETURN 0; END;
    IF col - c = row - i THEN RETURN 0; END;
    i := i + 1;
  END;
  RETURN 1;
END;
PROCEDURE solve(base, row, n): INT;
VAR col, count: INT;
BEGIN
  IF row = n THEN RETURN 1; END;
  count := 0;
  col := 0;
  WHILE col < n DO
    IF ok(base, row, col) THEN
      ^(base + row) := col;
      count := count + solve(base, row + 1, n);
    END;
    col := col + 1;
  END;
  RETURN count;
END;
PROCEDURE main(): INT;
BEGIN
  RETURN solve(@c0, 0, 5);
END;
END.
"""

# Sieve of Eratosthenes below 30, OUTPUTting each prime.
_SIEVE_GLOBALS = ", ".join(f"f{i}" for i in range(30))
_SIEVE = f"""
MODULE Main;
VAR {_SIEVE_GLOBALS}: INT;
PROCEDURE main(): INT;
VAR base, i, j, count: INT;
BEGIN
  base := @f0;
  i := 0;
  WHILE i < 30 DO
    ^(base + i) := 1;
    i := i + 1;
  END;
  count := 0;
  i := 2;
  WHILE i < 30 DO
    IF ^(base + i) THEN
      count := count + 1;
      OUTPUT i;
      j := i + i;
      WHILE j < 30 DO
        ^(base + j) := 0;
        j := j + i;
      END;
    END;
    i := i + 1;
  END;
  RETURN count;
END;
END.
"""

# Mutual recursion across modules: every call is an EXTERNALCALL.
_MUTUAL = (
    """
MODULE Main;
PROCEDURE iseven(n): INT;
BEGIN
  IF n = 0 THEN RETURN 1; END;
  RETURN Other.isodd(n - 1);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN iseven(20) * 10 + Other.isodd(13);
END;
END.
""",
    """
MODULE Other;
PROCEDURE isodd(n): INT;
BEGIN
  IF n = 0 THEN RETURN 0; END;
  RETURN Main.iseven(n - 1);
END;
END.
""",
)

# Dynamic dispatch through an interface record of procedure descriptors
# (sections 3-4: "LOADLITERAL i; READFIELD f; XFER").
_DISPATCH = """
MODULE Main;
VAR slot0, slot1: INT;
PROCEDURE inc(x): INT;
BEGIN
  RETURN x + 1;
END;
PROCEDURE dec(x): INT;
BEGIN
  RETURN x - 1;
END;
PROCEDURE apply(iface, index, x): INT;
VAR r: INT;
BEGIN
  r := XFER(^(iface + index), x);
  RETURN r;
END;
PROCEDURE main(): INT;
VAR iface, i, v: INT;
BEGIN
  iface := @slot0;
  ^(iface + 0) := PROC(inc);
  ^(iface + 1) := PROC(dec);
  v := 50;
  i := 0;
  WHILE i < 6 DO
    v := apply(iface, i MOD 2, v);
    i := i + 1;
  END;
  RETURN v + apply(iface, 0, 0);
END;
END.
"""


def _pipeline_expected() -> int:
    return sum(3 * min(i + 3, 20) for i in range(30))


def _calls_expected() -> int:
    return sum((i + 1 + 1) + 2 * (2 * i) for i in range(40))


def _sort_expected() -> int:
    values = sorted([31, 4, 15, 9, 26, 5, 3, 58])
    acc = 0
    for value in values:
        acc = (acc * 2 + value) & 0xFFFF
    return acc


def _mathlib_expected() -> int:
    from math import gcd

    return sum(gcd(i * 12, 18) + 2 ** (i % 3) for i in range(1, 11))


#: The corpus, keyed by name.
CORPUS: dict[str, Program] = {
    "fib": Program("fib", (_FIB,), expect_results=(89,)),
    "ackermann": Program("ackermann", (_ACKERMANN,), expect_results=(9,)),
    "calls": Program("calls", (_CALLS,), expect_results=(_calls_expected(),)),
    "mathlib": Program("mathlib", _MATHLIB, expect_results=(_mathlib_expected(),)),
    "sort": Program(
        "sort",
        (_SORT,),
        expect_results=(_sort_expected(),),
        expect_output=(3, 4, 5, 9, 15, 26, 31, 58),
    ),
    "varparams": Program("varparams", (_VARPARAMS,), expect_results=(8338,)),
    "coroutine": Program(
        "coroutine", (_COROUTINE,), expect_results=(55,), needs_descriptors=True
    ),
    "pipeline": Program(
        "pipeline", _PIPELINE, expect_results=(_pipeline_expected(),)
    ),
    "queens": Program("queens", (_QUEENS,), expect_results=(10,)),
    "sieve": Program(
        "sieve",
        (_SIEVE,),
        expect_results=(10,),
        expect_output=(2, 3, 5, 7, 11, 13, 17, 19, 23, 29),
    ),
    "mutual": Program("mutual", _MUTUAL, expect_results=(11,)),
    "dispatch": Program(
        "dispatch", (_DISPATCH,), expect_results=(51,), needs_descriptors=True
    ),
}


def program(name: str) -> Program:
    """Look up a corpus program by name."""
    return CORPUS[name]


def corpus_sources(include_descriptor_programs: bool = True) -> list[Program]:
    """The corpus as a list, optionally without XFER-based programs
    (which cannot run under SIMPLE linkage)."""
    return [
        entry
        for entry in CORPUS.values()
        if include_descriptor_programs or not entry.needs_descriptors
    ]
