"""Calibrated synthetic workloads.

The paper's section 7 statistics describe *distributions* the Mesa
corpus exhibited; these generators produce traces with the same
calibration so the mechanisms can be measured at scale and swept:

* **frame sizes** — "Mesa statistics suggest that 95% of all frames
  allocated are smaller than 80 bytes" (40 words), with a minimum around
  16 bytes (8 words).  :class:`FrameSizeModel` is a shifted geometric
  with its 95th percentile pinned to 40 words.

* **call/return sequences** — "long runs of calls nearly uninterrupted
  by returns, or vice versa, are quite rare" (section 7.1).  The
  generator is a mean-reverting random walk over call depth: the deeper
  the chain is beyond its typical depth, the likelier a return, so depth
  oscillates in a narrow band with rare excursions — which is exactly
  the property the bank file and return stack exploit.  A ``reversion``
  of 0 degenerates to an unbiased walk (the adversarial case).

* **coroutine transfers** — an optional per-event XFER probability
  splices non-LIFO transfers into the stream, each switching to another
  live chain (created on demand), to measure how general transfers erode
  the fast paths.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.workloads.traces import TraceEvent, TraceOp

#: The paper's numbers, in words.
PAPER_MIN_FRAME_WORDS = 8  # "a minimum of about 16 bytes"
PAPER_P95_FRAME_WORDS = 40  # "95% of all frames ... smaller than 80 bytes"


@dataclass(frozen=True)
class FrameSizeModel:
    """Shifted-geometric frame sizes with a pinned 95th percentile.

    ``P(words >= min_words + k) = (1 - p)^k`` with *p* chosen so that
    ``P(words < p95_words) = 0.95``.  ``max_words`` truncates the tail
    (the heap's ladder must be able to hold every sample).
    """

    min_words: int = PAPER_MIN_FRAME_WORDS
    p95_words: int = PAPER_P95_FRAME_WORDS
    max_words: int = 2048

    @property
    def rate(self) -> float:
        span = self.p95_words - self.min_words
        if span <= 0:
            raise ValueError("p95_words must exceed min_words")
        return -math.log(0.05) / span

    def sample(self, rng: random.Random) -> int:
        words = self.min_words + int(rng.expovariate(self.rate))
        return min(words, self.max_words)

    def percentile_check(self, samples: list[int]) -> float:
        """Fraction of samples under the 95th-percentile target size."""
        if not samples:
            return 0.0
        return sum(1 for s in samples if s < self.p95_words) / len(samples)


def frame_size_samples(
    count: int, seed: int = 1982, model: FrameSizeModel | None = None
) -> list[int]:
    """Draw *count* frame sizes from the calibrated model."""
    model = model or FrameSizeModel()
    rng = random.Random(seed)
    return [model.sample(rng) for _ in range(count)]


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for the call/return/XFER trace generator.

    ``leaf_prob`` is the key locality parameter: structured programs are
    dominated by leaf and near-leaf calls (a call immediately matched by
    its return), which is why "long runs of calls nearly uninterrupted
    by returns" are rare.  With the defaults the generated traces match
    the paper's bank statistics (about 5% overflow with 4 banks, about
    1% with 8); set ``leaf_prob=0`` and ``reversion=0`` for the
    adversarial unbiased walk.
    """

    length: int = 10_000
    #: Typical call depth the walk reverts to.
    mean_depth: int = 6
    #: Mean-reversion strength; 0 = unbiased random walk.
    reversion: float = 0.4
    #: Base probability that the next event is a call (at mean depth).
    call_bias: float = 0.5
    #: Probability that a call is a leaf call (immediately returns).
    leaf_prob: float = 0.75
    #: Probability that an event is a coroutine XFER instead.
    xfer_prob: float = 0.0
    #: Frame-size model for CALL events.
    sizes: FrameSizeModel = FrameSizeModel()
    seed: int = 1982


def call_return_trace(config: TraceConfig | None = None) -> list[TraceEvent]:
    """Generate a depth-oscillating call/return/XFER trace.

    The trace always starts with a CALL (the root context of the current
    chain) and never returns past a chain's root; XFER events carry no
    size and switch chains (the replay machinery interprets them).
    """
    config = config or TraceConfig()
    rng = random.Random(config.seed)
    events: list[TraceEvent] = [
        TraceEvent(TraceOp.CALL, config.sizes.sample(rng))
    ]
    depth = 1
    while len(events) < config.length:
        if config.xfer_prob and rng.random() < config.xfer_prob:
            events.append(TraceEvent(TraceOp.XFER, 0))
            # The replay decides which chain we land in; statistically we
            # assume a similar depth there, so leave `depth` alone.
            continue
        p_call = config.call_bias - config.reversion * (depth - config.mean_depth)
        p_call = min(0.95, max(0.05, p_call))
        if depth <= 1 or rng.random() < p_call:
            if rng.random() < config.leaf_prob:
                # A leaf call: the callee returns immediately — the
                # dominant pattern in structured code.
                events.append(TraceEvent(TraceOp.CALL, config.sizes.sample(rng)))
                events.append(TraceEvent(TraceOp.RETURN, 0))
            else:
                events.append(TraceEvent(TraceOp.CALL, config.sizes.sample(rng)))
                depth += 1
        else:
            events.append(TraceEvent(TraceOp.RETURN, 0))
            depth -= 1
    return events[: config.length]


def depth_profile(events: list[TraceEvent]) -> tuple[int, float]:
    """(max depth, mean depth) of a trace — a calibration diagnostic."""
    depth = 0
    peak = 0
    total = 0
    for event in events:
        if event.op is TraceOp.CALL:
            depth += 1
            peak = max(peak, depth)
        elif event.op is TraceOp.RETURN:
            depth -= 1
        total += depth
    return peak, total / max(1, len(events))
