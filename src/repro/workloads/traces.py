"""Trace events and mechanism-level replay harnesses.

A trace is a list of :class:`TraceEvent` (CALL with a frame size,
RETURN, XFER).  The replay functions drive one mechanism at a time with
the exact discipline the full machine uses, so the ablation benchmarks
(bank count sweeps, return-stack depth sweeps, ladder sweeps) run
millions of events without interpreting a single instruction.

Chain semantics: the replay maintains one *current chain* (a stack of
live activations) plus a pool of suspended chains.  CALL pushes on the
current chain, RETURN pops it (never past the chain root), and XFER
suspends the current chain and resumes another from the pool round-robin
(creating a fresh single-frame chain when the pool is empty) — the
coroutine pattern of section 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.alloc.avheap import AVHeap
from repro.alloc.sizing import SizeLadder, geometric_ladder
from repro.banks.bankfile import Bank, BankFile, BankStats
from repro.banks.renaming import BankManager
from repro.ifu.returnstack import OverflowPolicy, ReturnStack, ReturnStackEntry
from repro.machine.costs import CycleCounter, Event
from repro.machine.memory import Memory


class TraceOp(enum.Enum):
    CALL = "call"
    RETURN = "return"
    XFER = "xfer"


@dataclass(frozen=True)
class TraceEvent:
    """One transfer: the op plus the callee frame size (CALL only)."""

    op: TraceOp
    frame_words: int = 0


@dataclass
class _TraceFrame:
    """A stand-in activation for mechanism-level replay."""

    local_words: int
    address: int | None = None


# ---------------------------------------------------------------------------
# Return stack replay (benchmark C12, feeding C5)
# ---------------------------------------------------------------------------


@dataclass
class ReturnStackReplay:
    """Results of replaying a trace against an IFU return stack."""

    calls: int = 0
    returns: int = 0
    xfers: int = 0
    hits: int = 0
    misses: int = 0
    flush_events: dict[str, int] = field(default_factory=dict)
    entries_flushed: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def jump_speed_fraction(self) -> float:
        """Fast transfers / all transfers, assuming DIRECTCALL linkage
        (calls are always jump-speed; returns only on a hit)."""
        total = self.calls + self.returns + self.xfers
        return (self.calls + self.hits) / total if total else 0.0


def replay_on_return_stack(
    events: list[TraceEvent],
    depth: int = 8,
    policy: OverflowPolicy = OverflowPolicy.FULL_FLUSH,
) -> ReturnStackReplay:
    """Measure return-stack behaviour over a trace."""
    stack = ReturnStack(depth, policy)
    result = ReturnStackReplay()
    current: list[int] = [0]  # the true chain, as opaque frame ids
    pool: list[list[int]] = []
    serial = 1
    for event in events:
        if event.op is TraceOp.CALL:
            result.calls += 1
            if stack.full:
                victims = stack.overflow_victims()
                result.flush_events["overflow"] = result.flush_events.get("overflow", 0) + 1
                result.entries_flushed += len(victims)
            stack.push(ReturnStackEntry(frame=current[-1], pc=0))
            current.append(serial)
            serial += 1
        elif event.op is TraceOp.RETURN:
            if len(current) <= 1:
                continue  # never return past the chain root
            result.returns += 1
            entry = stack.pop()
            current.pop()
            if entry is not None and entry.frame == current[-1]:
                result.hits += 1
            elif entry is not None:
                # A stale entry after an XFER-flush bug would land here;
                # the discipline below makes it unreachable.
                result.misses += 1
            else:
                result.misses += 1
        else:  # XFER: unusual -> flush everything, switch chains
            result.xfers += 1
            flushed = stack.take_all()
            if flushed:
                result.flush_events["xfer"] = result.flush_events.get("xfer", 0) + 1
                result.entries_flushed += len(flushed)
            pool.append(current)
            if len(pool) > 1:
                current = pool.pop(0)
            else:
                current = [serial]
                serial += 1
    return result


# ---------------------------------------------------------------------------
# Bank file replay (benchmark C7)
# ---------------------------------------------------------------------------


@dataclass
class BankReplay:
    """Results of replaying a trace against a register bank file."""

    stats: BankStats
    memory_reads: int
    memory_writes: int

    @property
    def overflow_rate(self) -> float:
        return self.stats.overflow_rate


def replay_on_banks(
    events: list[TraceEvent],
    bank_count: int = 4,
    bank_words: int = 16,
    arg_words: int = 2,
    writes_per_call: int = 3,
) -> BankReplay:
    """Measure bank overflow/underflow over a trace.

    Each CALL renames the stack bank for the callee and dirties a few
    words (arguments landing plus *writes_per_call* local stores), so
    spills move a realistic number of words.
    """
    counter = CycleCounter()
    banks = BankFile(bank_count, bank_words, counter)

    def spill(bank: Bank) -> None:
        pairs = banks.spill_words(bank)
        counter.record(Event.MEMORY_WRITE, len(pairs))

    def fill(bank: Bank, frame: object) -> None:
        assert isinstance(frame, _TraceFrame)
        count = min(bank_words, frame.local_words)
        counter.record(Event.MEMORY_READ, count)
        banks.fill(bank, [0] * count)

    manager = BankManager(banks, spill, fill)
    root = _TraceFrame(local_words=8)
    manager.begin(root)
    current: list[tuple[_TraceFrame, Bank | None]] = [(root, None)]
    pool: list[list[tuple[_TraceFrame, Bank | None]]] = []
    for event in events:
        if event.op is TraceOp.CALL:
            frame = _TraceFrame(local_words=event.frame_words)
            caller_bank = manager.on_call(frame, arg_words=arg_words)
            current[-1] = (current[-1][0], caller_bank)
            current.append((frame, None))
            lbank = manager.lbank
            if lbank is not None:
                for index in range(min(writes_per_call, lbank.size)):
                    banks.write(lbank, index, index)
        elif event.op is TraceOp.RETURN:
            if len(current) <= 1:
                continue
            frame, _ = current.pop()
            caller_frame, caller_bank = current[-1]
            manager.on_return(caller_frame, caller_bank)
        else:  # XFER
            pool.append(current)
            if len(pool) > 1:
                current = pool.pop(0)
            else:
                current = [(_TraceFrame(local_words=8), None)]
            manager.on_resume(current[-1][0])
    return BankReplay(
        stats=banks.stats,
        memory_reads=counter.count(Event.MEMORY_READ),
        memory_writes=counter.count(Event.MEMORY_WRITE),
    )


# ---------------------------------------------------------------------------
# Frame heap replay (Figure 2 / C11)
# ---------------------------------------------------------------------------


@dataclass
class HeapReplay:
    """Results of replaying allocations/frees against the AV heap."""

    allocations: int
    frees: int
    refs_per_allocate: float
    refs_per_free: float
    live_fragmentation: float
    lifetime_fragmentation: float
    idle_free_fraction: float
    trap_rate: float


def replay_on_heap(
    events: list[TraceEvent],
    ladder: SizeLadder | None = None,
    arena_words: int = 1 << 19,
) -> HeapReplay:
    """Drive the AV heap with a trace's allocation pattern.

    XFER events keep both chains' frames live simultaneously — the
    non-LIFO allocation pattern that rules out a stack and motivates the
    heap (section 5.3: "It requires no special cases to handle the
    frames of multiple processes or coroutines").
    """
    ladder = ladder or geometric_ladder()
    memory = Memory(max(arena_words + 4096, 1 << 16))
    counter = memory.counter
    av_base = 16
    heap = AVHeap(memory, ladder, av_base, av_base + len(ladder) + 1, arena_words)

    current: list[int] = []
    pool: list[list[int]] = []
    allocate_refs = 0
    free_refs = 0
    allocations = 0
    frees = 0
    for event in events:
        if event.op is TraceOp.CALL:
            before_traps = heap.stats.replenishments
            before = counter.memory_references
            pointer = heap.allocate(ladder.fsi_for(event.frame_words), event.frame_words)
            # Exclude software-allocator traps from the steady-state cost:
            # the paper's "three memory references" is the fast path.
            if heap.stats.replenishments == before_traps:
                allocate_refs += counter.memory_references - before
                allocations += 1
            current.append(pointer)
        elif event.op is TraceOp.RETURN:
            if not current:
                continue
            before = counter.memory_references
            heap.free(current.pop())
            free_refs += counter.memory_references - before
            frees += 1
        else:  # XFER
            pool.append(current)
            current = pool.pop(0) if len(pool) > 1 else []
    return HeapReplay(
        allocations=heap.stats.allocations,
        frees=heap.stats.frees,
        refs_per_allocate=allocate_refs / max(1, allocations),
        refs_per_free=free_refs / max(1, frees),
        live_fragmentation=heap.stats.live_fragmentation,
        lifetime_fragmentation=heap.stats.lifetime_fragmentation,
        idle_free_fraction=heap.stats.idle_free_fraction,
        trap_rate=heap.stats.trap_rate,
    )
