"""Workloads: the programs and traces behind every measurement.

Two kinds of input feed the benchmarks:

* **compiled programs** (:mod:`repro.workloads.programs`) — a corpus of
  mini-Mesa sources spanning the behaviours the paper's statistics
  describe: call-dense structured code, recursion, cross-module calls,
  VAR-parameter pointers, coroutines, and multiple processes;
* **synthetic traces** (:mod:`repro.workloads.synthetic`) — call/return/
  transfer sequences and frame-size samples calibrated to the paper's
  published statistics ("one call or return for every 10 instructions",
  "95% of all frames allocated are smaller than 80 bytes", "long runs of
  calls nearly uninterrupted by returns ... are quite rare"), replayed
  onto individual mechanisms (:mod:`repro.workloads.traces`) so the bank
  file, return stack, and frame heap can be measured in isolation and at
  scale.
"""

from repro.workloads.programs import CORPUS, corpus_sources, program
from repro.workloads.synthetic import (
    FrameSizeModel,
    TraceConfig,
    frame_size_samples,
    call_return_trace,
)
from repro.workloads.traces import (
    TraceOp,
    TraceEvent,
    replay_on_banks,
    replay_on_heap,
    replay_on_return_stack,
)

__all__ = [
    "CORPUS",
    "FrameSizeModel",
    "TraceConfig",
    "TraceEvent",
    "TraceOp",
    "call_return_trace",
    "corpus_sources",
    "frame_size_samples",
    "program",
    "replay_on_banks",
    "replay_on_heap",
    "replay_on_return_stack",
]
