"""Random program generation: a "large sample of source programs".

The paper's static statistics (two-thirds one-byte instructions, hot
targets behind one-byte call opcodes) and dynamic statistics (call
density, bank behaviour) were gathered over a large Mesa corpus.  The
hand-written corpus in :mod:`repro.workloads.programs` is necessarily
small; this generator produces arbitrarily many well-formed multi-module
programs with a skewed cross-module call graph, *together with the
expected result*, computed by a Python mirror with identical 16-bit
semantics — so generated programs double as differential tests.

Generation guarantees termination: the procedure call graph is a DAG
(procedure *i* only calls procedures with larger indices), and the only
loop is the driver's bounded accumulation loop in ``main``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable

_WORD = 0xFFFF


def _wrap(value: int) -> int:
    return value & _WORD


def _signed(value: int) -> int:
    value &= _WORD
    return value - 0x10000 if value >= 0x8000 else value


#: An expression is rendered source text plus its Python mirror.
_Expr = tuple[str, Callable[[dict[str, int]], int]]


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and shape of the generated program."""

    modules: int = 4
    procs_per_module: int = 5
    max_args: int = 3
    #: Iterations of main's driver loop (dynamic workload size).
    loop_iterations: int = 25
    #: Zipf-ish skew: lower = flatter call-target distribution.
    hot_target_bias: float = 2.0
    seed: int = 1982


@dataclass
class GeneratedProgram:
    """Sources plus the independently computed expected result."""

    sources: list[str]
    expected: int
    entry: tuple[str, str] = ("M0", "main")
    config: GeneratorConfig = field(default_factory=GeneratorConfig)


@dataclass
class _Proc:
    index: int
    module: int
    name: str
    params: list[str]
    body_text: str = ""
    mirror: Callable[..., int] | None = None


def generate_program(config: GeneratorConfig | None = None) -> GeneratedProgram:
    """Build one random program and evaluate its expected result."""
    config = config or GeneratorConfig()
    rng = random.Random(config.seed)
    total = config.modules * config.procs_per_module
    procs = [
        _Proc(
            index=index,
            module=index % config.modules,
            name=f"p{index}",
            params=[f"a{j}" for j in range(rng.randint(1, config.max_args))],
        )
        for index in range(total)
    ]

    # Build bodies leaf-first so every callee's mirror already exists.
    for proc in reversed(procs):
        _build_body(proc, procs, config, rng)

    sources = _render_modules(procs, config)
    expected = _run_mirror(procs[0], config)
    return GeneratedProgram(sources=sources, expected=expected, config=config)


# -- body construction --------------------------------------------------------


def _build_body(proc: _Proc, procs: list[_Proc], config: GeneratorConfig, rng: random.Random) -> None:
    callees = _pick_callees(proc, procs, config, rng)
    lines: list[str] = []
    locals_used: list[str] = []
    steps: list[Callable[[dict[str, int]], None]] = []

    def add_assignment(name: str, expr: _Expr) -> None:
        text, fn = expr
        lines.append(f"  {name} := {text};")
        steps.append(lambda env, fn=fn, name=name: env.__setitem__(name, fn(env)))

    available = list(proc.params)
    scratch = f"t{proc.index}"
    locals_used.append(scratch)
    add_assignment(scratch, _arith_expr(available, rng, depth=2))
    available.append(scratch)

    # Optionally a conditional re-assignment, to put real branches in the
    # instruction stream (signed comparison, like the machine's).
    if rng.random() < 0.5:
        left, left_fn = _arith_expr(available, rng, depth=1)
        right, right_fn = _arith_expr(available, rng, depth=1)
        then_text, then_fn = _arith_expr(available, rng, depth=1)
        else_text, else_fn = _arith_expr(available, rng, depth=1)
        op = rng.choice(["<", ">", "=", "#"])
        lines.append(
            f"  IF {left} {op} {right} THEN\n"
            f"    {scratch} := {then_text};\n"
            f"  ELSE\n"
            f"    {scratch} := {else_text};\n"
            f"  END;"
        )

        def branch(env, op=op, lf=left_fn, rf=right_fn, tf=then_fn, ef=else_fn, name=scratch):
            a, b = _signed(lf(env)), _signed(rf(env))
            taken = {
                "<": a < b,
                ">": a > b,
                "=": a == b,
                "#": a != b,
            }[op]
            env[name] = (tf if taken else ef)(env)

        steps.append(branch)

    for slot, callee in enumerate(callees):
        arg_exprs = [_arith_expr(available, rng, depth=1) for _ in callee.params]
        qualified = (
            callee.name if callee.module == proc.module else f"M{callee.module}.{callee.name}"
        )
        call_text = f"{qualified}({', '.join(text for text, _ in arg_exprs)})"
        result_name = f"r{proc.index}_{slot}"
        locals_used.append(result_name)
        lines.append(f"  {result_name} := {call_text};")

        def do_call(env, callee=callee, arg_exprs=arg_exprs, result_name=result_name):
            values = [fn(env) for _, fn in arg_exprs]
            env[result_name] = callee.mirror(*values)

        steps.append(do_call)
        available.append(result_name)

    final = _arith_expr(available, rng, depth=2)
    lines.append(f"  RETURN {final[0]};")

    param_list = ", ".join(proc.params)
    var_line = f"VAR {', '.join(locals_used)}: INT;\n" if locals_used else ""
    proc.body_text = (
        f"PROCEDURE {proc.name}({param_list}): INT;\n{var_line}BEGIN\n"
        + "\n".join(lines)
        + "\nEND;"
    )

    def mirror(*args: int) -> int:
        env = {name: _wrap(value) for name, value in zip(proc.params, args, strict=True)}
        for step in steps:
            step(env)
        return final[1](env)

    proc.mirror = mirror


def _pick_callees(proc: _Proc, procs: list[_Proc], config: GeneratorConfig, rng: random.Random) -> list[_Proc]:
    candidates = procs[proc.index + 1 :]
    if not candidates:
        return []
    count = rng.randint(0, min(3, len(candidates)))
    chosen = []
    for _ in range(count):
        # Skewed choice: early candidates (hot procedures) preferred.
        weight = rng.random() ** config.hot_target_bias
        chosen.append(candidates[int(weight * len(candidates))])
    return chosen


def _arith_expr(names: list[str], rng: random.Random, depth: int) -> _Expr:
    kind = rng.random()
    if depth <= 0 or kind < 0.35:
        if names and rng.random() < 0.7:
            name = rng.choice(names)
            return name, lambda env, name=name: env[name]
        literal = rng.randint(0, 99)
        return str(literal), lambda env, literal=literal: literal
    left = _arith_expr(names, rng, depth - 1)
    right = _arith_expr(names, rng, depth - 1)
    op = rng.choice(["+", "-", "*"])
    if op == "+":
        fn = lambda env, l=left[1], r=right[1]: _wrap(l(env) + r(env))
    elif op == "-":
        fn = lambda env, l=left[1], r=right[1]: _wrap(l(env) - r(env))
    else:
        fn = lambda env, l=left[1], r=right[1]: _wrap(l(env) * r(env))
    return f"({left[0]} {op} {right[0]})", fn


# -- rendering and mirroring ----------------------------------------------------


def _render_modules(procs: list[_Proc], config: GeneratorConfig) -> list[str]:
    sources = []
    for module_index in range(config.modules):
        bodies = [proc.body_text for proc in procs if proc.module == module_index]
        if module_index == 0:
            root = procs[0]
            driver_args = ", ".join(
                f"(i + {j})" for j in range(len(root.params))
            )
            bodies.append(
                f"""PROCEDURE main(): INT;
VAR i, acc: INT;
BEGIN
  acc := 0;
  i := 0;
  WHILE i < {config.loop_iterations} DO
    acc := acc + {root.name}({driver_args});
    i := i + 1;
  END;
  RETURN acc;
END;"""
            )
        sources.append(f"MODULE M{module_index};\n" + "\n".join(bodies) + "\nEND.")
    return sources


def _run_mirror(root: _Proc, config: GeneratorConfig) -> int:
    acc = 0
    for i in range(config.loop_iterations):
        args = [_wrap(i + j) for j in range(len(root.params))]
        acc = _wrap(acc + root.mirror(*args))
    return acc - 0x10000 if acc >= 0x8000 else acc
