"""Per-opcode templates and classification tables for the block compiler.

Every opcode is classified one of three ways:

* **inline** — the compiler knows a host-Python template that replays
  the opcode's exact semantics *and* exact meter charges (the charge
  schedule is additive, so per-op charges are accumulated at compile
  time and committed in one batched counter update per block).
* **tail** — the opcode ends a compiled block and is executed through
  the interpreter's own handler (control transfers, storage
  management, anything whose charge schedule is data-dependent).
  Call sites and returns may additionally get a specialized fast path
  from :mod:`repro.jit.calls`.
* **deopt** — the opcode is inline in principle but this machine
  configuration makes it data-dependent (diverted RD/WR, banked local
  beyond the bank window), so the template is an unconditional
  deoptimization to the interpreter.

The tables below are consumed by :mod:`repro.jit.compile`; expression
templates use ``{a}``/``{b}`` for the popped operands.
"""

from __future__ import annotations

from repro.banks.pointers import PointerPolicy
from repro.isa.opcodes import CALL_OPS, JUMP_OPS, Op

#: Opcodes that unconditionally end a compiled block and run through the
#: interpreter's dispatch handler.  RD/WR join this set when the machine
#: diverts pointers through the bank file (see :func:`tail_ops`).
BASE_TAIL_OPS: frozenset[Op] = frozenset(
    {
        Op.HALT,
        Op.BRK,
        Op.LLA,  # materializes the frame; address depends on allocation
        Op.RET,
        Op.XF,
        Op.LRC,
        Op.LLC,
        Op.YIELD,
        Op.RETAIN,
        Op.ALOC,
        Op.FREE,
        *CALL_OPS,
    }
)

#: Conditional jumps and their taken-sense (True: jump when zero).
COND_JUMPS: dict[Op, bool] = {
    Op.JZB: True,
    Op.JZW: True,
    Op.JNZB: False,
    Op.JNZW: False,
}

#: Unconditional jumps.
UNCOND_JUMPS: frozenset[Op] = frozenset({Op.JB, Op.JW})

#: Constant pushed by each immediate opcode (LIB/LIW push their operand).
PUSH_CONST: dict[Op, int] = {
    Op.LIN1: 0xFFFF,
    Op.LI0: 0,
    Op.LI1: 1,
    Op.LI2: 2,
    Op.LI3: 3,
    Op.LI4: 4,
    Op.LI5: 5,
    Op.LI6: 6,
    Op.LI7: 7,
}

#: Local-variable index for the short load/store forms (LLB/SLB use
#: their operand byte).
LOCAL_LOAD: dict[Op, int] = {Op(int(Op.LL0) + i): i for i in range(8)}
LOCAL_STORE: dict[Op, int] = {Op(int(Op.SL0) + i): i for i in range(8)}

#: Unsigned/modular binary ops: the 16-bit result is congruent to the
#: host-int result, so signed decode + re-encode folds to one mask.
BINARY_MODULAR: dict[Op, str] = {
    Op.ADD: "({a} + {b}) & 65535",
    Op.SUB: "({a} - {b}) & 65535",
    Op.MUL: "({a} * {b}) & 65535",
    Op.AND: "{a} & {b}",
    Op.OR: "{a} | {b}",
    Op.XOR: "{a} ^ {b}",
    Op.SHL: "({a} << ({b} & 15)) & 65535",
    Op.SHR: "{a} >> ({b} & 15)",
}

#: Comparisons on decoded signed values.
COMPARE_SIGNED: dict[Op, str] = {
    Op.LT: "<",
    Op.LE: "<=",
    Op.GT: ">",
    Op.GE: ">=",
}

#: Comparisons where signed decode is order-preserving on raw words.
COMPARE_RAW: dict[Op, str] = {Op.EQ: "==", Op.NE: "!="}

#: Stack effect of each inline opcode: (words needed on entry, net
#: depth delta).  Tail opcodes are absent — the interpreter handles
#: their stack traffic (including underflow semantics) itself.
STACK_EFFECTS: dict[Op, tuple[int, int]] = {
    Op.NOOP: (0, 0),
    **{op: (0, 1) for op in PUSH_CONST},
    Op.LIB: (0, 1),
    Op.LIW: (0, 1),
    **{op: (0, 1) for op in LOCAL_LOAD},
    Op.LLB: (0, 1),
    **{op: (1, -1) for op in LOCAL_STORE},
    Op.SLB: (1, -1),
    Op.LG: (0, 1),
    Op.SG: (1, -1),
    Op.LGA: (0, 1),
    Op.RD: (1, 0),
    Op.WR: (2, -2),
    **{op: (2, -1) for op in BINARY_MODULAR},
    Op.DIV: (2, -1),
    Op.MOD: (2, -1),
    **{op: (2, -1) for op in COMPARE_SIGNED},
    **{op: (2, -1) for op in COMPARE_RAW},
    Op.NEG: (1, 0),
    Op.NOT: (1, 0),
    Op.DUP: (1, 1),
    Op.POP: (1, -1),
    Op.EXCH: (2, 0),
    Op.OUT: (1, -1),
    Op.JB: (0, 0),
    Op.JW: (0, 0),
    **{op: (1, -1) for op in COND_JUMPS},
}


def tail_ops(config) -> frozenset[Op]:
    """The tail-opcode set for one machine configuration.

    With register banks and the DIVERT pointer policy, RD/WR may route
    through the bank file with data-dependent charges, so they cannot
    be inlined and end the block instead.
    """
    tails = BASE_TAIL_OPS
    if config.bank_count > 0 and config.pointer_policy is PointerPolicy.DIVERT:
        tails = tails | {Op.RD, Op.WR}
    return tails


def is_inline(op: Op, tails: frozenset[Op]) -> bool:
    """True when *op* has an inline template under this tail set."""
    return op not in tails and (op in STACK_EFFECTS or op in JUMP_OPS)


__all__ = [
    "BASE_TAIL_OPS",
    "BINARY_MODULAR",
    "COMPARE_RAW",
    "COMPARE_SIGNED",
    "COND_JUMPS",
    "LOCAL_LOAD",
    "LOCAL_STORE",
    "PUSH_CONST",
    "STACK_EFFECTS",
    "UNCOND_JUMPS",
    "is_inline",
    "tail_ops",
]
