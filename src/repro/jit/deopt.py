"""Deoptimization contract and refusal conditions for the JIT.

The JIT only ever runs code it can prove it replays exactly; anything
else is handed back to the interpreter.  Two mechanisms implement
that:

* **Refusal** (:class:`JitRefusal`): the whole image is rejected at
  install time — the static checker found errors, or a supplied facts
  artifact does not match the image.  The CLI maps a refusal to exit
  status 2, the same convention as every other bad-input path.

* **Deoptimization**: a compiled block bails out *before* committing
  any charge for the instruction that needs interpreter help (guard
  failure, potential trap, divert/bank miss, step-ceiling proximity),
  sets ``machine.pc`` to that instruction, and returns the ``-2``
  sentinel.  The engine then single-steps the real interpreter until
  the pc lands back on a compiled block boundary.  Because guards fire
  before any mutation, the committed meter charges always correspond
  to exactly the fully-executed instructions — the interpreter resumes
  from a state it could have produced itself.

Attaching any observer (tracer, profiler, transfer log — i.e. the
fault injector, snapshot capture triggers, or tracing) deactivates
the engine wholesale: ``Machine.run`` consults ``engine.active()``
first and falls through to the interpreter loop, so chaos and
observability runs are interpreter runs by construction.
"""

from __future__ import annotations

from dataclasses import dataclass


class JitRefusal(Exception):
    """The JIT declines to compile this image (bad image or bad facts)."""


@dataclass
class EngineStats:
    """Counters the engine keeps while running compiled code."""

    #: Times a block bailed out to the interpreter (guard failure,
    #: trap-prone instruction, bank/divert miss, ...).
    deopts: int = 0
    #: Interpreter single-steps taken while returning to a block boundary.
    deopt_steps: int = 0
    #: Call-site cells built (one per (site, gf) pair seeded).
    cells_built: int = 0
    #: Call sites demoted to the generic handler (polymorphism observed
    #: beyond what the facts promised, or an unsupported target shape).
    sites_demoted: int = 0
    #: Runs that fell back to the interpreter mid-flight because an
    #: observer was attached while compiled code was running.
    observer_bailouts: int = 0

    def as_dict(self) -> dict:
        return {
            "deopts": self.deopts,
            "deopt_steps": self.deopt_steps,
            "cells_built": self.cells_built,
            "sites_demoted": self.sites_demoted,
            "observer_bailouts": self.observer_bailouts,
        }


__all__ = ["JitRefusal", "EngineStats"]
