"""Basic-block carving and host-Python template assembly.

Each verified procedure body is carved with the checker's CFG builder
(:mod:`repro.check.cfg`), then split further at *tail* opcodes
(transfers, storage management — see :mod:`repro.jit.templates`).  The
resulting straight-line runs are compiled into one host function per
block via ``exec``: every inline opcode expands to a template that
reproduces the interpreter's exact state transition, while its meter
charges are accumulated **at compile time** and committed in a single
batched counter update.  The interpreter charges per executed
instruction and the charge schedule is purely additive, so batching at
block granularity (and at every early exit) yields bit-identical
counters at every observable point: block boundaries, deoptimizations,
traps raised by tail handlers, and step-ceiling checks.

Block protocol — a compiled function ``fn(machine)`` returns:

* ``pc >= 0`` — the block completed; ``machine.pc`` is ``pc`` (the
  engine direct-threads into the next compiled block);
* ``-1`` — a tail handler ran; the engine must re-read ``pc``,
  ``halted``, and ``yield_requested`` from the machine;
* ``-2`` — deoptimization: ``machine.pc`` names the instruction that
  needs the interpreter, and **no** charge for it (or anything after
  it) has been committed.  Guards always fire before their
  instruction's charges and mutations, so the committed meters
  correspond to exactly the fully-executed prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.check.cfg import ControlFlowGraph, build_cfg
from repro.check.diagnostics import CheckReport
from repro.isa.opcodes import CALL_OPS, Op
from repro.jit import templates as T
from repro.machine.costs import Event

#: Namespace variable bound to each Event at exec time.
EVENT_VARS: dict[Event, str] = {
    Event.DECODE: "E_DEC",
    Event.MEMORY_READ: "E_MR",
    Event.MEMORY_WRITE: "E_MW",
    Event.REGISTER_READ: "E_RR",
    Event.REGISTER_WRITE: "E_RW",
    Event.JUMP: "E_JP",
}


@dataclass
class CompilerContext:
    """Everything block generation needs from the engine, precomputed."""

    #: Event -> cycle cost (from the machine's cost model).
    charge: dict
    #: Evaluation-stack depth limit.
    depth: int
    #: Locals live in register banks (i4-style configs).
    banked: bool
    #: Words per bank (locals beyond this index go to memory).
    bank_words: int
    #: Tail-opcode set for this configuration.
    tails: frozenset
    #: RD/WR may be inlined (full 64K store, every region writable).
    inline_memory: bool
    #: Name of the frame arena region ("frames").
    frames_name: str
    #: address -> region name ("" when unmapped), uncounted.
    region_name: Callable[[int], str]
    #: module name -> gf addresses of its instances (for static
    #: attribution of LG/SG traffic).
    module_gfs: dict
    #: (module, proc) -> {site offset -> classification} from the facts.
    site_classes: dict
    #: Specialized call runtime (or None: every call is generic).
    fast_call: Callable | None = None
    #: Specialized return runtime (or None).
    fast_return: Callable | None = None
    #: CallSite factory, bound by the engine (imported lazily to keep
    #: compile.py free of runtime deps).
    make_site: Callable | None = None


@dataclass
class BlockSpec:
    """One compiled block: an inline run plus its terminator."""

    start: int  # absolute address of the first instruction
    items: list  # DecodedInstruction inline run
    term: str  # 'jump' | 'cond' | 'fall' | 'tail'
    term_item: object | None
    next_abs: int  # fall-through / not-taken successor (absolute)
    target_abs: int | None = None  # jump target (absolute)


def carve(cfg: ControlFlowGraph, base: int, tails: frozenset) -> list[BlockSpec]:
    """Split CFG blocks further at tail opcodes; absolute addressing.

    Every CFG block start is a spec start, and so is the instruction
    after every tail — which is exactly where calls return to, so
    return pcs always land on compiled block boundaries.
    """
    specs: list[BlockSpec] = []
    for block in cfg.block_order():
        run: list = []
        start = block.start
        for item in block.instructions:
            op = item.instruction.op
            following = item.offset + item.length
            if op in tails:
                specs.append(
                    BlockSpec(
                        start=base + start,
                        items=run,
                        term="tail",
                        term_item=item,
                        next_abs=base + following,
                    )
                )
                run = []
                start = following
            elif op in T.COND_JUMPS or op in T.UNCOND_JUMPS:
                # Jumps always terminate their CFG block.
                specs.append(
                    BlockSpec(
                        start=base + start,
                        items=run,
                        term="cond" if op in T.COND_JUMPS else "jump",
                        term_item=item,
                        next_abs=base + following,
                        target_abs=base + item.target(),
                    )
                )
                run = []
                start = following
            else:
                run.append(item)
        if run:
            specs.append(
                BlockSpec(
                    start=base + start,
                    items=run,
                    term="fall",
                    term_item=None,
                    next_abs=base + block.end,
                )
            )
    return specs


class _Charges:
    """Accumulates the pending (uncommitted) meter effects of a block."""

    def __init__(self, ctx: CompilerContext) -> None:
        self.ctx = ctx
        self.events: dict[str, int] = {}
        self.traffic: dict[str, int] = {}
        self.steps = 0

    def add(self, event: Event, times: int = 1) -> None:
        var = EVENT_VARS[event]
        self.events[var] = self.events.get(var, 0) + times

    def hit(self, region: str, times: int = 1) -> None:
        self.traffic[region] = self.traffic.get(region, 0) + times

    def step(self) -> None:
        self.steps += 1
        self.add(Event.DECODE)

    def commit_lines(self, indent: str, extra_jump: bool = False) -> list[str]:
        """Render the batched counter/traffic/steps update."""
        events = dict(self.events)
        if extra_jump:
            var = EVENT_VARS[Event.JUMP]
            events[var] = events.get(var, 0) + 1
        lines = []
        cycles = 0
        charge = self.ctx.charge
        by_event = {name: ev for ev, name in EVENT_VARS.items()}
        for var in sorted(events):
            times = events[var]
            if not times:
                continue
            lines.append(f"{indent}_CC[{var}] += {times}")
            cycles += charge[by_event[var]] * times
        if cycles:
            lines.append(f"{indent}_CTR.cycles += {cycles}")
        for region in sorted(self.traffic):
            times = self.traffic[region]
            lines.append(f"{indent}_TR[{region!r}] = _TR.get({region!r}, 0) + {times}")
        if self.steps:
            lines.append(f"{indent}m.steps += {self.steps}")
        return lines


def _deopt_lines(w: _Charges, indent: str, at: int) -> list[str]:
    """Commit the executed prefix and hand *at* to the interpreter."""
    lines = w.commit_lines(indent)
    lines.append(f"{indent}m.pc = {at}")
    lines.append(f"{indent}return -2")
    return lines


def _gf_static_region(ctx: CompilerContext, module: str, word: int) -> str | None:
    """The single region name every instance's ``gf + word`` falls in.

    A procedure only ever executes under one of its module's instance
    gfs, so if the address attributes to the same region under all of
    them the attribution is static.  Returns None when it is not.
    """
    gfs = ctx.module_gfs.get(module)
    if not gfs:
        return None
    names = {ctx.region_name(gf + word) for gf in gfs}
    if len(names) != 1:
        return None
    return names.pop()


# Stack effects of the conditional-jump terminator (pop of the tested
# value) are included in the entry-guard walk via this pseudo-effect.
_COND_EFFECT = (1, -1)


def _entry_guard(
    items: list, term: str, depth: int
) -> tuple[int, int, bool]:
    """(needs, max_grow, uses_stack) over the emitted inline prefix."""
    cum = 0
    needs = 0
    grow = 0
    uses = False
    effects = [T.STACK_EFFECTS[item.instruction.op] for item in items]
    if term == "cond":
        effects.append(_COND_EFFECT)
    for n, delta in effects:
        uses = True
        if n - cum > needs:
            needs = n - cum
        cum += delta
        if cum > grow:
            grow = cum
    return needs, grow, uses


def gen_block(
    spec: BlockSpec,
    index: int,
    ctx: CompilerContext,
    ns: dict,
    machine,
    meta,
) -> tuple[str, list[str], int]:
    """Generate one block function; returns (name, source lines, n_steps).

    ``n_steps`` is the maximum number of modelled steps the block can
    commit — the engine compares it against the step ceiling before
    entering the block.
    """
    name = f"_b{spec.start}"
    w = _Charges(ctx)
    body: list[str] = []
    ind = "    "

    # -- decide how far the inline run actually compiles ---------------
    emitted: list = []
    deopt_at: int | None = None
    for item in spec.items:
        op = item.instruction.op
        abs_pc = spec.start + (item.offset - spec.items[0].offset)
        if ctx.banked and (
            op in T.LOCAL_LOAD
            or op in T.LOCAL_STORE
            or op in (Op.LLB, Op.SLB)
        ):
            local = T.LOCAL_LOAD.get(op)
            if local is None:
                local = T.LOCAL_STORE.get(op)
            if local is None:
                local = item.instruction.operand
            if local >= ctx.bank_words:
                # Falls to the memory path (possibly materializing a
                # deferred frame): data-dependent, interpreter's job.
                deopt_at = abs_pc
                break
        if op in (Op.LG, Op.SG):
            word = 3 + item.instruction.operand  # GF_HEADER_WORDS
            if _gf_static_region(ctx, meta.module, word) is None:
                deopt_at = abs_pc
                break
        if op in (Op.RD, Op.WR) and not ctx.inline_memory:
            deopt_at = abs_pc
            break
        emitted.append(item)

    term = spec.term if deopt_at is None else "deopt"

    # -- prologue -------------------------------------------------------
    needs, grow, uses_stack = _entry_guard(emitted, term, ctx.depth)
    ops = [item.instruction.op for item in emitted]
    uses_local = any(
        op in T.LOCAL_LOAD or op in T.LOCAL_STORE or op in (Op.LLB, Op.SLB)
        for op in ops
    )
    uses_gf = any(op in (Op.LG, Op.SG, Op.LGA) for op in ops)
    uses_out = Op.OUT in ops

    body.append(f"def {name}(m):")
    if uses_stack:
        body.append(f"{ind}st = _ST._slots")
        guards = []
        if needs > 0:
            guards.append(f"len(st) < {needs}")
        if grow > 0:
            guards.append(f"len(st) > {ctx.depth - grow}")
        if guards:
            body.append(f"{ind}if {' or '.join(guards)}:")
            body.append(f"{ind}    m.pc = {spec.start}")
            body.append(f"{ind}    return -2")
    if uses_local:
        if ctx.banked:
            body.append(f"{ind}_bk = _BKS.lbank")
            body.append(f"{ind}if _bk is None or _bk.frame is not m.frame:")
            body.append(f"{ind}    m.pc = {spec.start}")
            body.append(f"{ind}    return -2")
            body.append(f"{ind}_bw = _bk.words")
        else:
            body.append(f"{ind}_fa = m.frame.address")
    if uses_gf:
        body.append(f"{ind}_gf = m.gf")
    if uses_out:
        body.append(f"{ind}_o = m.output")

    # -- inline run -----------------------------------------------------
    for item in emitted:
        _emit_op(item, spec, ctx, meta, w, body, ind)

    # -- terminator -----------------------------------------------------
    n_steps = w.steps
    if term == "deopt":
        body.extend(_deopt_lines(w, ind, deopt_at))
    elif term == "fall":
        body.extend(w.commit_lines(ind))
        body.append(f"{ind}m.pc = {spec.next_abs}")
        body.append(f"{ind}return {spec.next_abs}")
    elif term == "jump":
        w.step()
        w.add(Event.JUMP)
        n_steps += 1
        body.extend(w.commit_lines(ind))
        body.append(f"{ind}m.pc = {spec.target_abs}")
        body.append(f"{ind}return {spec.target_abs}")
    elif term == "cond":
        op = spec.term_item.instruction.op
        w.step()
        w.add(Event.REGISTER_READ)  # the tested value's pop
        n_steps += 1
        test = "==" if T.COND_JUMPS[op] else "!="
        body.append(f"{ind}v = st.pop()")
        body.append(f"{ind}if v {test} 0:")
        body.extend(w.commit_lines(ind + "    ", extra_jump=True))
        body.append(f"{ind}    m.pc = {spec.target_abs}")
        body.append(f"{ind}    return {spec.target_abs}")
        body.extend(w.commit_lines(ind))
        body.append(f"{ind}m.pc = {spec.next_abs}")
        body.append(f"{ind}return {spec.next_abs}")
    else:  # tail
        item = spec.term_item
        op = item.instruction.op
        w.step()
        n_steps += 1
        body.extend(w.commit_lines(ind))
        body.append(f"{ind}m.pc = {spec.next_abs}")
        site = None
        if (
            op in CALL_OPS
            and ctx.fast_call is not None
            and ctx.make_site is not None
        ):
            classes = ctx.site_classes.get((meta.module, meta.name), {})
            classification = classes.get(item.offset)
            if classification in ("monomorphic", "polymorphic"):
                site = ctx.make_site(
                    op,
                    spec.next_abs,
                    machine._dispatch[op],
                    item.instruction,
                    classification == "monomorphic",
                )
        if site is not None:
            ns[f"_s{index}"] = site
            body.append(f"{ind}try:")
            body.append(f"{ind}    return _fc(m, _s{index})")
            body.extend(_tail_excepts(ind, returning=True))
        elif op is Op.RET and ctx.fast_return is not None:
            body.append(f"{ind}try:")
            body.append(f"{ind}    return _fr(m)")
            body.extend(_tail_excepts(ind, returning=True))
        else:
            ns[f"_h{index}"] = machine._dispatch[op]
            ns[f"_i{index}"] = item.instruction
            body.append(f"{ind}try:")
            body.append(f"{ind}    _h{index}(_i{index}, {spec.next_abs})")
            body.extend(_tail_excepts(ind, returning=False))
            body.append(f"{ind}return -1")

    body.append("")
    return name, body, n_steps


def _tail_excepts(ind: str, returning: bool) -> list[str]:
    """The run loop's four-clause fault net around a tail handler."""
    out = [
        f"{ind}except _TT:",
        f"{ind}    return -1" if returning else f"{ind}    pass",
        f"{ind}except _ESO as _f:",
        f"{ind}    m._surface_trap(_K_SO, str(_f))",
    ]
    if returning:
        out.append(f"{ind}    return -1")
    out += [
        f"{ind}except _HE as _f:",
        f"{ind}    m._surface_trap(_K_RE, str(_f))",
    ]
    if returning:
        out.append(f"{ind}    return -1")
    out += [
        f"{ind}except _AMF as _f:",
        f"{ind}    m._surface_trap(_K_SF, str(_f))",
    ]
    if returning:
        out.append(f"{ind}    return -1")
    return out


def _emit_op(item, spec, ctx, meta, w: _Charges, body: list[str], ind: str) -> None:
    """Emit one inline opcode's template; accumulate its charges."""
    op = item.instruction.op
    operand = item.instruction.operand
    abs_pc = spec.start + (item.offset - spec.items[0].offset)

    if op is Op.NOOP:
        w.step()
        return

    if op in T.PUSH_CONST:
        w.step()
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}st.append({T.PUSH_CONST[op]})")
        return
    if op in (Op.LIB, Op.LIW):
        w.step()
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}st.append({operand})")
        return

    if op in T.LOCAL_LOAD or op is Op.LLB:
        local = T.LOCAL_LOAD.get(op, operand)
        w.step()
        if ctx.banked:
            w.add(Event.REGISTER_READ)
            w.add(Event.REGISTER_WRITE)
            body.append(f"{ind}st.append(_bw[{local}])")
        else:
            w.add(Event.MEMORY_READ)
            w.add(Event.REGISTER_WRITE)
            w.hit(ctx.frames_name)
            body.append(f"{ind}st.append(_W[_fa + {3 + local}])")
        return
    if op in T.LOCAL_STORE or op is Op.SLB:
        local = T.LOCAL_STORE.get(op, operand)
        w.step()
        w.add(Event.REGISTER_READ)
        if ctx.banked:
            w.add(Event.REGISTER_WRITE)
            body.append(f"{ind}_bw[{local}] = st.pop()")
            body.append(f"{ind}_bk.dirty.add({local})")
        else:
            w.add(Event.MEMORY_WRITE)
            w.hit(ctx.frames_name)
            body.append(f"{ind}_W[_fa + {3 + local}] = st.pop()")
        return

    if op is Op.LG:
        word = 3 + operand
        region = _gf_static_region(ctx, meta.module, word)
        w.step()
        w.add(Event.MEMORY_READ)
        w.add(Event.REGISTER_WRITE)
        w.hit(region)
        body.append(f"{ind}st.append(_W[_gf + {word}])")
        return
    if op is Op.SG:
        word = 3 + operand
        region = _gf_static_region(ctx, meta.module, word)
        w.step()
        w.add(Event.REGISTER_READ)
        w.add(Event.MEMORY_WRITE)
        w.hit(region)
        body.append(f"{ind}_W[_gf + {word}] = st.pop()")
        return
    if op is Op.LGA:
        w.step()
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}st.append((_gf + {3 + operand}) & 65535)")
        return

    if op is Op.RD:
        w.step()
        w.add(Event.REGISTER_READ)
        w.add(Event.MEMORY_READ)
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}a = st.pop()")
        body.append(f"{ind}_n = _NM[a]")
        body.append(f"{ind}_TR[_n] = _TR.get(_n, 0) + 1")
        body.append(f"{ind}st.append(_W[a])")
        return
    if op is Op.WR:
        w.step()
        w.add(Event.REGISTER_READ, 2)
        w.add(Event.MEMORY_WRITE)
        body.append(f"{ind}a = st.pop()")
        body.append(f"{ind}_n = _NM[a]")
        body.append(f"{ind}_TR[_n] = _TR.get(_n, 0) + 1")
        body.append(f"{ind}_W[a] = st.pop()")
        return

    if op in T.BINARY_MODULAR:
        w.step()
        w.add(Event.REGISTER_READ, 2)
        w.add(Event.REGISTER_WRITE)
        expr = T.BINARY_MODULAR[op].format(a="a", b="b")
        body.append(f"{ind}b = st.pop()")
        body.append(f"{ind}a = st.pop()")
        body.append(f"{ind}st.append({expr})")
        return

    if op in (Op.DIV, Op.MOD):
        # Divide-by-zero traps through the interpreter: guard on the
        # (unpopped) divisor before committing this op's charges.
        body.append(f"{ind}if st[-1] == 0:")
        body.extend(_deopt_lines(w, ind + "    ", abs_pc))
        w.step()
        w.add(Event.REGISTER_READ, 2)
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}b = st.pop()")
        body.append(f"{ind}a = st.pop()")
        body.append(f"{ind}if b > 32767: b -= 65536")
        body.append(f"{ind}if a > 32767: a -= 65536")
        body.append(f"{ind}q = abs(a) // abs(b)")
        body.append(f"{ind}if (a >= 0) != (b >= 0): q = -q")
        if op is Op.DIV:
            body.append(f"{ind}st.append(q & 65535)")
        else:
            body.append(f"{ind}st.append((a - q * b) & 65535)")
        return

    if op in T.COMPARE_SIGNED:
        w.step()
        w.add(Event.REGISTER_READ, 2)
        w.add(Event.REGISTER_WRITE)
        cmp = T.COMPARE_SIGNED[op]
        body.append(f"{ind}b = st.pop()")
        body.append(f"{ind}a = st.pop()")
        body.append(f"{ind}if b > 32767: b -= 65536")
        body.append(f"{ind}if a > 32767: a -= 65536")
        body.append(f"{ind}st.append(1 if a {cmp} b else 0)")
        return
    if op in T.COMPARE_RAW:
        w.step()
        w.add(Event.REGISTER_READ, 2)
        w.add(Event.REGISTER_WRITE)
        cmp = T.COMPARE_RAW[op]
        body.append(f"{ind}b = st.pop()")
        body.append(f"{ind}a = st.pop()")
        body.append(f"{ind}st.append(1 if a {cmp} b else 0)")
        return

    if op is Op.NEG:
        w.step()
        w.add(Event.REGISTER_READ)
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}st.append((-st.pop()) & 65535)")
        return
    if op is Op.NOT:
        w.step()
        w.add(Event.REGISTER_READ)
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}st.append(st.pop() ^ 65535)")
        return
    if op is Op.DUP:
        w.step()
        w.add(Event.REGISTER_READ)
        w.add(Event.REGISTER_WRITE)
        body.append(f"{ind}st.append(st[-1])")
        return
    if op is Op.POP:
        w.step()
        w.add(Event.REGISTER_READ)
        body.append(f"{ind}del st[-1]")
        return
    if op is Op.EXCH:
        w.step()
        w.add(Event.REGISTER_READ, 2)
        w.add(Event.REGISTER_WRITE, 2)
        body.append(f"{ind}st[-1], st[-2] = st[-2], st[-1]")
        return
    if op is Op.OUT:
        w.step()
        w.add(Event.REGISTER_READ)
        body.append(f"{ind}v = st.pop()")
        body.append(f"{ind}if v > 32767: v -= 65536")
        body.append(f"{ind}_o.append(v)")
        return

    raise AssertionError(f"no inline template for {op!r}")  # pragma: no cover


def compile_procedure(
    meta, body_bytes: bytes, base: int, machine, ctx: CompilerContext, common_ns: dict
) -> dict[int, tuple[Callable, int]] | None:
    """Compile one placed procedure; returns {abs pc -> (fn, n_steps)}.

    Returns None when the body does not re-verify (stale placement,
    replaced code): the engine then leaves those pcs to the interpreter.
    """
    report = CheckReport()
    cfg = build_cfg(body_bytes, report, meta.module, meta.name)
    if cfg is None or report.errors:
        return None
    specs = carve(cfg, base, ctx.tails)
    ns = dict(common_ns)
    lines: list[str] = []
    steps: dict[int, int] = {}
    names: dict[int, str] = {}
    for index, spec in enumerate(specs):
        name, block_lines, n_steps = gen_block(spec, index, ctx, ns, machine, meta)
        lines.extend(block_lines)
        steps[spec.start] = n_steps
        names[spec.start] = name
    source = "\n".join(lines)
    code_obj = compile(source, f"<jit {meta.module}.{meta.name}>", "exec")
    exec(code_obj, ns)
    return {start: (ns[names[start]], steps[start]) for start in steps}
