"""Template-compiling JIT backend (implementation step I5).

Compiles verified procedures' basic blocks into host-Python closures
with meter-exact batched charge replay, direct-threaded block-to-block
dispatch, facts-driven call specialization, and interpreter
deoptimization at every point the static model cannot cover.  See
``docs/jit.md`` for the contract.
"""

from repro.jit.codecache import CodeCache
from repro.jit.deopt import EngineStats, JitRefusal
from repro.jit.engine import JitEngine, install_jit

__all__ = [
    "CodeCache",
    "EngineStats",
    "JitEngine",
    "JitRefusal",
    "install_jit",
]
