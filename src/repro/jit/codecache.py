"""The compiled-block cache, keyed on the code-space epoch.

Compiled blocks are host-side caches of code-derived state, exactly
like the decode cache and the :class:`~repro.mesa.linkage.LinkageCache`:
any code-space epoch bump (module relocation, procedure replacement,
segment growth) makes them stale.  The cache therefore subscribes to
the machine's shared epoch-bump hook (``Machine.on_epoch_bump``) — the
same single hook the linkage cache invalidates through — so the
code-swapping services in :mod:`repro.interp.services` can never flush
one cache and leave the other holding stale compiled code.

Entries are ``pc -> (block_fn, max_steps)`` pairs: the function runs
the block against a machine, and ``max_steps`` bounds how many modelled
steps it can commit (the engine uses it to respect step ceilings
exactly).
"""

from __future__ import annotations

from typing import Callable


class CodeCache:
    """Compiled basic blocks for one machine's code space."""

    def __init__(self, code) -> None:
        self.code = code
        #: pc -> (fn, max_steps); fn(machine) returns the next pc, or a
        #: negative sentinel (-1: re-check machine state; -2: deopt).
        self.blocks: dict[int, tuple[Callable, int]] = {}
        self.epoch = code.epoch
        #: False until the engine has (re)compiled for the current epoch.
        self.ready = False
        self.invalidations = 0
        #: Blocks compiled over the cache's life (cumulative).
        self.compiled_blocks = 0
        #: Procedures covered by the last compile.
        self.procedures = 0
        #: Host seconds spent generating + exec'ing block functions.
        self.compile_seconds = 0.0

    def invalidate(self) -> None:
        """Drop every compiled block (epoch-bump subscriber).

        Clears in place so the engine's hoisted ``blocks`` reference
        stays valid, mirroring ``Machine.invalidate_linkage``.
        """
        if self.ready or self.blocks:
            self.invalidations += 1
        self.blocks.clear()
        self.ready = False
        self.epoch = self.code.epoch

    def stats(self) -> dict:
        """Code-cache statistics for benchmark tables."""
        return {
            "blocks": len(self.blocks),
            "procedures": self.procedures,
            "compiled_blocks": self.compiled_blocks,
            "invalidations": self.invalidations,
            "compile_seconds": self.compile_seconds,
        }
