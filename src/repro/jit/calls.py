"""Specialized call/return fast paths for compiled blocks.

The interpreter's call path re-derives the same facts on every
execution of a site: linkage resolution (already memoized by
:class:`~repro.mesa.linkage.LinkageCache`), the callee's metadata, its
frame size, and the charge schedule of the whole sequence.  The JIT
seeds a per-``(site, gf)`` **cell** the first time a call executes
generically, capturing the resolved target plus the linkage cache's
recorded charge pairs; subsequent executions replay the charges in one
batched update and perform only the state transition (frame
allocation, linkage words, register swap) with the interpreter's exact
memory, traffic, and allocator effects.

Supported shapes (anything else falls back to the generic handler,
which *is* the interpreter's own dispatch handler, so correctness
never depends on this module):

* host linkage cache enabled (the cell replays its recorded pairs);
* no register banks (i1–i3; the i4 bank/renaming machinery keeps the
  generic path);
* COPY argument convention;
* the AV-heap or first-fit allocators.

Guards run before any charge or mutation: a guarded-out call simply
invokes the generic handler, producing the interpreter's bit-exact
behaviour including its charges.
"""

from __future__ import annotations

from repro.ifu.ifu import FetchStats, TransferKind
from repro.ifu.returnstack import ReturnStackEntry
from repro.interp.frames import FrameState
from repro.interp.machineconfig import ArgConvention
from repro.isa.opcodes import Op
from repro.machine.costs import Event
from repro.mesa.globalframe import GF_CODE_BASE


class CallSite:
    """One compiled call site: its static shape plus seeded cells."""

    __slots__ = ("next_pc", "handler", "inst", "cells", "mono", "generic",
                 "lfc", "kind", "fast", "kind_event")

    def __init__(self, op: Op, next_pc: int, handler, inst, mono: bool) -> None:
        self.next_pc = next_pc
        self.handler = handler
        self.inst = inst
        #: caller gf -> _Cell.  Monomorphic sites see one target (and
        #: one cell per module instance); polymorphic sites get the
        #: same per-gf guarded ladder with more rungs.
        self.cells: dict[int, _Cell] = {}
        self.mono = mono
        #: Permanently demoted: the resolved target has no compiled
        #: metadata (replaced procedure, trap context) — always generic.
        self.generic = False
        self.lfc = op is Op.LFC
        if op is Op.DFC:
            kind = TransferKind.DIRECT_CALL
        elif op is Op.SDFC:
            kind = TransferKind.SHORT_DIRECT_CALL
        elif op is Op.LFC:
            kind = TransferKind.LOCAL_CALL
        else:
            kind = TransferKind.EXTERNAL_CALL
        self.kind = kind
        self.fast = FetchStats.call_is_fast(kind)
        self.kind_event = (
            Event.FAST_TRANSFER if self.fast else Event.SLOW_TRANSFER
        )


class _Cell:
    """The seeded (site, gf) resolution: target + batched charges."""

    __slots__ = ("pairs", "cycles", "meta", "gf_address", "cb_final",
                 "first_instruction", "fsi", "frame_words")

    def __init__(self, pairs, cycles, meta, resolved) -> None:
        self.pairs = pairs
        self.cycles = cycles
        self.meta = meta
        self.gf_address = resolved.gf_address
        self.cb_final = resolved.code_base if resolved.code_base >= 0 else -1
        self.first_instruction = resolved.first_instruction
        self.fsi = resolved.fsi
        self.frame_words = meta.frame_words


def make_fast_call(machine, stats):
    """Build the fast-call closure for *machine*, or None if unsupported."""
    config = machine.config
    image = machine.image
    if machine.linkage_cache is None:
        return None
    if machine.banks is not None:
        return None
    if config.arg_convention is not ArgConvention.COPY:
        return None

    counter = machine.counter
    counts = counter.counts
    charge = counter.model.charge
    mr = charge(Event.MEMORY_READ)
    mw = charge(Event.MEMORY_WRITE)
    fetch = machine.fetch
    frames_name = image.frame_region.name
    memory = machine.memory
    words = memory._words
    traffic = memory.traffic
    frames = machine.frames
    entries_map = machine.linkage_cache._entries
    procs_by_entry = image.procs_by_entry
    rstack = machine.rstack
    gf_region = memory.region_of(next(iter(image.by_gf)))
    gf_name = gf_region.name if gf_region is not None else ""
    E_MR = Event.MEMORY_READ
    E_MW = Event.MEMORY_WRITE

    if image.first_fit is not None:
        heap = image.first_fit
        head_base = heap.head_base
        head_region = memory.region_of(head_base)
        head_name = head_region.name if head_region is not None else ""
        ff_stats = heap.stats

        def alloc(fsi: int, req: int) -> int:
            # First-fit's hot shape, replayed inline: the head block
            # satisfies the request without splitting (call-dense runs
            # free and re-allocate the same sizes, so the freed block
            # comes straight back).  Pre-checks are uncounted; any
            # other shape — empty list, a walk past the head, a split,
            # an attached allocator tracer — delegates to the heap,
            # which performs every counted reference itself.
            if req < 3:
                req = 3
            elif req % 2 == 0:
                req += 1
            block = words[head_base]
            if block != 0 and heap.tracer is None:
                size = words[block]
                if size >= req and size - req < 4:
                    counts[E_MR] += 3
                    counts[E_MW] += 1
                    counter.cycles += 3 * mr + mw
                    traffic[head_name] = traffic.get(head_name, 0) + 2
                    traffic[frames_name] = traffic.get(frames_name, 0) + 2
                    words[head_base] = words[block + 1]
                    pointer = block + 1
                    heap._live[pointer] = size
                    ff_stats.on_reuse(size + 1)
                    ff_stats.on_allocate(0, size, size + 1)
                    return pointer
            return heap.allocate(req)

    elif machine.fast_frames is not None:
        return None  # FAST_STACK without banks: stay generic
    elif image.av_heap is not None:
        av = image.av_heap
        av_base = av.av_base
        av_region = memory.region_of(av_base)
        av_name = av_region.name if av_region is not None else ""
        sizes = tuple(av.ladder.size_of(f) for f in range(len(av.ladder)))
        av_stats = av.stats

        def alloc(fsi: int, req: int) -> int:
            # The paper's three-reference fast path (section 5.3),
            # replayed inline.  Pre-checks are uncounted; an empty free
            # list, an oversize request, or an attached allocator
            # tracer delegates to the heap, which performs every
            # counted reference (and the trap protocol) itself.
            head = words[av_base + fsi]
            size = sizes[fsi]
            if head != 0 and req <= size and av.tracer is None:
                counts[E_MR] += 2
                counts[E_MW] += 1
                counter.cycles += 2 * mr + mw
                traffic[av_name] = traffic.get(av_name, 0) + 2
                traffic[frames_name] = traffic.get(frames_name, 0) + 1
                words[av_base + fsi] = words[head]
                av_stats.on_reuse(size + 1)
                av_stats.on_allocate(fsi, req, size + 1)
                av._live[head] = req
                return head
            return av.allocate(fsi, requested_words=req)

    else:
        return None

    def seed(m, site: CallSite, gf: int) -> int:
        """Run the call generically, then capture its cell."""
        site.handler(site.inst, site.next_pc)
        if site.generic or m.remote_stub is not None:
            return -1
        entry = entries_map.get((site.next_pc, gf))
        if entry is None:
            return -1
        resolved, pairs = entry
        meta = procs_by_entry.get(resolved.entry_address)
        if meta is None:
            site.generic = True
            stats.sites_demoted += 1
            return -1
        cycles = charge(site.kind_event)
        for event, times in pairs:
            cycles += charge(event) * times
        site.cells[gf] = _Cell(tuple(pairs), cycles, meta, resolved)
        stats.cells_built += 1
        return -1

    def lazy_cb_for_lfc(m, caller) -> None:
        """Replay ``_current_code_base``'s charged fetch (LFC prologue)."""
        counts[E_MR] += 1
        counter.cycles += mr
        traffic[gf_name] = traffic.get(gf_name, 0) + 1
        cb = words[m.gf + GF_CODE_BASE]
        m.cb = cb
        caller.code_base = cb

    if rstack is not None:
        rentries = rstack._entries
        rstats = rstack.stats
        rdepth = rstack.depth

        def fast_call(m, site: CallSite) -> int:
            gf = m.gf
            cell = site.cells.get(gf)
            if cell is None:
                return seed(m, site, gf)
            caller = m.frame
            if (
                caller is None
                or m.remote_stub is not None
                or len(rentries) >= rdepth
            ):
                site.handler(site.inst, site.next_pc)
                return -1
            if site.lfc and m.cb < 0:
                lazy_cb_for_lfc(m, caller)
            # Committed: replay resolution charges + the transfer event.
            for event, times in cell.pairs:
                counts[event] += times
            counts[site.kind_event] += 1
            counter.cycles += cell.cycles
            bucket = fetch.fast if site.fast else fetch.slow
            kind = site.kind
            bucket[kind] = bucket.get(kind, 0) + 1
            callee = FrameState(proc=cell.meta, gf=cell.gf_address, fsi=cell.fsi)
            if cell.cb_final >= 0:
                callee.code_base = cell.cb_final
            addr = alloc(cell.fsi, cell.frame_words)
            callee.address = addr
            counts[E_MW] += 1
            counter.cycles += mw
            traffic[frames_name] = traffic.get(frames_name, 0) + 1
            words[addr + 1] = cell.gf_address  # FRAME_GLOBAL
            frames.register(callee)
            rentries.append(
                ReturnStackEntry(frame=caller, pc=site.next_pc, cb=m.cb)
            )
            rstats.pushes += 1
            m.return_context = caller
            m.frame = callee
            m.gf = cell.gf_address
            m.cb = cell.cb_final
            m.pc = cell.first_instruction
            return cell.first_instruction

        return fast_call

    def fast_call(m, site: CallSite) -> int:
        gf = m.gf
        cell = site.cells.get(gf)
        if cell is None:
            return seed(m, site, gf)
        caller = m.frame
        if caller is None or m.remote_stub is not None:
            site.handler(site.inst, site.next_pc)
            return -1
        if site.lfc and m.cb < 0:
            lazy_cb_for_lfc(m, caller)
        # Committed: replay resolution charges + the transfer event.
        for event, times in cell.pairs:
            counts[event] += times
        counts[site.kind_event] += 1
        counter.cycles += cell.cycles
        bucket = fetch.fast if site.fast else fetch.slow
        kind = site.kind
        bucket[kind] = bucket.get(kind, 0) + 1
        callee = FrameState(proc=cell.meta, gf=cell.gf_address, fsi=cell.fsi)
        if cell.cb_final >= 0:
            callee.code_base = cell.cb_final
        addr = alloc(cell.fsi, cell.frame_words)
        callee.address = addr
        counts[E_MW] += 1
        counter.cycles += mw
        traffic[frames_name] = traffic.get(frames_name, 0) + 1
        words[addr + 1] = cell.gf_address  # FRAME_GLOBAL
        frames.register(callee)
        # The general scheme saves the caller's PC and writes the
        # return link now; CB is fetched lazily like _code_base_of.
        cb = m.cb
        if cb < 0:
            cb = caller.code_base
            if cb < 0:
                counts[E_MR] += 1
                counter.cycles += mr
                traffic[gf_name] = traffic.get(gf_name, 0) + 1
                cb = words[caller.gf + GF_CODE_BASE]
                caller.code_base = cb
        counts[E_MW] += 2
        counter.cycles += 2 * mw
        traffic[frames_name] = traffic.get(frames_name, 0) + 2
        words[caller.address + 2] = (site.next_pc - cb) & 65535  # FRAME_PC
        words[addr] = caller.address  # FRAME_RETURN_LINK
        m.return_context = caller
        m.frame = callee
        m.gf = cell.gf_address
        m.cb = cell.cb_final
        m.pc = cell.first_instruction
        return cell.first_instruction

    return fast_call


def make_fast_return(machine, stats):
    """Build the fast-return closure for *machine*, or None."""
    if machine.banks is not None:
        return None
    image = machine.image
    counter = machine.counter
    counts = counter.counts
    charge = counter.model.charge
    fetch = machine.fetch
    memory = machine.memory
    words = memory._words
    traffic = memory.traffic
    frames_name = image.frame_region.name
    by_address = machine.frames.by_address
    rstack = machine.rstack
    gf_region = memory.region_of(next(iter(image.by_gf)))
    gf_name = gf_region.name if gf_region is not None else ""
    K_RET = TransferKind.RETURN
    E_MR = Event.MEMORY_READ
    E_MW = Event.MEMORY_WRITE
    mr = charge(E_MR)
    mw = charge(E_MW)

    if image.first_fit is not None:
        heap = image.first_fit
        head_base = heap.head_base
        head_region = memory.region_of(head_base)
        head_name = head_region.name if head_region is not None else ""
        ff_stats = heap.stats

        def free(addr: int) -> None:
            # First-fit free is a counted three-reference list push;
            # replayed inline unless something unusual (double free, an
            # attached allocator tracer) needs the heap's own path.
            if addr in heap._live and heap.tracer is None:
                counts[E_MR] += 1
                counts[E_MW] += 2
                counter.cycles += mr + 2 * mw
                traffic[head_name] = traffic.get(head_name, 0) + 2
                traffic[frames_name] = traffic.get(frames_name, 0) + 1
                block = addr - 1
                words[addr] = words[head_base]
                words[head_base] = block
                released = heap._live.pop(addr)
                ff_stats.on_free(released, released + 1)
            else:
                heap.free(addr)

    elif machine.fast_frames is not None:
        return None
    elif image.av_heap is not None:
        av = image.av_heap
        av_base = av.av_base
        av_region = memory.region_of(av_base)
        av_name = av_region.name if av_region is not None else ""
        ladder_len = len(av.ladder)
        sizes = tuple(av.ladder.size_of(f) for f in range(ladder_len))
        av_stats = av.stats

        def free(addr: int) -> None:
            # The paper's four-reference free (section 5.3), replayed
            # inline; pre-checks are uncounted, and a double free, a
            # corrupt fsi header, or an attached allocator tracer
            # delegates to the heap, which performs every counted
            # reference itself.
            fsi = words[addr - 1] if addr in av._live else -1
            if 0 <= fsi < ladder_len and av.tracer is None:
                counts[E_MR] += 2
                counts[E_MW] += 2
                counter.cycles += 2 * (mr + mw)
                traffic[frames_name] = traffic.get(frames_name, 0) + 2
                traffic[av_name] = traffic.get(av_name, 0) + 2
                words[addr] = words[av_base + fsi]
                words[av_base + fsi] = addr
                av_stats.on_free(av._live.pop(addr), sizes[fsi] + 1)
            else:
                av.free(addr)
    else:
        return None

    if rstack is not None:
        rentries = rstack._entries
        rstats = rstack.stats
        E_FT = Event.FAST_TRANSFER
        ft = charge(E_FT)
        ffast = fetch.fast

        def fast_return(m) -> int:
            current = m.frame
            if not rentries or current.retained:
                m._op_return()
                return -1
            entry = rentries[-1]
            dest = entry.frame
            if dest.freed:
                m._op_return()  # raises DanglingFrame, identically
                return -1
            rentries.pop()
            rstats.hits += 1
            counts[E_FT] += 1
            counter.cycles += ft
            ffast[K_RET] = ffast.get(K_RET, 0) + 1
            # Free the (unretained) current frame.
            current.freed = True
            addr = current.address
            if addr is None:
                m.deferred_frames += 1
            else:
                by_address.pop(addr, None)
                free(addr)
            m.frame = dest
            m.pc = entry.pc
            m.gf = dest.gf
            m.cb = entry.cb if entry.cb >= 0 else dest.code_base
            m.return_context = None
            return entry.pc

        return fast_return

    E_ST = Event.SLOW_TRANSFER
    st_cost = charge(E_ST)
    fslow = fetch.slow

    def fast_return(m) -> int:
        current = m.frame
        if current.retained:
            m._op_return()
            return -1
        addr = current.address
        link = words[addr]
        if link == 0:
            m._op_return()  # the final return halts the machine
            return -1
        dest = by_address.get(link)
        if dest is None or dest is current or dest.freed or dest.stashed_stack:
            m._op_return()
            return -1
        fslow[K_RET] = fslow.get(K_RET, 0) + 1
        counts[E_ST] += 1
        counts[E_MR] += 1
        counter.cycles += st_cost + mr
        traffic[frames_name] = traffic.get(frames_name, 0) + 1
        current.freed = True
        by_address.pop(addr, None)
        free(addr)
        m.return_context = None
        # _resume_from_memory: PC, GF from the frame, CB from the gf.
        counts[E_MR] += 3
        counter.cycles += 3 * mr
        traffic[frames_name] = traffic.get(frames_name, 0) + 2
        traffic[gf_name] = traffic.get(gf_name, 0) + 1
        pc_rel = words[dest.address + 2]
        gf = words[dest.address + 1]
        cb = words[gf + GF_CODE_BASE]
        dest.code_base = cb
        m.frame = dest
        m.gf = gf
        m.cb = cb
        pc = cb + pc_rel
        m.pc = pc
        return pc

    return fast_return
