"""The JIT engine: compilation driver, block dispatch, deoptimization.

``install_jit(machine)`` verifies the image (or validates a supplied
``repro-facts/1`` artifact against it), compiles every verified
procedure's basic blocks, and installs itself on the machine.
``Machine.run`` then delegates to :meth:`JitEngine.run` whenever the
engine is *active* — no tracer, profiler, or transfer log attached —
and the engine direct-threads compiled blocks, falling back to
interpreter single-steps at every deoptimization point.  Meters,
memory, traffic, and statistics are bit-identical to the interpreter
at every observable boundary.
"""

from __future__ import annotations

import time

from repro.check.interproc import FACTS_SCHEMA, analyze_image, image_fingerprint
from repro.errors import (
    AllocationError,
    EvalStackOverflow,
    HeapExhausted,
    MemoryFault,
    StepLimitExceeded,
)
from repro.interp.traps import TrapKind, TrapTransfer
from repro.machine.costs import Event
from repro.machine.memory import MDS_WORDS

from repro.jit import templates as T
from repro.jit.calls import CallSite, make_fast_call, make_fast_return
from repro.jit.codecache import CodeCache
from repro.jit.compile import EVENT_VARS, CompilerContext, compile_procedure
from repro.jit.deopt import EngineStats, JitRefusal


class JitEngine:
    """Compiled-block execution for one machine."""

    def __init__(
        self,
        machine,
        facts: dict | None = None,
        hot_order: list[str] | None = None,
    ) -> None:
        self.machine = machine
        self.stats = EngineStats()
        #: Hot-first qualified procedure names (a profile's block order,
        #: e.g. from a repro-fdo/1 log): those procedures compile first,
        #: so the code cache's block dict is laid out hottest-first.
        self.hot_order = list(hot_order or ())
        image = machine.image

        if facts is not None:
            schema = facts.get("schema")
            if schema != FACTS_SCHEMA:
                raise JitRefusal(
                    f"facts schema {schema!r}; this build consumes "
                    f"{FACTS_SCHEMA!r}"
                )
            expected = image_fingerprint(image)
            supplied = facts.get("image_hash")
            if supplied != expected:
                raise JitRefusal(
                    f"facts image_hash {supplied!r} does not match this image "
                    f"({expected!r}); re-run `repro analyze --out`"
                )
            doc = facts
        else:
            analysis = analyze_image(image)
            if not analysis.ok:
                first = "; ".join(str(d) for d in analysis.report.errors[:3])
                raise JitRefusal(f"image fails static verification: {first}")
            doc = analysis.to_facts()
        self.facts = doc

        site_classes: dict = {}
        for proc in doc.get("procedures", ()):
            site_classes[(proc["module"], proc["name"])] = {
                site["offset"]: site["classification"]
                for site in proc.get("sites", ())
                if site.get("kind") == "call"
            }

        memory = machine.memory
        counter = machine.counter
        inline_memory = memory.size == MDS_WORDS and all(
            region.writable for region in memory.regions
        )
        if inline_memory:
            names = [""] * memory.size
            for region in memory.regions:
                names[region.base : region.limit] = [region.name] * region.size
        else:
            names = []

        def region_name(address: int) -> str:
            region = memory.region_of(address)
            return region.name if region is not None else ""

        module_gfs: dict = {}
        for (name, _inst), linked in image.instances.items():
            module_gfs.setdefault(name, []).append(linked.gf_address)

        fast_call = make_fast_call(machine, self.stats)
        fast_return = make_fast_return(machine, self.stats)

        self._ctx = CompilerContext(
            charge={event: counter.model.charge(event) for event in Event},
            depth=machine.stack.depth,
            banked=machine.banks is not None,
            bank_words=(
                machine.bankfile.bank_words if machine.banks is not None else 0
            ),
            tails=T.tail_ops(machine.config),
            inline_memory=inline_memory,
            frames_name=image.frame_region.name,
            region_name=region_name,
            module_gfs=module_gfs,
            site_classes=site_classes,
            fast_call=fast_call,
            fast_return=fast_return,
            make_site=CallSite,
        )
        self._ns = {
            "_ST": machine.stack,
            "_CTR": counter,
            "_CC": counter.counts,
            "_W": memory._words,
            "_TR": memory.traffic,
            "_NM": names,
            "_BKS": machine.banks,
            "_TT": TrapTransfer,
            "_ESO": EvalStackOverflow,
            "_HE": HeapExhausted,
            "_AMF": (AllocationError, MemoryFault),
            "_K_SO": TrapKind.STACK_OVERFLOW,
            "_K_RE": TrapKind.RESOURCE_EXHAUSTED,
            "_K_SF": TrapKind.STORAGE_FAULT,
            "_fc": fast_call,
            "_fr": fast_return,
        }
        for event, var in EVENT_VARS.items():
            self._ns[var] = event

        self.cache = CodeCache(machine.code)
        machine.on_epoch_bump(self.cache.invalidate)
        self._ensure_compiled()

    # -- compilation ----------------------------------------------------

    def _ensure_compiled(self) -> None:
        cache = self.cache
        if cache.ready:
            return
        begin = time.perf_counter()
        machine = self.machine
        image = machine.image
        raw = image.code.raw
        blocks: dict = {}
        procedures = 0
        worklist = []
        for (_name, inst), linked in sorted(image.instances.items()):
            if inst != 0:
                continue
            for procedure in linked.module.procedures:
                entry = linked.code_base + procedure.entry_offset
                meta = image.procs_by_entry.get(entry)
                if meta is None:
                    continue
                worklist.append((entry, procedure, meta))
        if self.hot_order:
            rank = {name: index for index, name in enumerate(self.hot_order)}
            cold = len(rank)
            worklist.sort(
                key=lambda item: rank.get(
                    f"{item[2].module}.{item[2].name}", cold
                )
            )
        for entry, procedure, meta in worklist:
            base = entry + 1
            body = raw[base : base + len(procedure.body)]
            out = compile_procedure(
                meta, body, base, machine, self._ctx, self._ns
            )
            if out:
                blocks.update(out)
                procedures += 1
        cache.blocks.clear()
        cache.blocks.update(blocks)
        cache.ready = True
        cache.epoch = machine.code.epoch
        cache.procedures = procedures
        cache.compiled_blocks += len(blocks)
        cache.compile_seconds += time.perf_counter() - begin

    # -- execution ------------------------------------------------------

    def active(self) -> bool:
        """Compiled execution is only legal with no observers attached."""
        m = self.machine
        return m.tracer is None and m.profile is None and m.transfer_log is None

    def run(self, max_steps: int | None = None):
        """Mirror ``Machine.run`` semantics over compiled blocks."""
        m = self.machine
        limit = m.config.step_limit
        ceiling = limit if max_steps is None else min(limit, m.steps + max_steps)
        cache = self.cache
        blocks = cache.blocks
        code = m.code
        stats = self.stats

        while not m.halted:
            if m.steps >= ceiling:
                raise StepLimitExceeded(max_steps if ceiling < limit else limit)
            if m._code_epoch != code.epoch:
                m.invalidate_linkage()  # notifies the code cache too
            if not cache.ready:
                self._ensure_compiled()
            if not self.active():
                # An observer was attached mid-run (a trap handler
                # enabling tracing): hand the rest to the interpreter.
                stats.observer_bailouts += 1
                if max_steps is None or ceiling >= limit:
                    return m.run(None)
                return m.run(ceiling - m.steps)
            pair = blocks.get(m.pc)
            if pair is None or m.steps + pair[1] > ceiling:
                self._interp_until_block(ceiling, max_steps, limit)
            else:
                fn = pair[0]
                result = fn(m)
                while result >= 0:
                    pair = blocks.get(result)
                    if pair is None or m.steps + pair[1] > ceiling:
                        break
                    result = pair[0](m)
                if result == -2:
                    stats.deopts += 1
                    self._interp_until_block(ceiling, max_steps, limit)
            if m.yield_requested:
                break
        return m.results()

    def _interp_until_block(self, ceiling: int, max_steps, limit: int) -> None:
        """Single-step the interpreter until a compiled block boundary.

        Always steps at least once (a deopt pc may itself be a block
        start — the entry guard that failed would just fail again).
        """
        m = self.machine
        blocks = self.cache.blocks
        stats = self.stats
        while True:
            if m.halted or m.yield_requested:
                return
            if m.steps >= ceiling:
                raise StepLimitExceeded(max_steps if ceiling < limit else limit)
            m.step()
            stats.deopt_steps += 1
            if m.pc in blocks:
                return

    def stats_dict(self) -> dict:
        """Cache + engine counters for benchmark tables."""
        out = self.cache.stats()
        out.update(self.stats.as_dict())
        out["hot_ordered"] = len(self.hot_order)
        return out


def install_jit(
    machine,
    facts: dict | None = None,
    hot_order: list[str] | None = None,
) -> JitEngine:
    """Verify, compile, and attach a JIT engine to *machine*.

    *hot_order* feeds a profile's hotness ranking into the compile
    queue (see ``docs/fdo.md``).  Raises :class:`JitRefusal` when the
    image fails static verification or the supplied facts artifact does
    not match it.
    """
    engine = JitEngine(machine, facts, hot_order=hot_order)
    machine.engine = engine
    return engine
