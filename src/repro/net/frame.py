"""Frame discipline for ``repro-wire/1`` byte streams.

Every transfer record crosses a socket as **one UTF-8 JSON document per
line** — the canonical encoding (:meth:`repro.net.wire.Message.encode`)
contains no raw newlines, so ``\\n`` is an unambiguous frame
terminator.  This module owns the two halves of that contract:

* :func:`encode_frame` — one encoded record to its on-wire bytes;
* :class:`FrameBuffer` — the reassembly side: feed it ``recv`` chunks
  in any fragmentation (a frame may arrive split across chunks, or
  many frames may arrive in one chunk) and it yields exactly the
  complete frames, keeping partial bytes buffered for the next chunk.

The failure mode this class exists to make loud: a peer closing the
connection mid-frame.  The bytes of a half-written transfer record
must never be silently dropped — :meth:`FrameBuffer.finish` raises
:class:`~repro.errors.TruncatedFrameError` whenever EOF arrives with
unterminated bytes buffered, and :attr:`FrameBuffer.buffered` lets a
transport's ``pending()`` account for a frame that is still in
reassembly.  Both the single-process :class:`~repro.net.transport.
SocketTransport` and the multi-process worker protocol
(:mod:`repro.net.worker`) ride on this one implementation.
"""

from __future__ import annotations

from repro.errors import TruncatedFrameError

#: Bytes per ``recv`` call — frames may be larger; the buffer reassembles.
RECV_BYTES = 65536


def encode_frame(text: str) -> bytes:
    """One encoded record -> its framed on-wire bytes."""
    return text.encode("utf-8") + b"\n"


class FrameBuffer:
    """Reassemble newline-framed records from an arbitrary chunk stream."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = b""

    @property
    def buffered(self) -> int:
        """Bytes of a partial frame awaiting their terminator."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> list[str]:
        """Absorb one ``recv`` chunk; return every now-complete frame."""
        self._buffer += chunk
        frames: list[str] = []
        while True:
            line, sep, rest = self._buffer.partition(b"\n")
            if not sep:
                break
            self._buffer = rest
            if line:  # tolerate keepalive blank lines
                frames.append(line.decode("utf-8"))
        return frames

    def finish(self) -> None:
        """The stream ended (EOF).  Loudly reject a truncated frame.

        A clean close lands exactly on a frame boundary; anything else
        means the peer died mid-write and the buffered prefix is an
        unrecoverable partial record — raising beats pretending the
        frame never existed.
        """
        if self._buffer:
            preview = self._buffer[:32].decode("utf-8", errors="replace")
            raise TruncatedFrameError(len(self._buffer), preview)
