"""Live migration: move a process between shards mid-flight.

The paper's thesis makes this almost inevitable: a process switch is
just another XFER, a Remote XFER already stretches one across shards,
and ``repro-snapshot/2`` already serializes a process blocked on a
remote reply.  Migration composes the two.  A process is **quiesced**
at a block boundary — between ``step()`` calls, exactly where the JIT
deoptimizes, so the same boundary exists under ``--engine jit`` — its
state is **extracted** into a ``repro-migrate/1`` slice on the source
shard, **adopted** on the target, and the source keeps *tombstones*:
a forwarding entry per outstanding request, so the reply (or a late
duplicate) still finds the process at its new home.

Two adoption modes, one slice schema:

``exclusive``
    The slice carries a full ``repro-snapshot/2`` of the source
    machine; the target — which must be **idle** (no live processes,
    nothing awaiting, nothing being served) — restores it wholesale,
    then surgically keeps its *own* meters (cycle counter, step count,
    memory traffic, scheduler stats, output) and prunes the process
    table to the one migrated process.  Because the adopted process
    resumes against a byte-identical store, heap, and bank state, every
    charge it pays on the target is exactly the charge it would have
    paid on the source: **cluster-aggregate meters are bit-identical**
    to the unmigrated run (the differential suite pins this), provided
    the vacated source takes no new allocation-visible work of its own
    before the migrated process would have finished there.

``shared``
    Only the process's frame chain moves: each frame block is carved
    from the target's arena through the uncounted loader interface
    (:meth:`repro.alloc.avheap.AVHeap.host_carve`), return links are
    rewritten to the relocated addresses, and the process record joins
    the target's table alongside whatever else it is running.  This is
    the mode the autoscaler uses on busy shards.  It is **results-
    exact** but makes no meter-identity promise, requires the AV frame
    heap (I2-I4; first-fit I1 must use exclusive), refuses flagged
    frames (a pointer to a local would dangle), and assumes the chain
    is self-contained — the serving corpus's pure procedures are; code
    that communicates through mutated module globals is not.

Host work throughout is **uncounted**: the machines never execute the
migration, so no modelled meter moves on either side — the paper's
machine has no MIGRATE instruction, and we do not invent one.
"""

from __future__ import annotations

from repro.errors import NetError
from repro.faults.snapshot import capture, restore
from repro.interp.frames import FRAME_RETURN_LINK, FrameState
from repro.interp.processes import Process, ProcessStatus
from repro.net import wire
from repro.net.shard import Shard

#: The slice schema this module writes and the only one it adopts.
MIGRATE_SCHEMA = "repro-migrate/1"

#: Process states a migration can quiesce: READY (held out of the
#: rotation) or BLOCKED on a remote reply.  RUNNING is reached by
#: holding first (:meth:`repro.interp.processes.Scheduler.hold`) and
#: letting the scheduler force the process out at its step boundary.
_MIGRATABLE = (ProcessStatus.READY, ProcessStatus.BLOCKED)


class MigrateError(NetError):
    """A process cannot be extracted or adopted in the current state."""


# ---------------------------------------------------------------------------
# Extract (source side)
# ---------------------------------------------------------------------------


def extract(shard: Shard, process: Process, dst: int, mode: str = "exclusive") -> dict:
    """Slice *process* out of *shard* for adoption on shard *dst*.

    The shard must be quiescent (``scheduler.current is None``) and the
    process READY or BLOCKED — a block boundary.  Installs the source-
    side tombstones (reply forward for the outstanding request, call
    forwards for requests this process is serving) and detaches the
    net bookkeeping, but leaves the process in the table: call
    :meth:`Shard.remove_process` once adoption has succeeded, so a
    failed adoption can roll back by re-attaching.
    """
    scheduler = shard.scheduler
    if scheduler.current is not None:
        raise MigrateError(
            "cannot extract mid-slice: quiesce the process at a block "
            "boundary first (hold it and pump to quiescence)"
        )
    if process.status not in _MIGRATABLE:
        raise MigrateError(
            f"cannot extract p{process.pid} ({process.status.value}): only "
            "READY or BLOCKED processes migrate"
        )
    if mode not in ("exclusive", "shared"):
        raise MigrateError(f"unknown migration mode {mode!r}")
    if dst == shard.id:
        raise MigrateError(f"migration target is the source shard {dst}")

    # Build the refusal-capable payload FIRST: _slice_frames (and in
    # principle capture) may refuse, and a refusal must leave the shard
    # untouched — _detach_net installs tombstones and detaches the net
    # bookkeeping, which there is no path to roll back from here.
    slice_: dict = {
        "schema": MIGRATE_SCHEMA,
        "mode": mode,
        "source": shard.id,
        "pid": process.pid,
        "span": shard._spans.get(process.pid),
    }
    if mode == "exclusive":
        slice_["snapshot"] = capture(shard.machine, scheduler)
    else:
        slice_["config"] = wire.config_token(shard.machine.config)
        slice_["frames"] = _slice_frames(shard, process)
        slice_["process"] = _process_record(process)
    slice_["net"] = _detach_net(shard, process, dst)

    tracer = shard.machine.tracer
    if tracer is not None:
        tracer.emit(
            "net.migrate.extract",
            f"p{process.pid}",
            pid=process.pid,
            proc=f"{process.module}.{process.proc}",
            shard=shard.id,
            dst=dst,
            mode=mode,
            status=process.status.value,
        )
    return slice_


def _detach_net(shard: Shard, process: Process, dst: int) -> dict:
    """Move the process's net bookkeeping into the slice; tombstone here."""
    net: dict = {"served": []}
    # The outstanding request, if one is already on the wire.  (A
    # BLOCKED process whose call has not been flushed yet needs nothing:
    # the adopter's own flush will send it under a fresh id.)
    if process.remote is not None and "id" in process.remote:
        key = None
        entry = None
        for candidate, record in shard._awaiting.items():
            if record["process"] is process:
                key, entry = candidate, record
                break
        if entry is not None:
            del shard._awaiting[key]
            origin = key[1] if isinstance(key, tuple) else shard.id
            net["awaiting"] = {
                "origin": origin,
                "id": process.remote["id"],
                "message": entry["message"].encode(),
                "sends": entry["sends"],
                # The key the tombstone was installed under *here* — a
                # bare id for a first migration, an adopt triple for a
                # chain.  JSON-safe form; the coordinator needs it to
                # retire this shard's forward once the reply lands.
                "source_key": list(key) if isinstance(key, tuple) else key,
            }
            shard.install_forward(key, dst)
    # Requests this process is serving: the reply must come from the
    # new home, and retries (placement-routed here) must bounce.
    for key, served in list(shard._served.items()):
        if served is process:
            net["served"].append([key[0], key[1]])
            del shard._served[key]
            shard._call_forwards[key] = dst
    return net


def _slice_frames(shard: Shard, process: Process) -> list[dict]:
    """Serialize the process's frame chain, top frame first."""
    machine = shard.machine
    heap = machine.image.av_heap
    if heap is None:
        raise MigrateError(
            "shared adoption needs the AV frame heap (I2-I4); "
            "use exclusive mode on first-fit configurations"
        )
    memory = machine.memory
    records: list[dict] = []
    frame = process.frame
    while True:
        if frame is None or frame.address is None:
            raise MigrateError(
                f"p{process.pid} has an unmaterialized frame in its chain; "
                "quiesce at a block boundary before extracting"
            )
        if frame.flagged:
            raise MigrateError(
                f"frame {frame.proc.qualified_name} is flagged (a pointer "
                "to a local exists); shared relocation would dangle it"
            )
        granted_fsi = heap.fsi_of(frame.address)
        class_words = heap.ladder.size_of(granted_fsi)
        records.append(
            {
                "entry_address": frame.proc.entry_address,
                "address": frame.address,
                "gf": frame.gf,
                "fsi": frame.fsi,
                "granted_fsi": granted_fsi,
                "requested": heap._live[frame.address],
                "code_base": frame.code_base,
                "retained": frame.retained,
                "stashed_stack": list(frame.stashed_stack),
                "words": [
                    memory.peek(frame.address + offset)
                    for offset in range(class_words)
                ],
            }
        )
        link = memory.peek(frame.address + FRAME_RETURN_LINK)
        if link == 0:
            return records
        caller = machine.frames.at(link)
        if caller is None:
            raise MigrateError(
                f"return link {link:#x} has no frame state; the chain is "
                "not self-contained"
            )
        frame = caller


def _process_record(process: Process) -> dict:
    return {
        "module": process.module,
        "proc": process.proc,
        "args": list(process.args),
        "status": process.status.value,
        "started": process.started,
        "pc": process.pc,
        "gf": process.gf,
        "cb": process.cb,
        "stack": list(process.stack),
        "results": list(process.results),
        "steps": process.steps,
        "traps": process.traps,
        "fault": process.fault,
        "remote": process.remote,
    }


# ---------------------------------------------------------------------------
# Adopt (target side)
# ---------------------------------------------------------------------------


def adopt(shard: Shard, slice_: dict, now: float = 0) -> Process:
    """Install a migrated process from *slice_* onto *shard*.

    *now* seeds the adopted request's retry clock (pump ticks in the
    in-process cluster, ``time.monotonic()`` in a worker): the adopter
    grants the outstanding request a fresh timeout window rather than
    trying to reconcile two shards' clocks.
    """
    schema = slice_.get("schema")
    if schema != MIGRATE_SCHEMA:
        raise MigrateError(
            f"unknown migration schema {schema!r} (this build speaks "
            f"{MIGRATE_SCHEMA!r})"
        )
    mode = slice_["mode"]
    if mode == "exclusive":
        process = _adopt_exclusive(shard, slice_)
    elif mode == "shared":
        process = _adopt_shared(shard, slice_)
    else:
        raise MigrateError(f"unknown migration mode {mode!r}")

    span = slice_.get("span")
    if span is not None:
        shard._spans[process.pid] = span
    net = slice_.get("net", {})
    awaiting = net.get("awaiting")
    if awaiting is not None:
        key = adopted_key(awaiting)
        skey = source_key(awaiting)
        if skey in shard._forwards:
            # The process came home (a refused adoption adopted it back
            # onto its own source): serve the reply here instead of
            # bouncing it, and key the entry under the original key so
            # an un-forwarded reply still resolves it.
            shard.retire_forward(skey)
            key = skey
        shard._awaiting[key] = {
            "process": process,
            "message": wire.decode(awaiting["message"]),
            "sent": now,
            "sends": awaiting["sends"],
        }
    for src, request_id in net.get("served", []):
        shard._served[(src, request_id)] = process

    tracer = shard.machine.tracer
    if tracer is not None:
        tracer.emit(
            "net.migrate.adopt",
            f"p{process.pid}",
            pid=process.pid,
            proc=f"{process.module}.{process.proc}",
            shard=shard.id,
            source=slice_["source"],
            mode=mode,
            status=process.status.value,
        )
    return process


def adopted_key(awaiting: dict) -> tuple:
    """The ``_awaiting`` key an adopted outstanding request lives under."""
    return ("adopt", awaiting["origin"], awaiting["id"])


def source_key(awaiting: dict):
    """The key the source shard's reply forward was installed under."""
    key = awaiting["source_key"]
    return tuple(key) if isinstance(key, list) else key


def reattach(shard: Shard, process: Process, slice_: dict, now: float = 0) -> None:
    """Undo :func:`extract` after a refused adoption.

    ``extract`` leaves the process in the source's table precisely so a
    refusal downstream can roll back: restore the net bookkeeping under
    its original keys and retire the tombstones, and the migration
    never happened.  *now* reseeds the outstanding request's retry
    clock, same as :func:`adopt`.
    """
    net = slice_.get("net", {})
    awaiting = net.get("awaiting")
    if awaiting is not None:
        key = source_key(awaiting)
        shard.retire_forward(key)
        shard._awaiting[key] = {
            "process": process,
            "message": wire.decode(awaiting["message"]),
            "sent": now,
            "sends": awaiting["sends"],
        }
    for src, request_id in net.get("served", []):
        key = (src, request_id)
        shard._call_forwards.pop(key, None)
        shard._served[key] = process


def _adopt_exclusive(shard: Shard, slice_: dict) -> Process:
    machine = shard.machine
    scheduler = shard.scheduler
    if scheduler.current is not None:
        raise MigrateError("cannot adopt mid-slice on the target")
    for process in scheduler.processes:
        if process.status not in (ProcessStatus.DONE, ProcessStatus.FAULTED):
            raise MigrateError(
                f"exclusive adoption needs an idle target: p{process.pid} "
                f"is {process.status.value}"
            )
    if shard._served or shard._awaiting:
        raise MigrateError(
            "exclusive adoption needs an idle target: requests are in flight"
        )

    # The transplant replaces the machine's whole state vector; keep the
    # target's own meters so per-shard charges stay physical and the
    # cluster aggregate matches the unmigrated run exactly.
    counter = machine.counter
    saved_counts = dict(counter.counts)
    saved_cycles = counter.cycles
    saved_steps = machine.steps
    saved_output = list(machine.output)
    saved_traffic = dict(machine.memory.traffic)
    stats = scheduler.stats
    saved_stats = (
        stats.switches,
        stats.preemptions,
        stats.yields,
        stats.quarantines,
        stats.blocks,
    )

    restore(machine, slice_["snapshot"], scheduler)

    counter.counts.clear()
    counter.counts.update(saved_counts)
    counter.cycles = saved_cycles
    machine.steps = saved_steps
    machine.output = saved_output
    machine.memory.traffic.clear()
    machine.memory.traffic.update(saved_traffic)
    stats = scheduler.stats
    (
        stats.switches,
        stats.preemptions,
        stats.yields,
        stats.quarantines,
        stats.blocks,
    ) = saved_stats

    adopted = None
    for process in scheduler.processes:
        if process.pid == slice_["pid"]:
            adopted = process
            break
    if adopted is None:
        raise MigrateError(
            f"slice names pid {slice_['pid']} but the snapshot's process "
            "table has no such process"
        )
    if adopted.status not in _MIGRATABLE:
        raise MigrateError(
            f"slice pid {adopted.pid} is {adopted.status.value} in the "
            "snapshot; only READY or BLOCKED processes migrate"
        )
    adopted.pid = 0
    scheduler.processes = [adopted]
    scheduler._rotor = 0
    scheduler.held.clear()
    shard._spans.clear()
    return adopted


def _adopt_shared(shard: Shard, slice_: dict) -> Process:
    machine = shard.machine
    heap = machine.image.av_heap
    if heap is None:
        raise MigrateError(
            "shared adoption needs the AV frame heap (I2-I4); "
            "use exclusive mode on first-fit configurations"
        )
    if wire.config_token(machine.config) != slice_["config"]:
        raise MigrateError(
            "configuration mismatch: migration requires identical machine "
            "configurations (the hello invariant)"
        )
    memory = machine.memory
    records = slice_["frames"]
    mapping: dict[int, int] = {}
    for record in records:
        mapping[record["address"]] = heap.host_carve(
            record["granted_fsi"], requested_words=record["requested"]
        )
    states: list[FrameState] = []
    for record in records:
        pointer = mapping[record["address"]]
        words = record["words"]
        for offset, word in enumerate(words):
            memory.poke(pointer + offset, word)
        link = words[FRAME_RETURN_LINK]
        if link:
            relocated = mapping.get(link)
            if relocated is None:
                raise MigrateError(
                    f"return link {link:#x} escapes the migrated chain"
                )
            memory.poke(pointer + FRAME_RETURN_LINK, relocated)
        meta = machine.image.procs_by_entry.get(record["entry_address"])
        if meta is None:
            raise MigrateError(
                f"no procedure at entry {record['entry_address']:#x} in the "
                "target image — not the same program"
            )
        frame = FrameState(
            proc=meta,
            gf=record["gf"],
            fsi=record["fsi"],
            address=pointer,
            code_base=record["code_base"],
            flagged=False,
            freed=False,
            retained=record["retained"],
            stashed_stack=tuple(record["stashed_stack"]),
        )
        machine.frames.register(frame)
        states.append(frame)

    record = slice_["process"]
    process = Process(
        pid=len(shard.scheduler.processes),
        module=record["module"],
        proc=record["proc"],
        args=tuple(record["args"]),
        status=ProcessStatus(record["status"]),
        started=record["started"],
        frame=states[0],
        pc=record["pc"],
        gf=record["gf"],
        cb=record["cb"],
        stack=tuple(record["stack"]),
        results=list(record["results"]),
        steps=record["steps"],
        traps=record["traps"],
        fault=record["fault"],
        remote=record["remote"],
    )
    shard.scheduler.processes.append(process)
    return process


# ---------------------------------------------------------------------------
# Cluster-aggregate meters (the migration invariant)
# ---------------------------------------------------------------------------


def aggregate_meters(meters: dict[int, dict]) -> dict:
    """Sum per-shard meters into the cluster-level migration invariant.

    Migration moves *where* charges land, never *how many* there are:
    the per-shard split shifts with the process, but the sums over the
    cluster — event counts, cycles, steps, switches, blocks — are
    bit-identical to the unmigrated run.  This is the dict the
    differential suite compares.
    """
    totals: dict[str, int] = {}
    aggregate = {"steps": 0, "switches": 0, "blocks": 0}
    for entry in meters.values():
        for name, value in entry["counter"].items():
            totals[name] = totals.get(name, 0) + value
        aggregate["steps"] += entry["steps"]
        aggregate["switches"] += entry["switches"]
        aggregate["blocks"] += entry["blocks"]
    aggregate["counter"] = dict(sorted(totals.items()))
    return aggregate
