"""repro.net — Remote XFER: multi-machine RPC and serving.

The paper's XFER primitive stretched across machine boundaries.  A
:class:`Cluster` holds N :class:`Shard` machines (each linking the same
program image) in one host process; a :class:`~repro.net.placement.
Placement` routes each module to a home shard; a call into a module
homed elsewhere is intercepted by the caller shard's **stub**, travels
as a versioned ``repro-wire/1`` transfer record over a
:class:`~repro.net.transport.InProcessTransport` (or the
:class:`~repro.net.transport.SocketTransport` behind the same
interface), and executes on the home shard as an ordinary root
activation — the callee sees a plain XFER with its exact modelled
semantics and charges.

Layered on top: the serving path (:mod:`repro.net.serve` — batching,
bounded run queues with backpressure, retry with backoff, latency
percentiles), transport fault injection (:class:`~repro.net.transport.
NetFaultPolicy` interpreting ``net_*`` FaultPlan actions), the net
chaos sweep (:mod:`repro.net.chaos`), cross-shard trace stitching
(:mod:`repro.net.stitch`), and **process mode** (:mod:`repro.net.
procserve` / :mod:`repro.net.worker` — each shard a real OS process
speaking the same ``repro-wire/1`` protocol over framed sockets behind
an asyncio front door, managed over the separate ``repro-ctl/1``
control schema).

Metering discipline, which the conformance tests pin: the stub touches
only uncounted state paths; a remote call costs the caller exactly one
ordinary modelled process switch; all wire cost lives on the
transport's explicit meters, never on a machine's cycle counter; and
callee-side per-activation meter deltas are bit-identical to a local
machine replaying the same activations.
"""

from repro.net.balance import Balancer, BalancerStats
from repro.net.cluster import Cluster, Ticket, build_shard_machine
from repro.net.colocate import PINS_SCHEMA, PlacementPlan, load_pins, plan_pins
from repro.net.ctl import CTL_SCHEMA, Control
from repro.net.frame import FrameBuffer, encode_frame
from repro.net.migrate import (
    MIGRATE_SCHEMA,
    MigrateError,
    adopt,
    aggregate_meters,
    extract,
    reattach,
)
from repro.net.placement import HashRing, Placement
from repro.net.procserve import (
    FRONT_DOOR,
    ProcessCluster,
    ProcessServeReport,
    ProcessServer,
    check_census,
    run_process_serve,
)
from repro.net.serve import (
    SERVICE_SOURCES,
    Request,
    Server,
    ServeReport,
    generate_skewed_workload,
    generate_workload,
    run_serve,
)
from repro.net.shard import Shard
from repro.net.stitch import Span, render, stitch
from repro.net.transport import (
    InProcessTransport,
    NetFaultPolicy,
    SocketTransport,
    TransportStats,
)
from repro.net.wire import WIRE_SCHEMA, Message, decode, wire_words

__all__ = [
    "Balancer",
    "BalancerStats",
    "CTL_SCHEMA",
    "Cluster",
    "Control",
    "FRONT_DOOR",
    "FrameBuffer",
    "HashRing",
    "InProcessTransport",
    "MIGRATE_SCHEMA",
    "Message",
    "MigrateError",
    "NetFaultPolicy",
    "PINS_SCHEMA",
    "Placement",
    "PlacementPlan",
    "ProcessCluster",
    "ProcessServeReport",
    "ProcessServer",
    "Request",
    "SERVICE_SOURCES",
    "ServeReport",
    "Server",
    "Shard",
    "SocketTransport",
    "Span",
    "Ticket",
    "TransportStats",
    "WIRE_SCHEMA",
    "adopt",
    "aggregate_meters",
    "build_shard_machine",
    "check_census",
    "decode",
    "encode_frame",
    "extract",
    "generate_skewed_workload",
    "generate_workload",
    "load_pins",
    "plan_pins",
    "reattach",
    "render",
    "run_process_serve",
    "run_serve",
    "stitch",
    "wire_words",
]
