"""The Remote XFER wire format: versioned transfer records.

A remote call is the paper's transfer record (section 5.2) stretched
across a machine boundary: the argument words that a local XFER would
leave on the evaluation stack travel as a ``call`` message, and the
result words come back as a ``reply``.  Every message is one versioned,
JSON-ready record — schema ``repro-wire/1`` — so a transport can carry
it in-process (a queue of :class:`Message` values) or over a byte
stream (``encode``/``decode`` round-trip, used by the socket
transport), and a chaos report can quote it verbatim.

The ``hello`` handshake reuses the snapshot codec's configuration
token (:func:`repro.faults.snapshot._config_token`): two shards may
exchange Remote XFERs only when their machine configurations — and
therefore their modelled meters — are identical, the same compatibility
rule ``repro-snapshot/2`` enforces for restore.

Wire cost is metered **explicitly and separately** from the machines:
:func:`wire_words` counts the 16-bit words of a message's encoded form,
and the transport accumulates them in the net metrics.  No machine
:class:`~repro.machine.costs.CycleCounter` is ever charged for wire
traffic — the conformance suite relies on callee-side meters being
bit-identical to a local run of the same activations.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import WireError
from repro.faults.snapshot import _config_token as config_token

#: The schema this module writes and the only one it accepts.
WIRE_SCHEMA = "repro-wire/1"

#: Message kinds and the body fields each must carry.
_REQUIRED_BODY: dict[str, tuple[str, ...]] = {
    "hello": ("config", "modules"),
    "call": ("id", "span", "parent", "module", "proc", "args"),
    "reply": ("id", "span", "results"),
    "error": ("id", "span", "trap", "pc", "proc", "detail"),
}


@dataclass(frozen=True)
class Message:
    """One wire record: a kind, a source/destination shard, and a body."""

    kind: str
    src: int
    dst: int
    body: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        required = _REQUIRED_BODY.get(self.kind)
        if required is None:
            raise WireError(
                f"unknown message kind {self.kind!r} "
                f"(known: {', '.join(sorted(_REQUIRED_BODY))})"
            )
        missing = [name for name in required if name not in self.body]
        if missing:
            raise WireError(
                f"{self.kind} message missing body field(s): {', '.join(missing)}"
            )

    def encode(self) -> str:
        """The canonical JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(
            {
                "schema": WIRE_SCHEMA,
                "kind": self.kind,
                "src": self.src,
                "dst": self.dst,
                "body": self.body,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def wire_words(self) -> int:
        """Size of the encoded record in 16-bit machine words."""
        return wire_words(self.encode())

    def describe(self) -> str:
        """A one-line human label (for traces and reports)."""
        body = self.body
        if self.kind == "call":
            return f"call#{body['id']} {body['module']}.{body['proc']}"
        if self.kind == "reply":
            return f"reply#{body['id']}"
        if self.kind == "error":
            return f"error#{body['id']} {body['trap']}"
        return self.kind


def wire_words(encoded: str) -> int:
    """16-bit words needed to carry *encoded* (UTF-8 bytes, rounded up)."""
    return (len(encoded.encode("utf-8")) + 1) // 2


def decode_doc(doc: dict) -> Message:
    """Validate one already-parsed wire document (shared with the
    worker protocol, which inspects the schema field before choosing a
    decoder and must not parse the JSON twice)."""
    schema = doc.get("schema")
    if schema != WIRE_SCHEMA:
        raise WireError(
            f"unknown wire schema {schema!r} (this build speaks {WIRE_SCHEMA!r})"
        )
    for name in ("kind", "src", "dst", "body"):
        if name not in doc:
            raise WireError(f"wire record missing {name!r}")
    return Message(
        kind=doc["kind"], src=doc["src"], dst=doc["dst"], body=doc["body"]
    )


def decode(text: str) -> Message:
    """Parse and validate one encoded wire record."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as fault:
        raise WireError(f"wire record is not JSON: {fault}") from fault
    if not isinstance(doc, dict):
        raise WireError("wire record must be a JSON object")
    return decode_doc(doc)


# -- constructors ------------------------------------------------------------


def hello(
    src: int, dst: int, config, modules: list[str], epoch: int | None = None
) -> Message:
    """The handshake: my configuration token and module list.

    *epoch* is the sender's placement epoch (see
    :class:`~repro.net.placement.Placement`); process-mode workers send
    it so the front door can refuse a worker whose pin map has drifted
    from the cluster's.  ``None`` omits the field — required body
    validation ignores extras, so old and new speakers interoperate.
    """
    body = {"config": config_token(config), "modules": sorted(modules)}
    if epoch is not None:
        body["epoch"] = epoch
    return Message(kind="hello", src=src, dst=dst, body=body)


def call(
    src: int,
    dst: int,
    request_id: int,
    span: str,
    parent: str | None,
    module: str,
    proc: str,
    args: list[int],
) -> Message:
    """A Remote XFER: the marshalled argument record."""
    return Message(
        kind="call",
        src=src,
        dst=dst,
        body={
            "id": request_id,
            "span": span,
            "parent": parent,
            "module": module,
            "proc": proc,
            "args": list(args),
        },
    )


def reply(src: int, dst: int, request_id: int, span: str, results: list[int]) -> Message:
    """The return transfer: the marshalled result record."""
    return Message(
        kind="reply",
        src=src,
        dst=dst,
        body={"id": request_id, "span": span, "results": list(results)},
    )


def error(
    src: int,
    dst: int,
    request_id: int,
    span: str,
    trap: str,
    pc: int,
    proc: str,
    detail: str,
) -> Message:
    """A remote fault: the callee's trap diagnostics, marshalled."""
    return Message(
        kind="error",
        src=src,
        dst=dst,
        body={
            "id": request_id,
            "span": span,
            "trap": trap,
            "pc": pc,
            "proc": proc,
            "detail": detail,
        },
    )
