"""One shard as an operating-system process.

This module is the body of a worker spawned by the
:class:`~repro.net.procserve.ProcessCluster`: it builds an ordinary
:class:`~repro.net.shard.Shard` (compiling and linking the same image
every other worker links — the deterministic link the hello handshake
verifies), connects back to the asyncio front door, and pumps a small
synchronous loop:

1. read framed records off the socket (:class:`~repro.net.frame.
   FrameBuffer` reassembles frames split across ``recv`` chunks and
   refuses truncated ones);
2. dispatch each by schema — ``repro-wire/1`` records go to the
   shard's ordinary ``deliver`` path (calls spawn root activations,
   replies unblock callers, dedup and the reply cache work untouched),
   ``repro-ctl/1`` records are management (meters, trace events,
   snapshot/restore, status, shutdown);
3. run whatever is runnable (``shard.step``), retry overdue remote
   calls, and flush the outbox back to the front door, which routes
   shard-to-shard records to their destination worker.

The tick domain is the only thing that changes between the in-process
pump and a worker: the cooperative pump counts rounds, a worker counts
``time.monotonic()`` seconds.  ``Shard.retry`` only ever compares
differences against a timeout, so the same stub/skeleton code runs in
both worlds — and the modelled meters cannot tell them apart, which is
the conformance claim process mode inherits.

A worker that dies on an unexpected exception sends a ``worker_error``
control record (best effort) before exiting non-zero, so the front
door can report *why* a shard vanished instead of just seeing EOF.
"""

from __future__ import annotations

import json
import socket
import time

from repro.errors import ReproError
from repro.interp.processes import ProcessStatus
from repro.net import ctl, wire
from repro.net.cluster import build_shard_machine
from repro.net.frame import RECV_BYTES, FrameBuffer, encode_frame
from repro.net.placement import Placement
from repro.net.shard import Shard

#: The front door's pseudo-shard id: root submissions arrive as wire
#: ``call`` records from this source, and replies route back to it.
FRONT_DOOR = -1

#: Seconds a worker blocks in ``recv`` before re-checking timers.
POLL_SECONDS = 0.02

#: Seconds a worker keeps retrying its initial connect (the front door
#: may still be binding its listener when the process starts).
CONNECT_WINDOW = 10.0


def connect(address: tuple) -> socket.socket:
    """Dial the front door: ``("unix", path)`` or ``("tcp", host, port)``."""
    deadline = time.monotonic() + CONNECT_WINDOW
    while True:
        try:
            if address[0] == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.connect(address[1])
            else:
                sock = socket.create_connection((address[1], address[2]))
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class Worker:
    """The synchronous pump around one shard (testable without a fork)."""

    def __init__(self, sock: socket.socket, spec: dict) -> None:
        self.sock = sock
        self.spec = spec
        self.id = spec["shard_id"]
        self.timeout_s = spec.get("timeout_s", 1.0)
        self.max_retries = spec.get("max_retries", 3)
        if spec.get("self_homed"):
            # Every module homed here: the stub never fires, each root
            # activation runs start-to-finish locally.  This is the
            # embarrassingly-parallel serving route ("direct"), where
            # the front door spreads whole requests across workers
            # instead of splitting one request across them.
            placement = Placement([self.id])
        else:
            placement = Placement(
                list(range(spec["shards"])),
                pins=spec.get("pins"),
                vnodes=spec.get("vnodes", 64),
            )
        # The placement epoch the front door forked us with; sent back in
        # the hello so the handshake can refuse a worker whose pin map
        # drifted from the cluster's (the silently-ignored-repin bug).
        placement.epoch = spec.get("placement_epoch", 0)
        self.shard = Shard(
            self.id,
            build_shard_machine(
                list(spec["sources"]), spec["config"], tuple(spec["entry"])
            ),
            placement,
            record=spec.get("record", False),
            quantum=spec.get("quantum", 0),
        )
        self._framer = FrameBuffer()
        self._running = True

    # -- frame IO ----------------------------------------------------------

    def _send_text(self, text: str) -> None:
        self.sock.sendall(encode_frame(text))

    def _flush_outbox(self) -> None:
        messages = self.shard.drain_outbox()
        if messages:
            # One syscall for the whole batch: the front door's framer
            # splits them back apart regardless of packetization.
            self.sock.sendall(
                b"".join(encode_frame(m.encode()) for m in messages)
            )

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, frame: str) -> None:
        doc = json.loads(frame)
        schema = doc.get("schema") if isinstance(doc, dict) else None
        if schema == wire.WIRE_SCHEMA:
            self.shard.deliver([wire.decode_doc(doc)])
        elif schema == ctl.CTL_SCHEMA:
            self._control(ctl.decode_doc(doc))
        else:
            raise ReproError(f"worker {self.id}: unroutable frame schema {schema!r}")

    def _control(self, record: ctl.Control) -> None:
        if record.kind == "meters":
            reply = record.reply("meters_reply", {"meters": self.meters()})
        elif record.kind == "events":
            events = []
            if self.shard.recorder is not None:
                events = [event.as_dict() for event in self.shard.recorder.events]
            reply = record.reply("events_reply", {"events": events})
        elif record.kind == "snapshot":
            from repro.faults.snapshot import capture

            state = capture(self.shard.machine, self.shard.scheduler)
            reply = record.reply("snapshot_reply", {"state": state})
        elif record.kind == "restore":
            from repro.faults.snapshot import restore

            restore(self.shard.machine, record.body["state"], self.shard.scheduler)
            reply = record.reply("restore_reply")
        elif record.kind == "status":
            reply = record.reply("status_reply", {"processes": self.status()})
        elif record.kind == "extract":
            reply = record.reply("extract_reply", self._extract(record.body))
        elif record.kind == "adopt":
            reply = record.reply("adopt_reply", self._adopt(record.body))
        elif record.kind == "repin":
            # Install the new pin map under the epoch that fences it.
            # Validation mirrors Placement.repin; the epoch itself is the
            # front door's, not a local increment, so every worker lands
            # on the same number.
            placement = self.shard.placement
            placement.repin(record.body["pins"])
            placement.epoch = record.body["epoch"]
            reply = record.reply("repin_reply", {"epoch": placement.epoch})
        elif record.kind == "shutdown":
            self._running = False
            reply = record.reply("shutdown_reply")
        else:
            raise ReproError(
                f"worker {self.id}: unexpected control kind {record.kind!r}"
            )
        self._send_text(reply.encode())

    def _extract(self, body: dict) -> dict:
        """Slice a process out for migration (``extract`` control).

        A refusal — the pid is gone, the reply already landed and the
        process completed, the mode does not fit this preset — answers
        with a null slice and a diagnostic instead of killing the
        worker: migration is advisory, the data plane must survive it.
        """
        from repro.net.migrate import MigrateError, extract

        pid = body["pid"]
        target = None
        for process in self.shard.scheduler.processes:
            if process.pid == pid:
                target = process
                break
        if target is None:
            return {"slice": None, "error": f"no process with pid {pid}"}
        try:
            slice_ = extract(self.shard, target, body["dst"], mode=body["mode"])
        except MigrateError as refusal:
            return {"slice": None, "error": str(refusal)}
        self.shard.remove_process(target)
        return {"slice": slice_}

    def _adopt(self, body: dict) -> dict:
        """Install a migrated slice (``adopt`` control)."""
        from repro.net.migrate import MigrateError, adopt

        try:
            process = adopt(self.shard, body["slice"], now=time.monotonic())
        except MigrateError as refusal:
            return {"pid": None, "error": str(refusal)}
        return {"pid": process.pid}

    def meters(self) -> dict:
        """The shard's modelled meters (same shape as Cluster.meters())."""
        return {
            "counter": self.shard.machine.counter.snapshot(),
            "steps": self.shard.machine.steps,
            "switches": self.shard.scheduler.stats.switches,
            "blocks": self.shard.scheduler.stats.blocks,
        }

    def status(self) -> list[dict]:
        """The process table, JSON-ready (the ``status`` control reply)."""
        return [
            {
                "pid": p.pid,
                "module": p.module,
                "proc": p.proc,
                "args": list(p.args),
                "status": p.status.value,
                "results": list(p.results),
                "fault": p.fault,
            }
            for p in self.shard.scheduler.processes
        ]

    # -- the pump ----------------------------------------------------------

    #: Process-table size beyond which completed processes are reaped.
    PRUNE_THRESHOLD = 512

    def _prune_done(self) -> None:
        """Reap completed processes so scheduler scans stay O(live).

        The cooperative scheduler keeps every spawned process in one
        list and scans it; a serving worker spawns one process per
        request, so a long run would slow down as it ages.  Completed
        processes carry nothing the worker still needs (replies are
        cached on the shard), so reap them and renumber the survivors —
        ``spawn`` relies on ``pid == index``.  Skipped while recording:
        renumbered pids would scramble a trace.
        """
        if self.shard.recorder is not None:
            return
        scheduler = self.shard.scheduler
        if len(scheduler.processes) < self.PRUNE_THRESHOLD:
            return
        finished = (ProcessStatus.DONE, ProcessStatus.FAULTED)
        live = [p for p in scheduler.processes if p.status not in finished]
        if len(live) == len(scheduler.processes):
            return
        spans = self.shard._spans
        renumbered: dict[int, str] = {}
        for index, process in enumerate(live):
            if process.pid in spans:
                renumbered[index] = spans[process.pid]
            process.pid = index
        scheduler.processes[:] = live
        scheduler._rotor = 0
        self.shard._spans = renumbered
        # The dedup reply cache only has to span the window in which a
        # duplicate can still arrive — the sender's full retry cycle,
        # a few seconds — not the whole run.  Keep the newest few
        # thousand (dicts preserve insertion order); an in-process
        # Shard keeps everything, but it also serves bounded runs.
        cache = self.shard._reply_cache
        if len(cache) > 8192:
            for key in list(cache)[:-4096]:
                del cache[key]

    def pump_once(self) -> None:
        """Run until locally idle, age retries, flush the outbox."""
        now = time.monotonic()
        while self.shard.step(now):
            pass
        if self.shard.awaiting:
            self.shard.retry(time.monotonic(), self.timeout_s, self.max_retries)
        self._flush_outbox()
        self._prune_done()

    def run(self) -> None:
        """The worker loop: greet, then read/dispatch/pump until EOF."""
        self._send_text(
            wire.hello(
                self.id,
                FRONT_DOOR,
                self.shard.machine.config,
                self.shard.modules(),
                epoch=self.shard.placement.epoch,
            ).encode()
        )
        self.sock.settimeout(POLL_SECONDS)
        while self._running:
            try:
                chunk = self.sock.recv(RECV_BYTES)
            except TimeoutError:
                chunk = None
            except OSError:
                break
            if chunk == b"":
                # EOF: a partial frame buffered here is data loss — let
                # FrameBuffer.finish raise rather than exit clean.
                self._framer.finish()
                break
            if chunk:
                for frame in self._framer.feed(chunk):
                    self._dispatch(frame)
            self.pump_once()


def run_worker(address: tuple, spec: dict) -> None:
    """Process entry point: build the shard, serve until shutdown/EOF."""
    sock = connect(address)
    try:
        Worker(sock, spec).run()
    except Exception as fault:  # surface the diagnostic, then die loudly
        try:
            record = ctl.Control(
                kind="worker_error",
                shard=spec.get("shard_id", -1),
                body={"error": f"{type(fault).__name__}: {fault}"},
            )
            sock.sendall(encode_frame(record.encode()))
        except OSError:
            pass
        raise
    finally:
        sock.close()
