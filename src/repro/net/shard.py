"""One shard: a Machine, its Scheduler, and the stub/skeleton frames.

The **stub** is the caller side of a Remote XFER.  It hooks the
machine's shared call path (``machine.remote_stub``): when a call
resolves to a procedure whose module lives on another shard, the stub
collects the argument record off the evaluation stack — through the
*uncounted* state-access paths, so the caller's modelled meters see
nothing — parks a request, and yields.  The scheduler then blocks the
calling process exactly as it would suspend it for any other reason
(flush the return stack and banks, save the state vector as memory
traffic): a Remote XFER costs the caller one ordinary modelled process
switch, and everything else is explicitly metered wire cost.

The **skeleton** is the callee side: an incoming ``call`` message
spawns an ordinary root activation of the target procedure under the
shard's scheduler, so the callee machine sees a plain XFER — frame
allocation, argument prologue, body, return — with its exact local
semantics and charges.  The reply marshals the result words back;
request-id dedup plus a reply cache make execution at-most-once even
when the transport duplicates or the caller retries.
"""

from __future__ import annotations

from repro.errors import NetError
from repro.interp.machine import Machine
from repro.interp.machineconfig import ArgConvention
from repro.interp.processes import Process, ProcessStatus, Scheduler
from repro.machine.memory import to_signed
from repro.net import wire
from repro.net.placement import Placement
from repro.net.wire import Message, config_token


class Shard:
    """A machine + scheduler bound into a cluster by stub and skeleton."""

    def __init__(
        self,
        shard_id: int,
        machine: Machine,
        placement: Placement,
        record: bool = False,
        quantum: int = 0,
    ) -> None:
        self.id = shard_id
        self.machine = machine
        self.placement = placement
        self.scheduler = Scheduler(machine, quantum=quantum)
        self.recorder = None
        if record:
            from repro.obs import TraceRecorder

            self.recorder = TraceRecorder(capacity=None)
            machine.attach_tracer(self.recorder)
        machine.remote_stub = self._stub
        #: Outgoing messages for the cluster to hand the transport.
        self.outbox: list[Message] = []
        #: request id -> bookkeeping for calls awaiting a reply.
        self._awaiting: dict[int, dict] = {}
        #: (src shard, request id) -> skeleton process now executing.
        self._served: dict[tuple[int, int], Process] = {}
        #: (src shard, request id) -> the reply already sent (dedup).
        self._reply_cache: dict[tuple[int, int], Message] = {}
        #: Tombstones for callers that migrated away: awaiting-key ->
        #: new home shard.  A reply/error landing here is re-routed (with
        #: an ``origin`` body field naming the original requester) and
        #: the entry retired once the coordinator sees the reply land.
        self._forwards: dict = {}
        #: (src shard, request id) -> new home for in-flight requests
        #: whose *serving* process migrated away.  Placement still routes
        #: retries of those requests here, so the old home must bounce
        #: them — src preserved, keeping the adopter's dedup key intact.
        self._call_forwards: dict[tuple[int, int], int] = {}
        #: pid -> the span this process is executing (for span parents).
        self._spans: dict[int, str] = {}
        self._next_request = 0
        self._next_span = 0
        self.hello_ok = False

    # -- identity ----------------------------------------------------------

    def modules(self) -> list[str]:
        """The module census of this shard's linked image."""
        return sorted({meta.module for meta in self.machine.image.procs_by_entry.values()})

    def new_span(self) -> str:
        """A deterministic span id: ``"<shard>:<ordinal>"``."""
        span = f"{self.id}:{self._next_span}"
        self._next_span += 1
        return span

    # -- the stub (caller side) -------------------------------------------

    def _stub(self, meta, kind, return_pc) -> bool:
        if self.placement.home(meta.module) == self.id:
            return False
        machine = self.machine
        frame = machine.frame
        if frame is not None and frame.proc.module == meta.module:
            # A migrated process executing away from its module's
            # placement home: its intra-module calls stay local.  The
            # code is linked on every shard, and bouncing a module's
            # internal calls over the wire would break the meter
            # identity migration promises (and route the call straight
            # back to the shard the process just left).  Never taken
            # without a migration: otherwise the running frame's module
            # is homed here, and the first check already answered.
            return False
        current = self.scheduler.current
        if current is None:
            raise NetError(
                f"remote call to {meta.qualified_name} outside a scheduled "
                "process; drive the shard through its scheduler"
            )
        # Collect the argument record through the uncounted paths: the
        # caller's meters must not see the stub.
        if machine.config.arg_convention is ArgConvention.RENAME:
            words = machine.stack.contents()
            machine.stack.clear()
        else:
            words = machine.stack.contents()
            keep = len(words) - meta.arg_count
            machine.stack.load(words[:keep])
            words = words[keep:]
        span = self.new_span()
        machine.remote_pending = {
            "module": meta.module,
            "proc": meta.name,
            "args": [to_signed(word) for word in words],
            "span": span,
            "parent": self._spans.get(current.pid),
            "transfer": kind.value,
        }
        machine.yield_requested = True
        tracer = machine.tracer
        if tracer is not None:
            tracer.emit(
                "net.call",
                meta.qualified_name,
                span=span,
                parent=self._spans.get(current.pid),
                shard=self.id,
                dst=self.placement.home(meta.module),
                args=len(words),
                transfer=kind.value,
            )
        return True

    # -- the skeleton (callee side) and message handling ------------------

    def submit(self, module: str, proc: str, args: tuple[int, ...], span: str) -> Process:
        """Spawn a root request on this shard (the serving entry point)."""
        process = self.scheduler.spawn(module, proc, *args)
        self._spans[process.pid] = span
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(
                "net.serve",
                f"{module}.{proc}",
                span=span,
                parent=None,
                shard=self.id,
                pid=process.pid,
                origin="root",
            )
        return process

    def deliver(self, messages: list[Message]) -> None:
        """Accept polled transport messages addressed to this shard."""
        for message in messages:
            if message.kind == "hello":
                self._handle_hello(message)
            elif message.kind == "call":
                self._handle_call(message)
            elif message.kind == "reply":
                self._handle_reply(message)
            else:
                self._handle_error(message)

    def _handle_hello(self, message: Message) -> None:
        token = config_token(self.machine.config)
        if message.body["config"] != token:
            raise NetError(
                f"shard {self.id} handshake failed: configuration token "
                f"mismatch with shard {message.src} — Remote XFER requires "
                "identical machine configurations"
            )
        if message.body["modules"] != self.modules():
            raise NetError(
                f"shard {self.id} handshake failed: module census differs "
                f"from shard {message.src} — shards must link the same image"
            )
        self.hello_ok = True

    def _handle_call(self, message: Message) -> None:
        body = message.body
        key = (message.src, body["id"])
        cached = self._reply_cache.get(key)
        if cached is not None:
            # Duplicate of an already-answered request: resend the
            # cached reply; never execute twice (at-most-once).
            self.outbox.append(cached)
            return
        if key in self._served:
            return  # duplicate of a request still executing
        new_home = self._call_forwards.get(key)
        if new_home is not None:
            # The serving process migrated away mid-request; bounce the
            # (retried or duplicated) call to its new home with the
            # source preserved, so the adopter's dedup key — the
            # original (src, id) — still matches.  These forwards are
            # permanent: a late transport duplicate must never find a
            # shard willing to execute the request a second time.
            self.outbox.append(
                Message(kind="call", src=message.src, dst=new_home, body=dict(body))
            )
            self._emit_forward(message, new_home)
            return
        process = self.scheduler.spawn(body["module"], body["proc"], *body["args"])
        self._served[key] = process
        self._spans[process.pid] = body["span"]
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(
                "net.serve",
                f"{body['module']}.{body['proc']}",
                span=body["span"],
                parent=body["parent"],
                shard=self.id,
                pid=process.pid,
                origin=message.src,
            )

    @staticmethod
    def awaiting_key(body: dict):
        """The ``_awaiting`` key a reply or error resolves to.

        Requests this shard sent itself key by their bare integer id; a
        request *adopted* through migration keys by ``("adopt", origin,
        id)``, where *origin* is the shard that originally sent it — the
        forwarded message carries that origin in its body, so adopted
        ids can never collide with the adopter's own request counter.
        """
        origin = body.get("origin")
        if origin is None:
            return body["id"]
        return ("adopt", origin, body["id"])

    def _forward_reply(self, message: Message, key) -> bool:
        """Re-route a reply/error whose blocked caller migrated away."""
        new_home = self._forwards.get(key)
        if new_home is None:
            return False
        body = dict(message.body)
        # First hop stamps the origin (this shard sent the original
        # request); later hops preserve it — the adopter keyed on it.
        body.setdefault("origin", self.id)
        self.outbox.append(
            Message(kind=message.kind, src=message.src, dst=new_home, body=body)
        )
        self._emit_forward(message, new_home)
        return True

    def _emit_forward(self, message: Message, new_home: int) -> None:
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(
                "net.migrate.forward",
                message.describe(),
                shard=self.id,
                dst=new_home,
                kind=message.kind,
            )

    def _handle_reply(self, message: Message) -> None:
        body = message.body
        key = self.awaiting_key(body)
        entry = self._awaiting.pop(key, None)
        if entry is None:
            self._forward_reply(message, key)
            return  # forwarded, or duplicate for an already-resumed caller
        self.scheduler.unblock(entry["process"], body["results"])

    def _handle_error(self, message: Message) -> None:
        body = message.body
        key = self.awaiting_key(body)
        entry = self._awaiting.pop(key, None)
        if entry is None:
            self._forward_reply(message, key)
            return
        self.scheduler.fault_blocked(
            entry["process"],
            {
                "trap": body["trap"],
                "pc": body["pc"],
                "proc": body["proc"],
                "detail": f"remote fault on shard {message.src}: {body['detail']}",
            },
        )

    # -- the pump ----------------------------------------------------------

    def has_ready(self) -> bool:
        return any(
            p.status is ProcessStatus.READY for p in self.scheduler.processes
        )

    def step(self, now_tick: int) -> bool:
        """Run what is runnable, then flush replies and outgoing calls."""
        progressed = False
        if self.has_ready():
            self.scheduler.run()
            progressed = True
        progressed |= self._flush_replies()
        progressed |= self._flush_calls(now_tick)
        return progressed

    def _flush_replies(self) -> bool:
        sent = False
        for key in list(self._served):
            process = self._served[key]
            if process.status is ProcessStatus.DONE:
                message = wire.reply(
                    self.id, key[0], key[1], self._spans[process.pid],
                    list(process.results),
                )
            elif process.status is ProcessStatus.FAULTED:
                fault = process.fault or {}
                message = wire.error(
                    self.id, key[0], key[1], self._spans[process.pid],
                    trap=fault.get("trap", "unknown"),
                    pc=fault.get("pc", -1),
                    proc=fault.get("proc", ""),
                    detail=fault.get("detail", ""),
                )
            else:
                continue
            del self._served[key]
            self._reply_cache[key] = message
            self.outbox.append(message)
            tracer = self.machine.tracer
            if tracer is not None:
                tracer.emit(
                    "net.reply",
                    f"{process.module}.{process.proc}",
                    span=self._spans[process.pid],
                    shard=self.id,
                    msg=message.kind,
                    pid=process.pid,
                )
            sent = True
        return sent

    def _flush_calls(self, now_tick: int) -> bool:
        sent = False
        for process in self.scheduler.processes:
            if process.status is not ProcessStatus.BLOCKED:
                continue
            pending = process.remote
            if pending is None or "id" in pending:
                continue
            request_id = self._next_request
            self._next_request += 1
            pending["id"] = request_id
            dst = self.placement.home(pending["module"])
            message = wire.call(
                self.id,
                dst,
                request_id,
                pending["span"],
                pending["parent"],
                pending["module"],
                pending["proc"],
                pending["args"],
            )
            self._awaiting[request_id] = {
                "process": process,
                "message": message,
                "sent": now_tick,
                "sends": 1,
            }
            self.outbox.append(message)
            sent = True
        return sent

    def retry(self, now_tick: int, timeout_ticks: int, max_retries: int) -> bool:
        """Re-send calls whose replies are overdue; fault on exhaustion.

        The retry contract, stated once and pinned by
        ``tests/test_net_transport.py``: ``max_retries`` counts
        **retransmissions after the initial send**, so a request is
        transmitted at most ``1 + max_retries`` times, each
        transmission granted a full ``timeout_ticks`` wait; when the
        last wait expires the blocked caller faults with a clean
        ``lost_request`` trap.  (``entry["sends"]`` counts total
        transmissions, starting at 1 for the initial send.)
        """
        acted = False
        for request_id in list(self._awaiting):
            entry = self._awaiting[request_id]
            if now_tick - entry["sent"] < timeout_ticks:
                continue
            message = entry["message"]
            if entry["sends"] >= 1 + max_retries:
                del self._awaiting[request_id]
                self.scheduler.fault_blocked(
                    entry["process"],
                    {
                        "trap": "lost_request",
                        "pc": -1,
                        "proc": f"{message.body['module']}.{message.body['proc']}",
                        "detail": (
                            f"request {request_id} unanswered after "
                            f"{entry['sends']} transmission(s) "
                            f"(1 send + {max_retries} retries)"
                        ),
                    },
                )
                acted = True
                continue
            entry["sends"] += 1
            entry["sent"] = now_tick
            self.outbox.append(message)
            tracer = self.machine.tracer
            if tracer is not None:
                tracer.emit(
                    "net.retry",
                    message.describe(),
                    span=message.body["span"],
                    shard=self.id,
                    attempt=entry["sends"],
                )
            acted = True
        return acted

    def drain_outbox(self) -> list[Message]:
        messages, self.outbox = self.outbox, []
        return messages

    # -- migration surgery (host-side, uncounted) --------------------------

    def install_forward(self, key, new_home: int) -> None:
        """Tombstone an awaiting key: route its reply to *new_home*."""
        self._forwards[key] = new_home

    def retire_forward(self, key) -> None:
        """Drop a tombstone once its reply has landed at the new home."""
        self._forwards.pop(key, None)

    def remove_process(self, process: Process) -> None:
        """Drop a migrated-away process and renumber the table.

        Mirrors the worker's prune idiom: surviving processes take
        dense pids, the span map is rebuilt, and the rotor restarts.
        Host bookkeeping only — no machine meters move.  The process's
        frames stay allocated in this shard's heap (their live copies
        now belong to the adopter); the arena wears the scar, which is
        bounded by one frame chain per migration.
        """
        self.scheduler.held.discard(process.pid)
        keep = [p for p in self.scheduler.processes if p is not process]
        spans: dict[int, str] = {}
        for index, survivor in enumerate(keep):
            span = self._spans.get(survivor.pid)
            survivor.pid = index
            if span is not None:
                spans[index] = span
        self.scheduler.processes = keep
        self._spans = spans
        self.scheduler._rotor = 0

    @property
    def awaiting(self) -> int:
        """Outstanding remote calls (blocked processes waiting on replies)."""
        return len(self._awaiting)
