"""Stitch per-shard traces into one cross-shard call tree.

Every Remote XFER carries a span id (``"<shard>:<ordinal>"``) and its
parent's span id on the wire, so each shard's recorder sees a
consistent fragment of the distributed call tree: a ``net.serve`` event
when a span starts executing on the shard (stamped with the shard
machine's steps and cycles at that instant) and a ``net.reply`` event
when its activation completes.  Stitching is then pure bookkeeping —
collect the fragments, link spans to parents, and the roots are the
submitted requests.

The stitched node attributes **modelled callee cost** to each span: the
shard's step and cycle deltas between serve and reply.  Wire cost stays
on the transport's explicit meters and never appears in a node — the
same separation the conformance suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import events as ev


@dataclass
class Span:
    """One remote activation: where it ran and what it cost there."""

    span: str
    parent: str | None
    name: str
    shard: int
    pid: int
    origin: str
    start_steps: int = 0
    start_cycles: int = 0
    end_steps: int | None = None
    end_cycles: int | None = None
    children: list["Span"] = field(default_factory=list)

    @property
    def steps(self) -> int:
        """Callee-side modelled instructions, serve to reply."""
        if self.end_steps is None:
            return 0
        return self.end_steps - self.start_steps

    @property
    def cycles(self) -> int:
        """Callee-side modelled cycles, serve to reply."""
        if self.end_cycles is None:
            return 0
        return self.end_cycles - self.start_cycles

    def walk(self, depth: int = 0):
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


def stitch(events_by_shard: dict[int, list]) -> list[Span]:
    """Build the cross-shard span forest from per-shard trace events.

    *events_by_shard* maps shard id to its recorder's events (e.g.
    :meth:`repro.net.cluster.Cluster.trace_events`).  Returns the root
    spans (submitted requests), children ordered by span id ordinal —
    a deterministic order, since span ids are allocated deterministically.
    """
    spans: dict[str, Span] = {}
    for shard_id, events in sorted(events_by_shard.items()):
        for event in events:
            if event.kind == ev.NET_SERVE:
                data = event.data
                spans[data["span"]] = Span(
                    span=data["span"],
                    parent=data.get("parent"),
                    name=event.name,
                    shard=shard_id,
                    pid=data["pid"],
                    origin=str(data.get("origin", "")),
                    start_steps=event.steps,
                    start_cycles=event.cycles,
                )
            elif event.kind == ev.NET_REPLY:
                node = spans.get(event.data["span"])
                if node is not None and node.end_steps is None:
                    node.end_steps = event.steps
                    node.end_cycles = event.cycles
    roots: list[Span] = []
    for node in spans.values():
        parent = spans.get(node.parent) if node.parent is not None else None
        if parent is not None:
            parent.children.append(node)
        else:
            roots.append(node)

    def _ordinal(span: Span) -> tuple[int, int]:
        shard, _, ordinal = span.span.partition(":")
        return int(shard), int(ordinal)

    for node in spans.values():
        node.children.sort(key=_ordinal)
    roots.sort(key=_ordinal)
    return roots


def render(roots: list[Span]) -> str:
    """An ASCII tree of the stitched spans (``repro profile --shards``)."""
    lines: list[str] = []
    for root in roots:
        for node, depth in root.walk():
            indent = "  " * depth
            marker = "" if depth == 0 else "└ "
            done = (
                f"steps={node.steps} cycles={node.cycles}"
                if node.end_steps is not None
                else "(no reply)"
            )
            lines.append(
                f"{indent}{marker}{node.span} {node.name} "
                f"[shard {node.shard}] {done}"
            )
    return "\n".join(lines)
