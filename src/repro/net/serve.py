"""The serving layer: a shard pool driven by a seeded load generator.

``repro serve`` builds a :class:`~repro.net.cluster.Cluster` whose
image is a small multi-module *service* program, and a :class:`Server`
admits requests against it with the disciplines a real RPC tier needs:

* **batching** — at most ``batch_size`` admissions per pump round;
* **bounded run queues with backpressure** — a shard accepts at most
  ``queue_capacity`` in-flight root requests; requests routed to a full
  shard wait in the server's admission queue and the stall is counted;
* **retry with backoff** — a faulted root request is resubmitted up to
  ``max_retries`` times; the k-th resubmission (k = 1..max_retries)
  waits ``backoff_base * 2^(k-1)`` pump ticks, so the **first retry
  waits exactly ``backoff_base`` ticks** and each further retry
  doubles the wait;
* **end-to-end latency** — measured in pump ticks from admission to
  completion, reported as exact p50/p99 (the raw samples are kept) and
  as a log2 :class:`~repro.obs.metrics.Histogram` in the ``net.*``
  metric namespace.

``repro loadgen`` produces the workload: a seeded, reproducible request
sequence whose expected results are computed host-side, so the report
can verify **zero lost requests and zero wrong answers** — the
acceptance bar for the serving path.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import NetError
from repro.net.cluster import Cluster, Ticket
from repro.obs import MetricsRegistry

#: The service program: four leaf modules behind a dispatcher, so a
#: multi-shard placement exercises Remote XFER on nearly every request.
SERVICE_SOURCES: tuple[str, ...] = (
    """
MODULE Main;
PROCEDURE main(): INT;
BEGIN
  RETURN 0;
END;
PROCEDURE dispatch(op, a, b): INT;
BEGIN
  IF op = 0 THEN RETURN Fib.fib(a); END;
  IF op = 1 THEN RETURN Gauss.sum(a); END;
  IF op = 2 THEN RETURN Gcd.gcd(a, b); END;
  RETURN Pow.power(a, b);
END;
END.
""",
    """
MODULE Fib;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN Fib.fib(n - 1) + Fib.fib(n - 2);
END;
END.
""",
    """
MODULE Gauss;
PROCEDURE sum(n): INT;
VAR acc: INT;
BEGIN
  acc := 0;
  WHILE n > 0 DO
    acc := acc + n;
    n := n - 1;
  END;
  RETURN acc;
END;
END.
""",
    """
MODULE Gcd;
PROCEDURE gcd(a, b): INT;
BEGIN
  WHILE b # 0 DO
    a := a MOD b;
    IF a = 0 THEN RETURN b; END;
    b := b MOD a;
  END;
  RETURN a;
END;
END.
""",
    """
MODULE Pow;
PROCEDURE power(base, exponent): INT;
VAR result: INT;
BEGIN
  result := 1;
  WHILE exponent > 0 DO
    result := result * base;
    exponent := exponent - 1;
  END;
  RETURN result;
END;
END.
""",
)


def _fib(n: int) -> int:
    a, b = 0, 1
    for _ in range(n):
        a, b = b, a + b
    return a


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a


@dataclass(frozen=True, slots=True)
class Request:
    """One loadgen request and its host-computed expected result.

    Slotted: a scale run materializes millions of these."""

    index: int
    op: int
    a: int
    b: int
    expected: int

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "op": self.op,
            "a": self.a,
            "b": self.b,
            "expected": self.expected,
        }

    @classmethod
    def from_dict(cls, data: dict) -> Request:
        return cls(
            index=data["index"],
            op=data["op"],
            a=data["a"],
            b=data["b"],
            expected=data["expected"],
        )


def generate_workload(seed: int, requests: int) -> list[Request]:
    """A seeded request sequence with known answers (``repro loadgen``)."""
    rng = random.Random(seed)
    workload: list[Request] = []
    for index in range(requests):
        op = rng.randrange(4)
        if op == 0:  # Fib.fib
            a, b = rng.randrange(1, 13), 0
            expected = _fib(a)
        elif op == 1:  # Gauss.sum
            a, b = rng.randrange(1, 40), 0
            expected = a * (a + 1) // 2
        elif op == 2:  # Gcd.gcd
            a, b = rng.randrange(1, 500), rng.randrange(1, 500)
            expected = _gcd(a, b)
        else:  # Pow.power
            a, b = rng.randrange(2, 6), rng.randrange(0, 7)
            expected = a**b
        workload.append(Request(index=index, op=op, a=a, b=b, expected=expected))
    return workload


def generate_skewed_workload(
    seed: int, requests: int, hot_fraction: float = 0.9
) -> list[Request]:
    """A hot-key workload: ``hot_fraction`` of the requests are ``Fib``
    calls (op 0), the rest spread over the other operations.

    This is the autoscaling benchmark's load shape — with ``Main``
    pinned to one shard, the dispatcher's home runs persistently hot
    while its peers idle, which is exactly the imbalance the
    :class:`~repro.net.balance.Balancer` exists to drain.
    """
    if not 0.0 <= hot_fraction <= 1.0:
        raise NetError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    rng = random.Random(seed)
    workload: list[Request] = []
    for index in range(requests):
        if rng.random() < hot_fraction:
            op = 0
        else:
            op = rng.randrange(1, 4)
        if op == 0:
            a, b = rng.randrange(6, 13), 0
            expected = _fib(a)
        elif op == 1:
            a, b = rng.randrange(1, 40), 0
            expected = a * (a + 1) // 2
        elif op == 2:
            a, b = rng.randrange(1, 500), rng.randrange(1, 500)
            expected = _gcd(a, b)
        else:
            a, b = rng.randrange(2, 6), rng.randrange(0, 7)
            expected = a**b
        workload.append(Request(index=index, op=op, a=a, b=b, expected=expected))
    return workload


@dataclass
class ServeReport:
    """What a serving run did — the acceptance evidence."""

    shards: int
    requests: int
    completed: int = 0
    lost: int = 0
    wrong: int = 0
    retried: int = 0
    backpressure_stalls: int = 0
    migrations: int = 0
    ticks: int = 0
    wire_words: int = 0
    latencies: list[int] = field(default_factory=list)

    def percentile(self, q: float) -> int:
        """Exact latency percentile in pump ticks (nearest-rank)."""
        if not self.latencies:
            return 0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "requests": self.requests,
            "completed": self.completed,
            "lost": self.lost,
            "wrong": self.wrong,
            "retried": self.retried,
            "backpressure_stalls": self.backpressure_stalls,
            "migrations": self.migrations,
            "ticks": self.ticks,
            "wire_words": self.wire_words,
            "p50_ticks": self.percentile(0.50),
            "p99_ticks": self.percentile(0.99),
            "requests_per_tick": (
                round(self.completed / self.ticks, 4) if self.ticks else 0.0
            ),
        }


class Server:
    """Admission control over a cluster: batching, backpressure, retry.

    Two pumping disciplines.  With ``pump_ticks_per_round=None`` (the
    default, and the historical behavior) every round runs the cluster
    to quiescence, so each admitted batch completes before the next is
    considered.  With an integer, each round advances the cluster by at
    most that many pump **ticks**, so requests stay in flight across
    rounds — the mode autoscaling needs, because a
    :class:`~repro.net.balance.Balancer` can only drain a shard whose
    queue is actually deep between ticks.  When a balancer is attached
    it observes the cluster after every round's pumping (a block
    boundary, where migration is legal).
    """

    def __init__(
        self,
        cluster: Cluster,
        queue_capacity: int = 8,
        batch_size: int = 4,
        max_retries: int = 2,
        backoff_base: int = 2,
        metrics: MetricsRegistry | None = None,
        balancer=None,
        pump_ticks_per_round: int | None = None,
    ) -> None:
        if queue_capacity < 1:
            raise NetError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if batch_size < 1:
            raise NetError(f"batch_size must be >= 1, got {batch_size}")
        if pump_ticks_per_round is not None and pump_ticks_per_round < 1:
            raise NetError(
                f"pump_ticks_per_round must be >= 1, got {pump_ticks_per_round}"
            )
        self.cluster = cluster
        self.queue_capacity = queue_capacity
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.metrics = metrics or MetricsRegistry()
        self.balancer = balancer
        self.pump_ticks_per_round = pump_ticks_per_round
        if balancer is not None:
            # One registry end to end: the balancer reads the latency
            # histogram and publishes its gauges where the report looks.
            balancer.metrics = self.metrics

    # -- internals ---------------------------------------------------------

    def _inflight(self, tracked: list[dict]) -> dict[int, int]:
        """Root requests currently executing, per shard."""
        counts = {shard.id: 0 for shard in self.cluster.shards}
        for entry in tracked:
            ticket = entry["ticket"]
            if ticket is not None and not ticket.done:
                counts[ticket.shard_id] += 1
        return counts

    def _submit(self, request: Request) -> Ticket:
        return self.cluster.submit(
            "Main", "dispatch", request.op, request.a, request.b
        )

    def serve(self, workload: list[Request], max_rounds: int = 1_000_000) -> ServeReport:
        """Run the whole workload to completion and report.

        Each round admits up to ``batch_size`` waiting requests (skipping
        any whose home shard is at capacity — a backpressure stall), then
        pumps the cluster one quiescence cycle.  A faulted request
        re-enters the **tail** of the admission queue with
        ``not_before = ticks + backoff_base * 2^(attempts-1)`` (so its
        first retry waits exactly ``backoff_base`` ticks) and becomes
        admissible again on the first round where
        ``cluster.ticks >= not_before`` — the equality case admits, so
        re-entry is deterministic: same seed, same knobs, same admission
        schedule, every run.
        """
        cluster = self.cluster
        report = ServeReport(shards=len(cluster.shards), requests=len(workload))
        latency = self.metrics.histogram("net.latency_ticks")
        admitted_metric = self.metrics.counter("net.admitted")
        stalled_metric = self.metrics.counter("net.backpressure_stalls")
        retried_metric = self.metrics.counter("net.retries")
        depth_gauge = self.metrics.gauge("net.admission_queue_depth")

        tracked = [
            {"request": request, "ticket": None, "attempts": 0, "not_before": 0}
            for request in workload
        ]
        waiting = list(range(len(tracked)))  # indices, FIFO admission order
        start_tick = cluster.ticks
        rounds = 0
        while True:
            rounds += 1
            if rounds > max_rounds:
                raise NetError(
                    f"serve did not finish within {max_rounds} rounds "
                    f"({len(waiting)} request(s) still waiting)"
                )
            inflight = self._inflight(tracked)
            admitted = 0
            still_waiting: list[int] = []
            for index in waiting:
                entry = tracked[index]
                if admitted >= self.batch_size or cluster.ticks < entry["not_before"]:
                    still_waiting.append(index)
                    continue
                home = cluster.placement.home("Main")
                if inflight[home] >= self.queue_capacity:
                    report.backpressure_stalls += 1
                    stalled_metric.inc()
                    still_waiting.append(index)
                    continue
                ticket = self._submit(entry["request"])
                entry["ticket"] = ticket
                entry["attempts"] += 1
                entry["admitted_tick"] = cluster.ticks
                inflight[home] += 1
                admitted += 1
                admitted_metric.inc()
            waiting = still_waiting
            depth_gauge.set(len(waiting))

            if self.pump_ticks_per_round is None:
                cluster.pump()
            else:
                for _ in range(self.pump_ticks_per_round):
                    if not cluster.pump_tick():
                        break
                cluster.stats.ticks = cluster.ticks

            if self.balancer is not None:
                live = [
                    entry["ticket"]
                    for entry in tracked
                    if entry["ticket"] is not None and not entry.get("settled")
                ]
                report.migrations += self.balancer.observe(cluster, live)

            # Harvest completions; faulted requests go back to the queue
            # with exponential backoff until their retries run out.
            for index, entry in enumerate(tracked):
                ticket = entry["ticket"]
                if ticket is None or entry.get("settled"):
                    continue
                if not ticket.done:
                    continue
                request = entry["request"]
                if ticket.status.value == "done":
                    entry["settled"] = True
                    report.completed += 1
                    ticks = cluster.ticks - entry["admitted_tick"]
                    report.latencies.append(ticks)
                    latency.observe(ticks)
                    results = ticket.results
                    if not results or results[-1] != request.expected:
                        report.wrong += 1
                elif entry["attempts"] <= self.max_retries:
                    report.retried += 1
                    retried_metric.inc()
                    entry["ticket"] = None
                    entry["not_before"] = cluster.ticks + self.backoff_base * (
                        2 ** (entry["attempts"] - 1)
                    )
                    waiting.append(index)
                else:
                    entry["settled"] = True
                    report.lost += 1
            if not waiting and all(entry.get("settled") for entry in tracked):
                break

        report.ticks = cluster.ticks - start_tick
        report.wire_words = cluster.transport.stats.wire_words
        return report


def run_serve(
    shards: int = 4,
    requests: int = 100,
    seed: int = 7,
    config: str = "i2",
    queue_capacity: int = 8,
    batch_size: int = 4,
    transport=None,
    record: bool = False,
) -> tuple[ServeReport, Cluster, MetricsRegistry]:
    """Build the service cluster, run a seeded workload, return evidence."""
    cluster = Cluster(
        list(SERVICE_SOURCES),
        shards=shards,
        config=config,
        transport=transport,
        record=record,
    )
    metrics = MetricsRegistry()
    server = Server(
        cluster,
        queue_capacity=queue_capacity,
        batch_size=batch_size,
        metrics=metrics,
    )
    report = server.serve(generate_workload(seed, requests))
    return report, cluster, metrics
