"""A cluster: N machine shards, one placement, one transport, one pump.

Every shard links the **same program image** from the same sources with
the same configuration — the deterministic link guarantees identical
entry addresses, and the ``hello`` handshake (which reuses the snapshot
codec's configuration token) verifies it.  The :class:`~repro.net.
placement.Placement` then decides *where each module executes*: a call
into a module homed elsewhere becomes a Remote XFER through the stub,
and arrives on the home shard as an ordinary root activation.

The pump is a deterministic event loop: each tick visits the shards in
id order — deliver polled messages, run what is runnable, flush
replies and outgoing calls — then advances the transport (delays age,
partitions heal).  When nothing moves and nothing is in flight, either
all work is done or some caller is waiting on a lost reply, in which
case the timeout/retry discipline takes over.  Everything is a pure
function of (sources, configuration, placement, fault plan, submitted
requests), so two runs with the same seed are bit-identical on every
shard's modelled meters — the property the conformance suite pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetError, TrapError
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.interp.processes import Process, ProcessStatus
from repro.net import wire
from repro.net.placement import DEFAULT_VNODES, Placement
from repro.net.shard import Shard
from repro.net.transport import InProcessTransport

#: Pump ticks without a reply before a request is re-sent.
DEFAULT_TIMEOUT_TICKS = 8
#: Retransmissions after the initial send: a request is transmitted at
#: most ``1 + DEFAULT_MAX_RETRIES`` times (each granted a full timeout)
#: before its blocked caller faults with ``lost_request``.
DEFAULT_MAX_RETRIES = 3


@dataclass
class Ticket:
    """A submitted root request and the process executing it."""

    module: str
    proc: str
    args: tuple[int, ...]
    span: str
    shard_id: int
    process: Process
    submitted_tick: int = 0
    completed_tick: int | None = None

    @property
    def status(self) -> ProcessStatus:
        return self.process.status

    @property
    def done(self) -> bool:
        return self.process.status in (ProcessStatus.DONE, ProcessStatus.FAULTED)

    @property
    def results(self) -> list[int]:
        return list(self.process.results)


@dataclass
class ClusterStats:
    """Pump-level accounting (host-side)."""

    ticks: int = 0
    submitted: int = 0
    completed: int = 0
    faulted: int = 0
    extra: dict = field(default_factory=dict)


def build_shard_machine(
    sources: list[str],
    config: MachineConfig,
    entry: tuple[str, str] = ("Main", "main"),
    engine: str = "interp",
) -> Machine:
    """Compile and link one shard's image (no auto-start).

    Identical inputs produce an identical image on every shard — the
    property the handshake checks and Remote XFER relies on.
    ``engine="jit"`` compiles the shard's procedures up front; remote
    stubs stay on the interpreter's slow path by the deopt contract, so
    the wire protocol and meters are unchanged.
    """
    from repro.lang.compiler import CompileOptions, compile_program
    from repro.lang.linker import link

    modules = compile_program(sources, CompileOptions.for_config(config))
    image = link(modules, config, entry)
    machine = Machine(image)
    if engine == "jit":
        from repro.jit import install_jit

        install_jit(machine)
    return machine


class Cluster:
    """N shards in one host process, pumped to quiescence."""

    def __init__(
        self,
        sources: list[str],
        shards: int = 2,
        config: MachineConfig | str | None = None,
        entry: tuple[str, str] = ("Main", "main"),
        pins: dict[str, int] | None = None,
        vnodes: int = DEFAULT_VNODES,
        transport: InProcessTransport | None = None,
        record: bool = False,
        quantum: int = 0,
        timeout_ticks: int = DEFAULT_TIMEOUT_TICKS,
        max_retries: int = DEFAULT_MAX_RETRIES,
        engine: str = "interp",
    ) -> None:
        if shards < 1:
            raise NetError(f"a cluster needs at least one shard, got {shards}")
        if isinstance(config, str):
            config = MachineConfig.preset(config)
        self.config = config or MachineConfig.i2()
        self.entry = entry
        self.placement = Placement(list(range(shards)), pins=pins, vnodes=vnodes)
        self.timeout_ticks = timeout_ticks
        self.max_retries = max_retries
        self.wire_recorder = None
        if transport is None:
            tracer = None
            if record:
                from repro.obs import TraceRecorder

                self.wire_recorder = tracer = TraceRecorder(capacity=None)
            transport = InProcessTransport(tracer=tracer)
        self.transport = transport
        self.shards: list[Shard] = [
            Shard(
                shard_id,
                build_shard_machine(sources, self.config, entry, engine=engine),
                self.placement,
                record=record,
                quantum=quantum,
            )
            for shard_id in range(shards)
        ]
        self.tickets: list[Ticket] = []
        self.ticks = 0
        self.stats = ClusterStats()
        #: Pending tombstone retirements: one record per migration with
        #: an outstanding request, dropped once the reply lands at (or
        #: the retry discipline resolves on) the new home.
        self._migrations: list[dict] = []
        self._handshake()

    def close(self) -> None:
        close = getattr(self.transport, "close", None)
        if close is not None:
            close()

    # -- setup -------------------------------------------------------------

    def _handshake(self) -> None:
        """Shard 0 greets every peer; each validates config and census."""
        zero = self.shards[0]
        zero.hello_ok = True
        for shard in self.shards[1:]:
            self.transport.send(
                wire.hello(0, shard.id, zero.machine.config, zero.modules())
            )
        for shard in self.shards[1:]:
            shard.deliver(self.transport.poll(shard.id))
            if not shard.hello_ok:  # pragma: no cover - deliver raises first
                raise NetError(f"shard {shard.id} never completed the handshake")

    # -- requests ----------------------------------------------------------

    def submit(self, module: str, proc: str, *args: int) -> Ticket:
        """Spawn a root request on the module's home shard."""
        shard = self.shards[self.placement.home(module)]
        span = shard.new_span()
        process = shard.submit(module, proc, tuple(args), span)
        ticket = Ticket(
            module=module,
            proc=proc,
            args=tuple(args),
            span=span,
            shard_id=shard.id,
            process=process,
            submitted_tick=self.ticks,
        )
        self.tickets.append(ticket)
        self.stats.submitted += 1
        return ticket

    def call(self, module: str, proc: str, *args: int) -> list[int]:
        """Submit, pump to quiescence, and return (or raise) the result."""
        ticket = self.submit(module, proc, *args)
        self.pump()
        if ticket.status is ProcessStatus.FAULTED:
            fault = ticket.process.fault or {}
            raise TrapError(
                fault.get("trap", "remote"),
                detail=fault.get("detail", ""),
                pc=fault.get("pc", -1),
                proc=fault.get("proc", ""),
            )
        return ticket.results

    # -- the pump ----------------------------------------------------------

    def pump_tick(self) -> bool:
        """One deterministic pump tick; False means the cluster is
        quiescent (nothing ran, nothing in flight, nobody awaiting).

        This is exactly one iteration of :meth:`pump`'s loop — the
        serving layer's tick-paced mode and the balancer drive it
        directly so they can interleave policy (and migrations) between
        ticks.  When every shard is stalled awaiting replies, the tick
        ages the timeout/retry discipline and reports True: the pump
        must keep ticking for retries to fire.
        """
        progress = False
        for shard in self.shards:
            messages = self.transport.poll(shard.id)
            if messages:
                shard.deliver(messages)
                progress = True
            if shard.step(self.ticks):
                progress = True
            outgoing = shard.drain_outbox()
            for message in outgoing:
                self.transport.send(message)
            if outgoing:
                progress = True
        self.transport.tick()
        self.ticks += 1
        self._mark_completions()
        self._retire_tombstones()
        if progress or self.transport.pending():
            return True
        if any(shard.has_ready() for shard in self.shards):
            return True
        if not any(shard.awaiting for shard in self.shards):
            return False
        # Stalled on replies: age the timeouts; retries re-enter the
        # transport through the ordinary outbox path.
        for shard in self.shards:
            if shard.retry(self.ticks, self.timeout_ticks, self.max_retries):
                for message in shard.drain_outbox():
                    self.transport.send(message)
        return True

    def pump(self, max_ticks: int = 100_000) -> int:
        """Drive the shards until quiescent; returns ticks consumed.

        Quiescent: nothing ran, nothing is queued or in flight, and no
        caller is awaiting a reply.  Awaiting callers keep the pump
        ticking so the timeout/retry discipline can re-send or, when
        retries are exhausted, fault them — the pump always terminates.
        """
        start = self.ticks
        while True:
            moved = self.pump_tick()
            if self.ticks - start > max_ticks:
                raise NetError(
                    f"cluster did not quiesce within {max_ticks} ticks "
                    f"({sum(s.awaiting for s in self.shards)} request(s) "
                    "outstanding)"
                )
            if not moved:
                break
        self.stats.ticks = self.ticks
        return self.ticks - start

    # -- migration ---------------------------------------------------------

    def migrate(self, ticket: Ticket, dst: int, mode: str = "exclusive") -> Process:
        """Move a ticket's process to shard *dst* between pump ticks.

        Quiesces nothing itself: call between ticks (``pump_tick``
        returns, or before the first ``pump``), when every live process
        sits at a block boundary.  To migrate a process that would
        otherwise run to completion inside one tick, ``hold`` its pid on
        the source scheduler before pumping, migrate, then the adoption
        resumes it on the target.  Updates the ticket in place so
        completion tracking follows the process to its new home.
        """
        from repro.net.migrate import (
            MigrateError,
            adopt,
            adopted_key,
            extract,
            reattach,
            source_key,
        )

        if not 0 <= dst < len(self.shards):
            raise MigrateError(f"unknown migration target shard {dst}")
        source = self.shards[ticket.shard_id]
        target = self.shards[dst]
        process = ticket.process
        if process not in source.scheduler.processes:
            raise MigrateError(
                f"p{process.pid} is not on shard {source.id} (already "
                "migrated?)"
            )
        slice_ = extract(source, process, dst, mode=mode)
        try:
            adopted = adopt(target, slice_, now=self.ticks)
        except MigrateError:
            # The process never left: restore the source's net
            # bookkeeping and tombstones so the refusal is invisible.
            reattach(source, process, slice_, now=self.ticks)
            raise
        source.scheduler.release(process.pid)
        source.remove_process(process)
        ticket.process = adopted
        ticket.shard_id = dst
        awaiting = slice_["net"].get("awaiting")
        if awaiting is not None:
            key = adopted_key(awaiting)
            # A chained migration moves the awaiting entry again: every
            # earlier tombstone for this request now resolves at the
            # *new* home, so retarget the watch before adding this hop.
            for record in self._migrations:
                if record["key"] == key:
                    record["target"] = dst
            self._migrations.append(
                {
                    "source": source.id,
                    "target": dst,
                    "key": key,
                    "source_key": source_key(awaiting),
                }
            )
        return adopted

    def _retire_tombstones(self) -> None:
        """Drop reply forwards whose reply has landed at the new home.

        The adopter's ``_awaiting`` entry disappears when the forwarded
        reply (or error, or the retry discipline's own fault) resolves
        it — from then on the old home's tombstone can serve no one.
        Call forwards are deliberately never retired: a late transport
        duplicate must never find a shard willing to execute the
        request a second time.
        """
        if not self._migrations:
            return
        still_pending = []
        for record in self._migrations:
            if record["key"] in self.shards[record["target"]]._awaiting:
                still_pending.append(record)
            else:
                self.shards[record["source"]].retire_forward(record["source_key"])
        self._migrations = still_pending

    def _mark_completions(self) -> None:
        for ticket in self.tickets:
            if ticket.completed_tick is None and ticket.done:
                ticket.completed_tick = self.ticks
                if ticket.status is ProcessStatus.DONE:
                    self.stats.completed += 1
                else:
                    self.stats.faulted += 1
                # Close the root span so the stitcher sees an end stamp
                # (remote-served spans get theirs from the reply flush).
                shard = self.shards[ticket.shard_id]
                tracer = shard.machine.tracer
                if tracer is not None:
                    tracer.emit(
                        "net.reply",
                        f"{ticket.module}.{ticket.proc}",
                        span=ticket.span,
                        shard=shard.id,
                        msg="root",
                        pid=ticket.process.pid,
                    )

    # -- observability -----------------------------------------------------

    def meters(self) -> dict[int, dict]:
        """Per-shard modelled meters (the determinism fixture)."""
        return {
            shard.id: {
                "counter": shard.machine.counter.snapshot(),
                "steps": shard.machine.steps,
                "switches": shard.scheduler.stats.switches,
                "blocks": shard.scheduler.stats.blocks,
            }
            for shard in self.shards
        }

    def trace_events(self) -> dict[int, list]:
        """Per-shard recorded events (requires ``record=True``)."""
        return {
            shard.id: list(shard.recorder.events)
            for shard in self.shards
            if shard.recorder is not None
        }
