"""Placement co-location: plan pins from observed cross-shard traffic.

Every Remote XFER is a caller paying one modelled process switch and the
transport moving wire words; a *local* call to the same procedure costs
neither.  So the cheapest placement keeps chatty caller/callee module
pairs on one shard — and the stitched span forest
(:mod:`repro.net.stitch`) records exactly who talks to whom and how
often.  ``repro optimize --placement`` runs a recorded serving session,
stitches the per-shard traces, and emits a ``repro-pins/1`` pin map
that ``repro serve --pins FILE`` loads.

The planner is a greedy agglomerative pass:

1. count cross-module call edges in the span forest (a parent span in
   module A with a child span in module B is one A->B call);
2. merge the heaviest edges first into co-location groups, refusing a
   merge that would put more than ``ceil(spans / shards * balance)``
   observed activations in one group (so one mega-group cannot absorb
   the whole image and starve the other shards);
3. deal the groups onto shards, heaviest group first onto the least
   loaded shard.

The output is advice, not mechanism: a pin map is an ordinary
:class:`~repro.net.placement.Placement` pin dict, applied at cluster
build (or pushed to live workers with
:meth:`~repro.net.procserve.ProcessCluster.repin`, fenced by the
placement epoch).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field

from repro.errors import NetError
from repro.net.stitch import Span

#: Version tag of the pin-map document.
PINS_SCHEMA = "repro-pins/1"


def span_edges(roots: list[Span]) -> dict[tuple[str, str], int]:
    """Cross-module call counts ``(caller_module, callee_module) -> n``
    from a stitched span forest.  Intra-module calls never appear —
    they are invisible to stitching and free to placement."""
    edges: dict[tuple[str, str], int] = {}
    for root in roots:
        for node, _ in root.walk():
            caller = node.name.partition(".")[0]
            for child in node.children:
                callee = child.name.partition(".")[0]
                if caller != callee:
                    key = (caller, callee)
                    edges[key] = edges.get(key, 0) + 1
    return edges


def _span_load(roots: list[Span]) -> dict[str, int]:
    """Observed activations per module — the balance weight."""
    load: dict[str, int] = {}
    for root in roots:
        for node, _ in root.walk():
            module = node.name.partition(".")[0]
            load[module] = load.get(module, 0) + 1
    return load


@dataclass
class PlacementPlan:
    """A planned pin map plus the evidence it was derived from."""

    shards: int
    pins: dict[str, int]
    edges: list[dict]
    groups: list[list[str]] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "schema": PINS_SCHEMA,
            "shards": self.shards,
            "pins": dict(self.pins),
            "edges": list(self.edges),
            "groups": [list(group) for group in self.groups],
        }


def plan_pins(
    roots: list[Span], shards: int, balance: float = 1.5
) -> PlacementPlan:
    """Greedy co-location plan from a stitched span forest."""
    if shards < 1:
        raise NetError(f"a plan needs at least one shard, got {shards}")
    edges = span_edges(roots)
    load = _span_load(roots)
    if not load:
        raise NetError("no spans to plan from (was the run recorded?)")
    cap = math.ceil(sum(load.values()) / shards * balance)

    # Union-find over modules; merge heaviest cross-shard edges first.
    group_of = {module: {module} for module in load}
    ranked = sorted(edges.items(), key=lambda kv: (-kv[1], kv[0]))
    if ranked:
        # The whole point of the pass is that the hottest pair ends up
        # together; never let the balance cap forbid that one merge.
        caller, callee = ranked[0][0]
        cap = max(cap, load[caller] + load[callee])
    for (caller, callee), _count in ranked:
        a, b = group_of[caller], group_of[callee]
        if a is b:
            continue
        if sum(load[m] for m in a | b) > cap:
            continue
        merged = a | b
        for module in merged:
            group_of[module] = merged
    groups: list[list[str]] = []
    seen: set[int] = set()
    for group in group_of.values():
        if id(group) not in seen:
            seen.add(id(group))
            groups.append(sorted(group))
    # Heaviest group first onto the least loaded shard.
    groups.sort(key=lambda g: (-sum(load[m] for m in g), g))
    shard_load = {shard: 0 for shard in range(shards)}
    pins: dict[str, int] = {}
    for group in groups:
        target = min(shard_load, key=lambda s: (shard_load[s], s))
        weight = sum(load[m] for m in group)
        shard_load[target] += weight
        for module in group:
            pins[module] = target
    return PlacementPlan(
        shards=shards,
        pins=pins,
        edges=[
            {"caller": caller, "callee": callee, "calls": count}
            for (caller, callee), count in ranked
        ],
        groups=groups,
    )


def load_pins(path: str) -> tuple[dict[str, int], int]:
    """Read a ``repro-pins/1`` document; returns ``(pins, shards)``."""
    try:
        doc = json.loads(open(path).read())
    except (OSError, json.JSONDecodeError) as fault:
        raise NetError(f"cannot read pin map {path}: {fault}") from fault
    if not isinstance(doc, dict) or doc.get("schema") != PINS_SCHEMA:
        raise NetError(f"{path} is not a {PINS_SCHEMA} pin map")
    pins = doc.get("pins")
    if not isinstance(pins, dict):
        raise NetError(f"{path}: pin map has no pins object")
    for module, shard in pins.items():
        if not isinstance(shard, int):
            raise NetError(f"{path}: pin for {module!r} is not a shard id")
    return dict(pins), int(doc.get("shards", 0))
