"""Net chaos: drive a split cluster through transport faults, on I1-I4.

The conformance question mirrors the machine-level chaos harness
(:mod:`repro.faults.chaos`), lifted to the wire: under a seeded plan of
``net_*`` injections — drops, duplicates, delays, partitions — a
cluster must either **RECOVER** (the retry discipline re-sends, dedup
keeps execution at-most-once, and the final results equal the unfaulted
single-machine reference) or **TRAP** cleanly (the root request faults
with full diagnostics: a named trap, the failing procedure, a detail
that tells the operator what was lost).  Silent corruption — a wrong
answer, a hung pump, a request executed twice — is non-conformance.

Every case also re-runs itself: the same (preset, plan) pair must
produce bit-identical per-shard modelled meters twice in a row, faults
and all, because the transport's fault policy is a pure function of the
send stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import NetError
from repro.faults.plan import FaultPlan, Injection, on_event
from repro.interp.processes import ProcessStatus
from repro.net.cluster import DEFAULT_MAX_RETRIES, Cluster
from repro.net.transport import InProcessTransport, NetFaultPolicy
from repro.workloads.programs import program

NET_CHAOS_SCHEMA = "repro-net-chaos/1"

ALL_PRESETS = ("i1", "i2", "i3", "i4")

#: The split program every net case runs: Main on shard 0, Math on
#: shard 1, so every Math call is a Remote XFER exposed to the plan.
CASE_PROGRAM = "mathlib"
CASE_PINS = {"Main": 0, "Math": 1}
CASE_SHARDS = 2


def _plan_net_partition(rng: random.Random) -> tuple[Injection, ...]:
    """A partition mid-conversation, plus a drop and a duplicate."""
    return (
        Injection(
            on_event("net.send", rng.randrange(2, 20)),
            "net_partition",
            detail=f"0->1:{rng.randrange(2, 6)}",
        ),
        Injection(on_event("net.send", rng.randrange(20, 40)), "net_drop"),
        Injection(on_event("net.send", rng.randrange(40, 55)), "net_dup"),
    )


def _plan_net_drop_storm(rng: random.Random) -> tuple[Injection, ...]:
    """Several scattered drops; retries must cover every one."""
    ordinals = sorted(rng.sample(range(2, 55), 4))
    return tuple(
        Injection(on_event("net.send", ordinal), "net_drop")
        for ordinal in ordinals
    )


def _plan_net_dup_delay(rng: random.Random) -> tuple[Injection, ...]:
    """Duplicates and delays; dedup must keep execution at-most-once."""
    first, second = sorted(rng.sample(range(2, 50), 2))
    return (
        Injection(on_event("net.send", first), "net_dup"),
        Injection(
            on_event("net.send", second),
            "net_delay",
            detail=str(rng.randrange(2, 5)),
        ),
    )


#: Transmissions one request may make before its caller faults: the
#: initial send plus DEFAULT_MAX_RETRIES retransmissions (the contract
#: Shard.retry documents and test_net_transport pins).
RETRY_BUDGET_SENDS = 1 + DEFAULT_MAX_RETRIES
#: Consecutive drops in the blackhole plan: the full transmission
#: budget plus slack for frames of other conversations that may share
#: the targeted send ordinals.  Derived, not hard-coded, so a changed
#: retry default cannot quietly turn the blackhole into a recoverable
#: drop storm.
BLACKHOLE_DROPS = RETRY_BUDGET_SENDS + 2


def _plan_net_blackhole(rng: random.Random) -> tuple[Injection, ...]:
    """Swallow one call *and every retry of it*: enough consecutive
    drops (:data:`BLACKHOLE_DROPS` — the ``1 + max_retries``
    transmission budget, plus slack) outlast the retry budget, so the
    caller must trap with ``lost_request`` — never hang, never answer
    wrong."""
    start = rng.randrange(2, 40)
    return tuple(
        Injection(on_event("net.send", start + offset), "net_drop")
        for offset in range(BLACKHOLE_DROPS)
    )


NET_PLANS = {
    "net_partition": _plan_net_partition,
    "net_drop_storm": _plan_net_drop_storm,
    "net_dup_delay": _plan_net_dup_delay,
    "net_blackhole": _plan_net_blackhole,
}


def make_net_plan(name: str, seed: int) -> FaultPlan:
    """Instantiate canned net plan *name*, seeded and reproducible."""
    try:
        generator = NET_PLANS[name]
    except KeyError:
        raise NetError(
            f"unknown net chaos plan {name!r} (known: {', '.join(sorted(NET_PLANS))})"
        ) from None
    rng = random.Random(f"{name}:{seed}")
    return FaultPlan(name=name, seed=seed, injections=generator(rng))


@dataclass
class NetOutcome:
    """How one (preset, plan) cluster run ended."""

    klass: str  # "recovered" | "trapped"
    results: list[int] = field(default_factory=list)
    trap: str = ""
    detail: str = ""
    ticks: int = 0
    injections_fired: int = 0
    wire: dict = field(default_factory=dict)
    meters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "class": self.klass,
            "results": list(self.results),
            "trap": self.trap,
            "detail": self.detail,
            "ticks": self.ticks,
            "injections_fired": self.injections_fired,
            "wire": dict(self.wire),
        }


def run_net_case(preset: str, plan: FaultPlan) -> NetOutcome:
    """One cluster run of the split case program under *plan*."""
    prog = program(CASE_PROGRAM)
    policy = NetFaultPolicy(plan)
    cluster = Cluster(
        list(prog.sources),
        shards=CASE_SHARDS,
        config=preset,
        pins=CASE_PINS,
        transport=InProcessTransport(policy=policy),
    )
    ticket = cluster.submit(prog.entry[0], prog.entry[1], *prog.args)
    cluster.pump()
    outcome = NetOutcome(
        klass="recovered",
        ticks=cluster.ticks,
        injections_fired=len(policy.fired),
        wire=cluster.transport.stats.as_dict(),
        meters=cluster.meters(),
    )
    if ticket.status is ProcessStatus.DONE:
        outcome.results = ticket.results
    elif ticket.status is ProcessStatus.FAULTED:
        fault = ticket.process.fault or {}
        outcome.klass = "trapped"
        outcome.trap = fault.get("trap", "")
        outcome.detail = fault.get("detail", "")
    else:  # pragma: no cover - pump() only returns at quiescence
        raise NetError(f"case ended with ticket status {ticket.status}")
    return outcome


def _check_outcome(preset: str, outcome: NetOutcome, reference: list[int]) -> list[str]:
    failures: list[str] = []
    if outcome.klass == "recovered":
        if outcome.results != reference:
            failures.append(
                f"{preset}: recovered with results {outcome.results} "
                f"!= reference {reference}"
            )
    else:
        if not outcome.trap:
            failures.append(f"{preset}: trapped without a trap kind")
        if not outcome.detail:
            failures.append(f"{preset}: trapped without diagnostics")
    return failures


@dataclass
class NetCaseResult:
    """One (plan, seed) cell: outcomes on every preset."""

    plan: dict
    seed: int
    outcomes: dict[str, NetOutcome]
    failures: list[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "plan": self.plan,
            "seed": self.seed,
            "outcomes": {p: o.to_dict() for p, o in self.outcomes.items()},
            "failures": list(self.failures),
        }


@dataclass
class NetChaosReport:
    """The sweep: plans x seeds, each across the presets."""

    cases: list[NetCaseResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    def to_dict(self) -> dict:
        return {
            "schema": NET_CHAOS_SCHEMA,
            "ok": self.ok,
            "cases": [case.to_dict() for case in self.cases],
        }

    def summary(self) -> str:
        by_class: dict[str, int] = {}
        for case in self.cases:
            for outcome in case.outcomes.values():
                by_class[outcome.klass] = by_class.get(outcome.klass, 0) + 1
        lines = [
            f"net chaos: {len(self.cases)} cases "
            f"({CASE_PROGRAM} split across {CASE_SHARDS} shards)",
            "outcomes: "
            + ", ".join(f"{k}={v}" for k, v in sorted(by_class.items())),
        ]
        failed = [case for case in self.cases if not case.ok]
        if failed:
            lines.append(f"FAILED: {len(failed)} non-conformant cases")
            for case in failed[:10]:
                lines.append(
                    f"  plan={case.plan['name']} seed={case.seed}: "
                    f"{'; '.join(case.failures)}"
                )
        else:
            lines.append("all implementations conformant")
        return "\n".join(lines)


def run_net_case_process(preset: str, plan: FaultPlan) -> NetOutcome:
    """One run of the split case program across real worker processes.

    The same seeded plan drives the front door's fault router instead
    of the in-process transport: every routed frame is a ``net.send``,
    so drops, duplicates, delays, and partitions hit real sockets
    between real OS processes.
    """
    from repro.errors import LostRequest, TrapError
    from repro.net.procserve import ProcessCluster

    prog = program(CASE_PROGRAM)
    cluster = ProcessCluster(
        list(prog.sources),
        shards=CASE_SHARDS,
        config=preset,
        pins=CASE_PINS,
        fault_plan=plan,
        timeout_s=0.25,
        tick_seconds=0.02,
    )
    try:
        outcome = NetOutcome(klass="recovered")
        try:
            outcome.results = cluster.call(prog.entry[0], prog.entry[1], *prog.args)
        except TrapError as fault:
            outcome.klass = "trapped"
            outcome.trap = fault.trap
            outcome.detail = fault.detail
        except LostRequest as fault:
            outcome.klass = "trapped"
            outcome.trap = "lost_request"
            outcome.detail = str(fault)
        outcome.injections_fired = len(cluster.policy.fired)
        outcome.wire = cluster.stats.as_dict()
        outcome.meters = cluster.meters()
    finally:
        cluster.close()
    return outcome


def run_net_chaos_process(
    plans: tuple[str, ...] = tuple(NET_PLANS),
    seeds: int | tuple[int, ...] = 2,
    presets: tuple[str, ...] = ("i2",),
) -> NetChaosReport:
    """The chaos sweep against process-backed transport.

    Conformance here is **outcome-class only**: every case must either
    recover with the reference results or trap with full diagnostics —
    never hang, never answer wrong, never execute twice.  The
    in-process sweep's meter-determinism re-run is deliberately *not*
    applied: with real sockets and real timers, frame arrival order is
    a function of host scheduling, not of the plan alone, so two runs
    of the same plan may legally retry (and therefore meter) slightly
    differently.  Per-activation meter conformance for process mode is
    pinned separately (tests/test_net_proc.py) where it is well
    defined.
    """
    seed_list = tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
    prog = program(CASE_PROGRAM)
    reference = list(prog.expect_results)
    report = NetChaosReport()
    for plan_name in plans:
        for seed in seed_list:
            plan = make_net_plan(plan_name, seed)
            outcomes: dict[str, NetOutcome] = {}
            failures: list[str] = []
            for preset in presets:
                outcome = run_net_case_process(preset, plan)
                outcomes[preset] = outcome
                failures.extend(_check_outcome(preset, outcome, reference))
            report.cases.append(
                NetCaseResult(
                    plan=plan.to_dict(),
                    seed=seed,
                    outcomes=outcomes,
                    failures=failures,
                )
            )
    return report


#: Plans the migration sweep races against: a partition that heals and
#: a duplicate+delay plan — the two shapes that interact with the
#: forwarding tombstones (a delayed or duplicated reply must chase the
#: process to its new home; a retransmission must bounce off the
#: source's call forward without executing twice).  ``net_blackhole``
#: is excluded by design: it ends in a clean trap, which is orthogonal
#: to migration.
MIGRATION_PLANS = ("net_partition", "net_dup_delay")

#: Shards in a migration case: the split pair plus a spare to adopt.
MIGRATION_SHARDS = 3


def run_net_migration_case(
    preset: str, plan: FaultPlan, migrate_at: int
) -> NetOutcome:
    """One chaos run that migrates the root request mid-flight.

    The split case program runs under *plan* on a three-shard cluster;
    at the first pump tick >= *migrate_at* where the root sits BLOCKED
    on its remote reply, it is migrated (exclusive mode, so the sweep
    is uniform across I1-I4) to the spare shard 2.  The migration races
    whatever the plan is doing to the wire — the case must still end
    RECOVERED with the reference results, and two runs of the same
    (preset, plan, migrate_at) must meter identically.
    """
    from repro.net.migrate import MigrateError

    prog = program(CASE_PROGRAM)
    policy = NetFaultPolicy(plan)
    cluster = Cluster(
        list(prog.sources),
        shards=MIGRATION_SHARDS,
        config=preset,
        pins=CASE_PINS,
        transport=InProcessTransport(policy=policy),
    )
    ticket = cluster.submit(prog.entry[0], prog.entry[1], *prog.args)
    migrated = False
    moved = True
    while moved:
        moved = cluster.pump_tick()
        if (
            not migrated
            and cluster.ticks >= migrate_at
            and ticket.process.status is ProcessStatus.BLOCKED
        ):
            try:
                cluster.migrate(ticket, MIGRATION_SHARDS - 1, mode="exclusive")
            except MigrateError:
                # The spare was not idle at this tick (a duplicated call
                # can be executing there); try again at the next one.
                continue
            migrated = True
    cluster.stats.ticks = cluster.ticks
    outcome = NetOutcome(
        klass="recovered",
        ticks=cluster.ticks,
        injections_fired=len(policy.fired),
        wire=cluster.transport.stats.as_dict(),
        meters=cluster.meters(),
    )
    if ticket.status is ProcessStatus.DONE:
        outcome.results = ticket.results
    elif ticket.status is ProcessStatus.FAULTED:
        fault = ticket.process.fault or {}
        outcome.klass = "trapped"
        outcome.trap = fault.get("trap", "")
        outcome.detail = fault.get("detail", "")
    else:
        raise NetError(
            f"migration case ended with ticket status {ticket.status}"
        )
    outcome.wire["migrated"] = migrated
    return outcome


def run_net_migration_chaos(
    plans: tuple[str, ...] = MIGRATION_PLANS,
    seeds: int | tuple[int, ...] = 3,
    presets: tuple[str, ...] = ALL_PRESETS,
) -> NetChaosReport:
    """The migration-under-chaos sweep: every case migrates the root
    mid-flight at a seeded tick and must still recover with the
    reference results, deterministically (meters match on a re-run)."""
    seed_list = tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
    prog = program(CASE_PROGRAM)
    reference = list(prog.expect_results)
    report = NetChaosReport()
    for plan_name in plans:
        for seed in seed_list:
            plan = make_net_plan(plan_name, seed)
            migrate_at = random.Random(f"migrate:{plan_name}:{seed}").randrange(1, 7)
            outcomes: dict[str, NetOutcome] = {}
            failures: list[str] = []
            for preset in presets:
                outcome = run_net_migration_case(preset, plan, migrate_at)
                rerun = run_net_migration_case(preset, plan, migrate_at)
                if rerun.meters != outcome.meters:
                    failures.append(
                        f"{preset}: per-shard meters differ between two "
                        f"seeded runs of the same migrated plan"
                    )
                outcomes[preset] = outcome
                if outcome.klass != "recovered":
                    failures.append(
                        f"{preset}: migration case must recover, got "
                        f"{outcome.klass} ({outcome.trap}: {outcome.detail})"
                    )
                failures.extend(_check_outcome(preset, outcome, reference))
            report.cases.append(
                NetCaseResult(
                    plan=plan.to_dict(),
                    seed=seed,
                    outcomes=outcomes,
                    failures=failures,
                )
            )
    return report


def run_net_chaos(
    plans: tuple[str, ...] = tuple(NET_PLANS),
    seeds: int | tuple[int, ...] = 3,
    presets: tuple[str, ...] = ALL_PRESETS,
) -> NetChaosReport:
    """The sweep: every plan, seeded, across the presets — with the
    determinism re-run baked in (meters must match twice)."""
    seed_list = tuple(range(seeds)) if isinstance(seeds, int) else tuple(seeds)
    prog = program(CASE_PROGRAM)
    reference = list(prog.expect_results)
    report = NetChaosReport()
    for plan_name in plans:
        for seed in seed_list:
            plan = make_net_plan(plan_name, seed)
            outcomes: dict[str, NetOutcome] = {}
            failures: list[str] = []
            for preset in presets:
                outcome = run_net_case(preset, plan)
                rerun = run_net_case(preset, plan)
                if rerun.meters != outcome.meters:
                    failures.append(
                        f"{preset}: per-shard meters differ between two "
                        f"seeded runs of the same plan"
                    )
                outcomes[preset] = outcome
                failures.extend(_check_outcome(preset, outcome, reference))
            report.cases.append(
                NetCaseResult(
                    plan=plan.to_dict(),
                    seed=seed,
                    outcomes=outcomes,
                    failures=failures,
                )
            )
    return report
