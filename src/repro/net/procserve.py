"""Process mode: every shard a real OS process behind an asyncio front door.

:class:`~repro.net.cluster.Cluster` pumps its shards cooperatively in
one host process; this module promotes the same shards to worker
**processes** (:mod:`repro.net.worker`) without changing what travels
between them: workers speak ``repro-wire/1`` over newline-framed
sockets, calls still arrive as ordinary root activations, dedup and the
reply cache still make execution at-most-once, and the modelled meters
still never see the wire.  Management (meters, trace events, snapshot,
restore, shutdown) rides a separate ``repro-ctl/1`` schema so the data
plane stays exactly what the conformance suite pins.

The **front door** is one asyncio event loop on a background thread:

* it binds a listener (a Unix socket in a private tempdir; TCP loopback
  where ``AF_UNIX`` is unavailable), forks the workers **before** the
  loop thread starts, and accepts one connection per worker;
* each worker's ``hello`` is cross-checked against the others — same
  configuration token, same module census — the same deterministic-link
  handshake the in-process cluster performs;
* wire frames are routed by destination: shard-to-shard traffic is
  forwarded between workers, and replies addressed to the front door's
  own pseudo-shard id (:data:`FRONT_DOOR`) resolve the caller futures;
* root submissions are ordinary wire ``call`` records from
  ``src == FRONT_DOOR``, which buys the front door the worker-side
  dedup/at-most-once machinery for free, including its timeout/retry
  discipline: a request is transmitted at most ``1 + max_retries``
  times, then raises :class:`~repro.errors.LostRequest`.

Chaos plans plug into the router: a :class:`~repro.net.transport.
NetFaultPolicy` sees every routed frame as a ``net.send``, so the same
seeded ``net_*`` plans that drive the in-process transport drive real
processes — drops and duplicates act immediately, delays and partition
heals become real timers (``tick_seconds`` per modelled tick).

:class:`ProcessServer` is the serving layer over it, with the same
admission disciplines as :class:`~repro.net.serve.Server` — bounded
per-worker in-flight requests with counted backpressure stalls,
batched admission, exponential-backoff resubmission — measured in
seconds instead of pump ticks.  Two routes:

* ``"dispatch"`` — every request enters ``Main.dispatch`` on its home
  worker and fans out to the leaf modules as worker-to-worker Remote
  XFERs (the conformance route);
* ``"direct"`` — the front door routes each request straight to its
  leaf procedure on a round-robin worker, with every worker self-homed
  (``self_homed=True``) so requests are embarrassingly parallel (the
  scale route: this is how the 1M-request benchmark runs).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import socket
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.errors import LostRequest, NetError, TrapError, TruncatedFrameError, WireError
from repro.faults.plan import FaultPlan
from repro.interp.machineconfig import MachineConfig
from repro.net import ctl, wire
from repro.net.cluster import DEFAULT_MAX_RETRIES
from repro.net.frame import RECV_BYTES, FrameBuffer, encode_frame
from repro.net.placement import DEFAULT_VNODES, Placement
from repro.net.serve import Request
from repro.net.transport import NetFaultPolicy, TransportStats, _parse_partition
from repro.net.wire import wire_words
from repro.net.worker import FRONT_DOOR, run_worker

__all__ = [
    "FRONT_DOOR",
    "ProcessCluster",
    "ProcessServeReport",
    "ProcessServer",
    "check_census",
    "run_process_serve",
]

#: Seconds the constructor waits for every worker to connect and greet.
STARTUP_TIMEOUT = 120.0

#: Seconds of real time per modelled transport tick: ``net_delay`` and
#: ``net_partition`` details are stated in ticks, and process mode turns
#: them into timers at this exchange rate.
DEFAULT_TICK_SECONDS = 0.05


def check_census(
    hellos: dict[int, wire.Message], placement_epoch: int
) -> None:
    """The handshake cross-check, centralized and testable.

    Every worker must present the same configuration token, the same
    module census, and — new with live repinning — the **placement
    epoch** the front door holds.  A worker forked before a repin (or
    one whose spec was built from a stale pin map) would route calls by
    a different table than its peers; before the epoch travelled in the
    hello, that drift was silently ignored and requests landed on the
    wrong shard.  Now it fails the handshake loudly.
    """
    reference = hellos[min(hellos)].body
    for shard_id, hello in hellos.items():
        body = hello.body
        if body["config"] != reference["config"]:
            raise NetError(
                f"worker {shard_id} handshake failed: configuration "
                "token mismatch — Remote XFER requires identical "
                "machine configurations"
            )
        if body["modules"] != reference["modules"]:
            raise NetError(
                f"worker {shard_id} handshake failed: module census "
                "differs — shards must link the same image"
            )
        epoch = body.get("epoch", 0)
        if epoch != placement_epoch:
            raise NetError(
                f"worker {shard_id} handshake failed: placement epoch "
                f"{epoch} != front door epoch {placement_epoch} — the "
                "pin map changed after the worker spec was built; "
                "propagate pins with ProcessCluster.repin, never by "
                "mutating Placement.pins directly"
            )


class _WorkerHandle:
    """Front-door bookkeeping for one connected worker."""

    __slots__ = ("id", "writer", "alive", "error", "hello")

    def __init__(self, shard_id: int, writer: asyncio.StreamWriter, hello: wire.Message) -> None:
        self.id = shard_id
        self.writer = writer
        self.alive = True
        self.error: str | None = None
        self.hello = hello


class ProcessCluster:
    """N shard worker processes behind one asyncio front door.

    The public methods are synchronous and thread-safe: each marshals
    onto the front door's event loop and blocks for the result, so the
    cluster drops into code written for the in-process
    :class:`~repro.net.cluster.Cluster` (``call`` raises
    :class:`~repro.errors.TrapError` on a remote fault and
    :class:`~repro.errors.LostRequest` on retry exhaustion; ``meters``
    returns the same per-shard shape).
    """

    def __init__(
        self,
        sources: list[str],
        shards: int = 2,
        config: MachineConfig | str | None = None,
        entry: tuple[str, str] = ("Main", "main"),
        pins: dict[str, int] | None = None,
        vnodes: int = DEFAULT_VNODES,
        record: bool = False,
        quantum: int = 0,
        timeout_s: float = 1.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        root_timeout_s: float | None = None,
        fault_plan: FaultPlan | None = None,
        tick_seconds: float = DEFAULT_TICK_SECONDS,
        self_homed: bool = False,
    ) -> None:
        if shards < 1:
            raise NetError(f"a cluster needs at least one shard, got {shards}")
        if isinstance(config, str):
            config = MachineConfig.preset(config)
        self.config = config or MachineConfig.i2()
        self.shards = shards
        self.placement = Placement(list(range(shards)), pins=pins, vnodes=vnodes)
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        # The front door must outwait a worker's own full retry cycle
        # (its sub-calls may be riding out chaos), so its per-attempt
        # patience defaults to the worker's whole transmission budget.
        self.root_timeout_s = (
            root_timeout_s
            if root_timeout_s is not None
            else timeout_s * (2 + max_retries)
        )
        self.tick_seconds = tick_seconds
        self.policy = NetFaultPolicy(fault_plan) if fault_plan is not None else None
        self.stats = TransportStats()
        self.worker_errors: list[str] = []

        self._handles: dict[int, _WorkerHandle] = {}
        self._pending: dict[int, asyncio.Future] = {}
        self._ctl_pending: dict[tuple[int, int], asyncio.Future] = {}
        self._next_request = 0
        self._next_ctl = 0
        self._held: list[tuple[wire.Message, str]] = []
        self._partitions: dict[str, asyncio.TimerHandle] = {}
        self._closed = False

        # Listener first: bound and listening before any worker forks,
        # so worker connects land in the backlog even while the loop
        # thread is still coming up.
        self._tempdir: str | None = None
        try:
            self._tempdir = tempfile.mkdtemp(prefix="repro-net-")
            path = os.path.join(self._tempdir, "front.sock")
            lsock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            lsock.bind(path)
            self.address: tuple = ("unix", path)
        except (AttributeError, OSError):  # pragma: no cover - no AF_UNIX
            lsock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            lsock.bind(("127.0.0.1", 0))
            host, port = lsock.getsockname()
            self.address = ("tcp", host, port)
        lsock.listen(shards + 4)
        self._lsock = lsock

        # Workers fork before the asyncio loop thread exists: forking a
        # process that already runs threads is where fork goes wrong.
        spec_base = {
            "shards": shards,
            "sources": tuple(sources),
            "config": self.config,
            "entry": tuple(entry),
            "pins": dict(pins) if pins else None,
            "vnodes": vnodes,
            "quantum": quantum,
            "record": record,
            "timeout_s": timeout_s,
            "max_retries": max_retries,
            "self_homed": self_homed,
            "placement_epoch": self.placement.epoch,
        }
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        self._procs: list = []
        for shard_id in range(shards):
            spec = dict(spec_base, shard_id=shard_id)
            proc = context.Process(
                target=run_worker, args=(self.address, spec), daemon=True
            )
            proc.start()
            self._procs.append(proc)

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="repro-front-door", daemon=True
        )
        self._thread.start()
        try:
            self._run(self._start(), timeout=STARTUP_TIMEOUT + 5)
        except BaseException:
            self.close()
            raise

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> ProcessCluster:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run(self, coro, timeout: float | None = None):
        """Run a coroutine on the front-door loop from the caller thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(timeout)

    async def _start(self) -> None:
        self._ready: asyncio.Future = self._loop.create_future()
        if self.address[0] == "unix":
            self._server = await asyncio.start_unix_server(
                self._handle_connection, sock=self._lsock
            )
        else:  # pragma: no cover - AF_UNIX always available on CI
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._lsock
            )
        try:
            await asyncio.wait_for(asyncio.shield(self._ready), STARTUP_TIMEOUT)
        except asyncio.TimeoutError:
            missing = sorted(set(range(self.shards)) - set(self._handles))
            raise NetError(
                f"worker(s) {missing} never completed the handshake"
                + (f"; worker errors: {'; '.join(self.worker_errors)}"
                   if self.worker_errors else "")
            ) from None

    def close(self) -> None:
        """Shut the workers down cleanly, then tear the loop down."""
        if self._closed:
            return
        self._closed = True

        async def _shutdown() -> None:
            for handle in list(self._handles.values()):
                if handle.alive:
                    try:
                        await self._control(handle.id, "shutdown", timeout=5.0)
                    except (NetError, asyncio.TimeoutError):
                        pass
                try:
                    handle.writer.close()
                except Exception:  # pragma: no cover - already torn down
                    pass
            server = getattr(self, "_server", None)
            if server is not None:
                server.close()

        if self._thread.is_alive():
            try:
                self._run(_shutdown(), timeout=15)
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=2)
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5)
        if not self._thread.is_alive():
            self._loop.close()
        try:
            self._lsock.close()
        except OSError:  # pragma: no cover
            pass
        if self._tempdir is not None:
            try:
                os.unlink(os.path.join(self._tempdir, "front.sock"))
            except OSError:
                pass
            try:
                os.rmdir(self._tempdir)
            except OSError:  # pragma: no cover
                pass

    # -- connection handling (loop thread) ---------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        framer = FrameBuffer()
        shard_id: int | None = None
        try:
            while True:
                chunk = await reader.read(RECV_BYTES)
                if not chunk:
                    framer.finish()  # raises on a partial frame: data loss
                    break
                for line in framer.feed(chunk):
                    doc = json.loads(line)
                    schema = doc.get("schema") if isinstance(doc, dict) else None
                    if schema == wire.WIRE_SCHEMA:
                        message = wire.decode_doc(doc)
                        if shard_id is None:
                            shard_id = self._register(message, writer)
                            continue
                        self._offer(message, line)
                    elif schema == ctl.CTL_SCHEMA:
                        self._control_frame(ctl.decode_doc(doc))
                    else:
                        raise WireError(f"unroutable frame schema {schema!r}")
        except (TruncatedFrameError, WireError, NetError, json.JSONDecodeError) as fault:
            self._note_error(shard_id, str(fault))
        except ConnectionError:  # pragma: no cover - peer reset
            pass
        finally:
            if shard_id is not None:
                self._mark_dead(shard_id)
            writer.close()

    def _register(self, message: wire.Message, writer: asyncio.StreamWriter) -> int:
        if message.kind != "hello":
            raise NetError(
                f"worker connection must open with hello, got {message.kind!r}"
            )
        shard_id = message.src
        if shard_id in self._handles:
            raise NetError(f"worker {shard_id} connected twice")
        self._handles[shard_id] = _WorkerHandle(shard_id, writer, message)
        if len(self._handles) == self.shards and not self._ready.done():
            # The in-process handshake, centralized: every worker must
            # present the same configuration token, module census, and
            # placement epoch (see check_census).
            try:
                check_census(
                    {h.id: h.hello for h in self._handles.values()},
                    self.placement.epoch,
                )
            except NetError as fault:
                self._ready.set_exception(fault)
                return shard_id
            self._ready.set_result(None)
        return shard_id

    def _note_error(self, shard_id: int | None, detail: str) -> None:
        label = f"worker {shard_id}" if shard_id is not None else "worker"
        self.worker_errors.append(f"{label}: {detail}")
        if shard_id is not None:
            handle = self._handles.get(shard_id)
            if handle is not None and handle.error is None:
                handle.error = detail

    def _mark_dead(self, shard_id: int) -> None:
        handle = self._handles.get(shard_id)
        if handle is None:
            return
        handle.alive = False
        # Control futures for a dead worker can never resolve; wire
        # futures are left to the retry discipline (-> LostRequest).
        for key in [k for k in self._ctl_pending if k[0] == shard_id]:
            future = self._ctl_pending.pop(key)
            if not future.done():
                future.set_exception(NetError(
                    f"worker {shard_id} died"
                    + (f": {handle.error}" if handle.error else "")
                ))

    def _control_frame(self, record: ctl.Control) -> None:
        if record.kind == "worker_error":
            self._note_error(record.shard, record.body["error"])
            if not self._ready.done():
                self._ready.set_exception(NetError(self.worker_errors[-1]))
            return
        future = self._ctl_pending.get((record.shard, record.seq))
        if future is not None and not future.done():
            future.set_result(record)

    # -- the fault router (loop thread) ------------------------------------

    def _offer(self, message: wire.Message, raw: str) -> None:
        """One ``net.send``: count it, let the chaos policy act, route."""
        self.stats.sent += 1
        self.stats.wire_words += wire_words(raw)
        copies = 1
        delay = 0.0
        if self.policy is not None:
            for injection in self.policy.actions_for(message):
                if injection.action == "net_drop":
                    self.stats.dropped += 1
                    return
                if injection.action == "net_dup":
                    copies += 1
                    self.stats.duplicated += 1
                elif injection.action == "net_delay":
                    ticks = int(injection.detail or "1")
                    delay = max(delay, ticks * self.tick_seconds)
                    self.stats.delayed += 1
                elif injection.action == "net_partition":
                    key, ticks = _parse_partition(injection.detail)
                    self._partition(key, ticks * self.tick_seconds)
        for _ in range(copies):
            if delay > 0:
                self._loop.call_later(delay, self._route_frame, message, raw)
            else:
                self._route_frame(message, raw)

    def _partition(self, key: str, seconds: float) -> None:
        timer = self._partitions.pop(key, None)
        if timer is not None:
            timer.cancel()
        self._partitions[key] = self._loop.call_later(
            max(seconds, self.tick_seconds), self._heal, key
        )

    def _heal(self, key: str) -> None:
        self._partitions.pop(key, None)
        held, self._held = self._held, []
        for message, raw in held:
            self._route_frame(message, raw)

    def _route_frame(self, message: wire.Message, raw: str) -> None:
        if "*" in self._partitions or f"{message.src}->{message.dst}" in self._partitions:
            self.stats.held += 1
            self._held.append((message, raw))
            return
        if message.dst == FRONT_DOOR:
            self.stats.delivered += 1
            self._resolve(message)
            return
        handle = self._handles.get(message.dst)
        if handle is None or not handle.alive:
            # A dead shard is a blackhole; the sender's retry discipline
            # turns this into a clean lost_request, never a hang.
            self.stats.dropped += 1
            return
        handle.writer.write(encode_frame(raw))
        self.stats.delivered += 1

    def _resolve(self, message: wire.Message) -> None:
        future = self._pending.get(message.body["id"])
        if future is not None and not future.done():
            future.set_result(message)

    # -- requests ----------------------------------------------------------

    async def call_async(
        self, shard: int, module: str, proc: str, args: tuple[int, ...]
    ) -> list[int]:
        """Submit one root request to *shard* and await its results.

        At-most-once end to end: every transmission reuses the same
        request id, so the worker's (src, id) dedup either ignores the
        duplicate (still executing) or resends the byte-identical
        cached reply.  After ``1 + max_retries`` transmissions without
        an answer the request is abandoned with
        :class:`~repro.errors.LostRequest`.
        """
        request_id = self._next_request
        self._next_request += 1
        span = f"{FRONT_DOOR}:{request_id}"
        message = wire.call(
            FRONT_DOOR, shard, request_id, span, None, module, proc, list(args)
        )
        raw = message.encode()
        future = self._loop.create_future()
        self._pending[request_id] = future
        try:
            for _ in range(1 + self.max_retries):
                self._offer(message, raw)
                try:
                    reply = await asyncio.wait_for(
                        asyncio.shield(future), self.root_timeout_s
                    )
                except asyncio.TimeoutError:
                    continue
                if reply.kind == "reply":
                    return list(reply.body["results"])
                body = reply.body
                raise TrapError(
                    body["trap"],
                    detail=f"remote fault on shard {reply.src}: {body['detail']}",
                    pc=body["pc"],
                    proc=body["proc"],
                )
            raise LostRequest(
                request_id, 1 + self.max_retries, f"{module}.{proc}"
            )
        finally:
            self._pending.pop(request_id, None)

    def call_on(self, shard: int, module: str, proc: str, *args: int) -> list[int]:
        """Synchronous ``call_async`` against an explicit worker."""
        return self._run(self.call_async(shard, module, proc, tuple(args)))

    def call(self, module: str, proc: str, *args: int) -> list[int]:
        """Submit to the module's home worker; return (or raise) results."""
        return self.call_on(self.placement.home(module), module, proc, *args)

    # -- the control plane -------------------------------------------------

    async def _control(
        self, shard: int, kind: str, body: dict | None = None, timeout: float = 30.0
    ) -> ctl.Control:
        handle = self._handles.get(shard)
        if handle is None or not handle.alive:
            raise NetError(
                f"no live worker for shard {shard}"
                + (f" (last error: {handle.error})" if handle and handle.error else "")
            )
        seq = self._next_ctl
        self._next_ctl += 1
        record = ctl.Control(kind=kind, shard=shard, seq=seq, body=body or {})
        future = self._loop.create_future()
        self._ctl_pending[(shard, seq)] = future
        try:
            handle.writer.write(encode_frame(record.encode()))
            return await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            raise NetError(
                f"worker {shard} did not answer {kind!r} within {timeout}s"
            ) from None
        finally:
            self._ctl_pending.pop((shard, seq), None)

    def meters(self) -> dict[int, dict]:
        """Per-shard modelled meters — the same shape as ``Cluster.meters()``."""

        async def gather() -> dict[int, dict]:
            replies = await asyncio.gather(
                *[self._control(shard, "meters") for shard in sorted(self._handles)]
            )
            return {reply.shard: reply.body["meters"] for reply in replies}

        return self._run(gather())

    def trace_events(self) -> dict[int, list]:
        """Per-shard recorded events (requires ``record=True``), as
        :class:`~repro.obs.events.TraceEvent` so the stitcher can run
        unchanged over process-backed shards."""
        from repro.obs.events import TraceEvent

        async def gather() -> dict[int, list]:
            replies = await asyncio.gather(
                *[self._control(shard, "events") for shard in sorted(self._handles)]
            )
            return {reply.shard: reply.body["events"] for reply in replies}

        return {
            shard: [
                TraceEvent(
                    seq=doc["seq"],
                    kind=doc["kind"],
                    name=doc["name"],
                    steps=doc["steps"],
                    cycles=doc["cycles"],
                    data=doc["data"],
                )
                for doc in events
            ]
            for shard, events in self._run(gather()).items()
        }

    def snapshot(self, shard: int) -> dict:
        """A ``repro-snapshot/2`` document of one worker's machine."""
        return self._run(self._control(shard, "snapshot")).body["state"]

    def restore(self, shard: int, state: dict) -> None:
        """Restore a ``repro-snapshot/2`` document into one worker."""
        self._run(self._control(shard, "restore", {"state": state}))

    def status(self, shard: int) -> list[dict]:
        """One worker's process table (pid, status, results, fault)."""
        return self._run(self._control(shard, "status")).body["processes"]

    # -- migration and repinning -------------------------------------------

    def extract(self, shard: int, pid: int, dst: int, mode: str = "exclusive") -> dict:
        """Slice process *pid* out of worker *shard* for adoption on *dst*.

        Returns the ``repro-migrate/1`` slice; raises
        :class:`~repro.errors.NetError` if the worker refused (the
        process completed while the request was in flight, the mode
        does not fit the preset, ...) — the worker itself survives a
        refusal untouched.
        """
        body = self._run(
            self._control(shard, "extract", {"pid": pid, "dst": dst, "mode": mode})
        ).body
        if body["slice"] is None:
            raise NetError(
                f"worker {shard} refused extract of p{pid}: "
                f"{body.get('error', 'unspecified')}"
            )
        return body["slice"]

    def adopt(self, shard: int, slice_: dict) -> int:
        """Install a migration slice on worker *shard*; returns the pid."""
        body = self._run(self._control(shard, "adopt", {"slice": slice_})).body
        if body["pid"] is None:
            raise NetError(
                f"worker {shard} refused adoption: "
                f"{body.get('error', 'unspecified')}"
            )
        return body["pid"]

    def migrate(self, src: int, pid: int, dst: int, mode: str = "exclusive") -> int:
        """Move process *pid* from worker *src* to worker *dst*.

        The ``repro-ctl/1`` verb pair end to end: extract on the source
        (which installs the source-side forwards, so the outstanding
        reply and any in-flight duplicates chase the process), adopt on
        the target, return the adopted pid.  Worker-mode forwards are
        kept for the life of the source worker — with real sockets
        there is no quiescent instant in which a coordinator could
        prove no duplicate is still in flight, so the tombstones stay.
        """
        slice_ = self.extract(src, pid, dst, mode=mode)
        try:
            return self.adopt(dst, slice_)
        except NetError as refusal:
            # The source already dropped the process; adopt the slice
            # back home so a refused migration strands nothing.  The
            # source still holds its own reply forward — adoption
            # retires it and re-keys the outstanding request, so the
            # un-forwarded reply resolves normally.
            try:
                self.adopt(src, slice_)
            except NetError as stranded:
                raise NetError(
                    f"migration of p{pid} refused ({refusal}) and the "
                    f"rollback adoption also refused ({stranded}); the "
                    "process is stranded"
                ) from refusal
            raise NetError(
                f"migration of p{pid} to shard {dst} refused "
                f"({refusal}); the process was adopted back onto shard "
                f"{src}"
            ) from refusal

    def repin(self, pins: dict[str, int]) -> int:
        """Replace the pin map everywhere, fenced by the placement epoch.

        Bumps the front door's epoch, pushes the (pins, epoch) pair to
        every live worker, and verifies each acknowledged the same
        epoch.  Routing of requests submitted after ``repin`` returns
        follows the new table on every participant.
        """
        epoch = self.placement.repin(pins)
        body = {"pins": dict(pins), "epoch": epoch}

        async def push() -> list[ctl.Control]:
            return await asyncio.gather(
                *[
                    self._control(shard, "repin", dict(body))
                    for shard in sorted(self._handles)
                ]
            )

        for reply in self._run(push()):
            if reply.body["epoch"] != epoch:
                raise NetError(
                    f"worker {reply.shard} acknowledged epoch "
                    f"{reply.body['epoch']}, expected {epoch}"
                )
        return epoch


# ---------------------------------------------------------------------------
# The serving layer
# ---------------------------------------------------------------------------


def _direct_target(request: Request) -> tuple[str, str, tuple[int, ...]]:
    """The leaf procedure a request resolves to, bypassing the dispatcher."""
    if request.op == 0:
        return "Fib", "fib", (request.a,)
    if request.op == 1:
        return "Gauss", "sum", (request.a,)
    if request.op == 2:
        return "Gcd", "gcd", (request.a, request.b)
    return "Pow", "power", (request.a, request.b)


class _Tracked:
    """Per-request admission bookkeeping (slotted: there can be 1M+)."""

    __slots__ = ("request", "attempts", "not_before", "settled")

    def __init__(self, request: Request) -> None:
        self.request = request
        self.attempts = 0
        self.not_before = 0.0
        self.settled = False


@dataclass
class ProcessServeReport:
    """What a process-mode serving run did — the acceptance evidence."""

    shards: int
    requests: int
    route: str
    completed: int = 0
    lost: int = 0
    wrong: int = 0
    retried: int = 0
    backpressure_stalls: int = 0
    elapsed_s: float = 0.0
    wire: dict = field(default_factory=dict)
    latencies_ms: list = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Exact end-to-end latency percentile in ms (nearest-rank)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def to_dict(self) -> dict:
        return {
            "shards": self.shards,
            "requests": self.requests,
            "route": self.route,
            "completed": self.completed,
            "lost": self.lost,
            "wrong": self.wrong,
            "retried": self.retried,
            "backpressure_stalls": self.backpressure_stalls,
            "elapsed_s": round(self.elapsed_s, 3),
            "requests_per_s": (
                round(self.completed / self.elapsed_s, 1) if self.elapsed_s else 0.0
            ),
            "p50_ms": round(self.percentile(0.50), 3),
            "p99_ms": round(self.percentile(0.99), 3),
            "wire": dict(self.wire),
        }


class ProcessServer:
    """Admission control over a :class:`ProcessCluster`.

    The same disciplines as :class:`~repro.net.serve.Server`, in real
    time: at most ``batch_size`` admissions per scheduling round, at
    most ``queue_capacity`` in-flight root requests per worker (a
    request routed to a full worker waits and the stall is counted),
    and a failed request re-enters the tail of the admission queue
    after ``backoff_base * 2^(k-1)`` seconds for its k-th resubmission
    — first retry waits exactly ``backoff_base`` — until
    ``max_retries`` resubmissions are spent and it counts as lost.
    """

    def __init__(
        self,
        cluster: ProcessCluster,
        route: str = "direct",
        queue_capacity: int = 8,
        batch_size: int = 4,
        max_retries: int = 2,
        backoff_base: float = 0.05,
    ) -> None:
        if route not in ("direct", "dispatch"):
            raise NetError(f"unknown route {route!r} (direct or dispatch)")
        if queue_capacity < 1:
            raise NetError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if batch_size < 1:
            raise NetError(f"batch_size must be >= 1, got {batch_size}")
        self.cluster = cluster
        self.route = route
        self.queue_capacity = queue_capacity
        self.batch_size = batch_size
        self.max_retries = max_retries
        self.backoff_base = backoff_base

    def _target(self, entry: _Tracked) -> tuple[int, str, str, tuple[int, ...]]:
        request = entry.request
        if self.route == "dispatch":
            shard = self.cluster.placement.home("Main")
            return shard, "Main", "dispatch", (request.op, request.a, request.b)
        module, proc, args = _direct_target(request)
        return request.index % self.cluster.shards, module, proc, args

    def serve(self, workload: list[Request]) -> ProcessServeReport:
        """Run the whole workload to completion and report."""
        return self.cluster._run(self._serve(workload))

    async def _serve(self, workload: list[Request]) -> ProcessServeReport:
        cluster = self.cluster
        report = ProcessServeReport(
            shards=cluster.shards, requests=len(workload), route=self.route
        )
        entries = [_Tracked(request) for request in workload]
        waiting: deque[int] = deque(range(len(entries)))
        inflight = {shard: 0 for shard in range(cluster.shards)}
        wake = asyncio.Event()
        tasks: set[asyncio.Task] = set()
        started = time.monotonic()

        async def run_one(index: int, shard: int, module: str, proc: str, args) -> None:
            entry = entries[index]
            admitted_at = time.monotonic()
            failed = False
            try:
                results = await cluster.call_async(shard, module, proc, args)
            except (LostRequest, TrapError):
                failed = True
            inflight[shard] -= 1
            if not failed:
                entry.settled = True
                report.completed += 1
                report.latencies_ms.append((time.monotonic() - admitted_at) * 1000)
                if not results or results[-1] != entry.request.expected:
                    report.wrong += 1
            elif entry.attempts <= self.max_retries:
                report.retried += 1
                entry.not_before = time.monotonic() + self.backoff_base * (
                    2 ** (entry.attempts - 1)
                )
                waiting.append(index)
            else:
                entry.settled = True
                report.lost += 1
            wake.set()

        # Admission loop: examine at most a few batches' worth of the
        # queue head per round — a skipped entry rotates to the tail —
        # so a long backpressured queue costs O(batch) per round, not
        # O(queue), and a million-request queue stays serveable.
        examine_cap = max(4 * self.batch_size, 64)
        while True:
            admitted = 0
            examined = 0
            now = time.monotonic()
            while waiting and admitted < self.batch_size and examined < examine_cap:
                examined += 1
                index = waiting.popleft()
                entry = entries[index]
                if now < entry.not_before:
                    waiting.append(index)
                    continue
                shard, module, proc, args = self._target(entry)
                if inflight[shard] >= self.queue_capacity:
                    report.backpressure_stalls += 1
                    waiting.append(index)
                    continue
                inflight[shard] += 1
                entry.attempts += 1
                task = asyncio.ensure_future(run_one(index, shard, module, proc, args))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
                admitted += 1
            if not waiting and not tasks:
                break
            wake.clear()
            if admitted == 0:
                # Nothing admissible: sleep until a completion frees a
                # slot (or briefly, for a backoff deadline to pass).
                try:
                    await asyncio.wait_for(wake.wait(), 0.01)
                except asyncio.TimeoutError:
                    pass
            else:
                await asyncio.sleep(0)

        report.elapsed_s = time.monotonic() - started
        report.wire = cluster.stats.as_dict()
        return report


def run_process_serve(
    shards: int = 4,
    requests: int = 1000,
    seed: int = 7,
    config: str = "i2",
    route: str = "direct",
    queue_capacity: int = 8,
    batch_size: int = 4,
    record: bool = False,
    fault_plan: FaultPlan | None = None,
) -> tuple[ProcessServeReport, dict[int, dict]]:
    """Build a process-mode service cluster, run a seeded workload, and
    return (report, per-shard meters).  The cluster is torn down before
    returning."""
    from repro.net.serve import SERVICE_SOURCES, generate_workload

    cluster = ProcessCluster(
        list(SERVICE_SOURCES),
        shards=shards,
        config=config,
        record=record,
        fault_plan=fault_plan,
        self_homed=(route == "direct"),
    )
    try:
        server = ProcessServer(
            cluster,
            route=route,
            queue_capacity=queue_capacity,
            batch_size=batch_size,
        )
        report = server.serve(generate_workload(seed, requests))
        meters = cluster.meters()
    finally:
        cluster.close()
    return report, meters
