"""The worker control plane: ``repro-ctl/1`` management records.

Data traffic between the front door and its worker processes is plain
``repro-wire/1`` (calls, replies, errors, the hello handshake) — the
whole point of process mode is that a worker speaks the *same* protocol
a shard speaks in-process.  But a worker is also an operating-system
process the front door must manage, and management is deliberately a
**separate, versioned schema** so the wire protocol stays exactly what
the conformance suite already pins.

A control record is one framed JSON document ``{"schema":
"repro-ctl/1", "kind": ..., "shard": ..., "seq": ..., "body": {...}}``;
``seq`` is echoed in the reply so the front door can correlate.  Kinds:

===============  ============================================
``meters``       -> ``meters_reply`` with the shard's modelled meters
``events``       -> ``events_reply`` with recorded trace events
``snapshot``     -> ``snapshot_reply`` with a ``repro-snapshot/2`` doc
``restore``      -> ``restore_reply`` after restoring such a doc
``status``       -> ``status_reply`` with the process table
``extract``      -> ``extract_reply`` with a ``repro-migrate/1`` slice
                 (the worker detaches the process; on refusal the
                 reply's ``slice`` is null and ``error`` says why)
``adopt``        -> ``adopt_reply`` with the adopted pid (or null +
                 ``error`` on refusal)
``repin``        -> ``repin_reply``; the worker installs the new pin
                 map and the epoch that fences it
``shutdown``     -> ``shutdown_reply``; the worker then exits cleanly
``worker_error`` (unsolicited) the worker's dying diagnostic
===============  ============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import WireError

#: The schema this module writes and the only one it accepts.
CTL_SCHEMA = "repro-ctl/1"

#: Control kinds and the body fields each must carry.
_REQUIRED_BODY: dict[str, tuple[str, ...]] = {
    "meters": (),
    "meters_reply": ("meters",),
    "events": (),
    "events_reply": ("events",),
    "snapshot": (),
    "snapshot_reply": ("state",),
    "restore": ("state",),
    "restore_reply": (),
    "status": (),
    "status_reply": ("processes",),
    "extract": ("pid", "dst", "mode"),
    "extract_reply": ("slice",),
    "adopt": ("slice",),
    "adopt_reply": ("pid",),
    "repin": ("pins", "epoch"),
    "repin_reply": ("epoch",),
    "shutdown": (),
    "shutdown_reply": (),
    "worker_error": ("error",),
}


@dataclass(frozen=True)
class Control:
    """One management record between the front door and a worker."""

    kind: str
    shard: int
    seq: int = 0
    body: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        required = _REQUIRED_BODY.get(self.kind)
        if required is None:
            raise WireError(
                f"unknown control kind {self.kind!r} "
                f"(known: {', '.join(sorted(_REQUIRED_BODY))})"
            )
        missing = [name for name in required if name not in self.body]
        if missing:
            raise WireError(
                f"{self.kind} control missing body field(s): {', '.join(missing)}"
            )

    def encode(self) -> str:
        """The canonical JSON encoding (sorted keys, no whitespace)."""
        return json.dumps(
            {
                "schema": CTL_SCHEMA,
                "kind": self.kind,
                "shard": self.shard,
                "seq": self.seq,
                "body": self.body,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def reply(self, kind: str, body: dict | None = None) -> Control:
        """The response record: same shard, same seq, reply kind."""
        return Control(kind=kind, shard=self.shard, seq=self.seq, body=body or {})


def decode_doc(doc: dict) -> Control:
    """Validate one already-parsed control document."""
    schema = doc.get("schema")
    if schema != CTL_SCHEMA:
        raise WireError(
            f"unknown control schema {schema!r} (this build speaks {CTL_SCHEMA!r})"
        )
    for name in ("kind", "shard", "seq", "body"):
        if name not in doc:
            raise WireError(f"control record missing {name!r}")
    return Control(
        kind=doc["kind"], shard=doc["shard"], seq=doc["seq"], body=doc["body"]
    )


def decode(text: str) -> Control:
    """Parse and validate one encoded control record."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as fault:
        raise WireError(f"control record is not JSON: {fault}") from fault
    if not isinstance(doc, dict):
        raise WireError("control record must be a JSON object")
    return decode_doc(doc)
