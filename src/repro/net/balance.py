"""Elastic rebalancing: a policy loop that migrates load off hot shards.

The mechanism lives in :mod:`repro.net.migrate` — quiesce, extract,
adopt, forward.  This module is the **policy**: a :class:`Balancer`
watches the signals the serving layer already publishes into a
:class:`~repro.obs.metrics.MetricsRegistry` — per-shard in-flight root
requests (``net.shard_inflight.<id>`` gauges) and the end-to-end
``net.latency_ticks`` histogram — and, when one shard runs persistently
hotter than another, moves BLOCKED root processes from the hot shard to
the coldest one.

Three disciplines keep the loop from thrashing:

* **hysteresis** — a shard is *hot* only above ``high_water`` in-flight
  requests, and only a shard at or below ``low_water`` may receive
  work, so migrations stop long before the pair could oscillate;
* **patience** — a shard must stay hot for ``patience`` consecutive
  observations before the balancer acts, so a one-round spike (a batch
  admission landing all at once) never triggers a move;
* **budget** — at most ``budget`` migrations per observation, so the
  balancer's own work is bounded and interleaves with real progress.

Migration here uses **shared** mode by default (the target keeps its
own processes; see :func:`repro.net.migrate.extract`), which preserves
results exactly but not per-shard meter attribution — the right trade
for elasticity.  A preset without an AV heap (i1) refuses shared
adoption; the balancer treats a refusal as "skip this candidate", never
as an error, so ``--autoscale`` is safe on every preset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetError
from repro.interp.processes import ProcessStatus
from repro.net.cluster import Cluster, Ticket
from repro.net.migrate import MigrateError
from repro.obs import MetricsRegistry


@dataclass
class BalancerStats:
    """What the policy loop did — surfaced in the serve report."""

    observations: int = 0
    migrations: int = 0
    refusals: int = 0
    decisions: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "observations": self.observations,
            "migrations": self.migrations,
            "refusals": self.refusals,
        }


class Balancer:
    """Hysteresis-bounded hot-shard drain over live migration.

    Call :meth:`observe` between pump ticks (the cluster is quiescent at
    a block boundary there — the only place migration is legal) with the
    root tickets still in flight.  The balancer publishes the per-shard
    in-flight gauges, updates its heat bookkeeping, and performs at most
    ``budget`` migrations.
    """

    def __init__(
        self,
        high_water: int = 6,
        low_water: int = 2,
        patience: int = 3,
        budget: int = 1,
        mode: str = "shared",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if high_water <= low_water:
            raise NetError(
                f"high_water ({high_water}) must exceed low_water ({low_water})"
            )
        if patience < 1:
            raise NetError(f"patience must be >= 1, got {patience}")
        if budget < 1:
            raise NetError(f"budget must be >= 1, got {budget}")
        self.high_water = high_water
        self.low_water = low_water
        self.patience = patience
        self.budget = budget
        self.mode = mode
        self.metrics = metrics or MetricsRegistry()
        self.stats = BalancerStats()
        self._heat: dict[int, int] = {}

    # -- signals -----------------------------------------------------------

    def inflight(self, cluster: Cluster, tickets: list[Ticket]) -> dict[int, int]:
        """Live root requests per shard, published as gauges."""
        counts = {shard.id: 0 for shard in cluster.shards}
        for ticket in tickets:
            if not ticket.done:
                counts[ticket.shard_id] += 1
        for shard_id, count in counts.items():
            self.metrics.gauge(f"net.shard_inflight.{shard_id}").set(count)
        return counts

    # -- the policy --------------------------------------------------------

    def _movable(self, cluster: Cluster, ticket: Ticket) -> bool:
        """A candidate must sit quiesced at a block boundary: BLOCKED on
        a remote reply, still in its shard's process table."""
        process = ticket.process
        return (
            not ticket.done
            and process.status is ProcessStatus.BLOCKED
            and process in cluster.shards[ticket.shard_id].scheduler.processes
        )

    def observe(self, cluster: Cluster, tickets: list[Ticket]) -> int:
        """One policy round; returns how many migrations were performed."""
        self.stats.observations += 1
        counts = self.inflight(cluster, tickets)

        # Heat bookkeeping: consecutive observations above high water.
        for shard_id, count in counts.items():
            if count > self.high_water:
                self._heat[shard_id] = self._heat.get(shard_id, 0) + 1
            else:
                self._heat[shard_id] = 0

        hot = [s for s, rounds in self._heat.items() if rounds >= self.patience]
        if not hot:
            return 0
        # Hottest first; drain into the coldest shard at/below low water.
        hot.sort(key=lambda s: (-counts[s], s))
        moved = 0
        for source in hot:
            if moved >= self.budget:
                break
            cold = [
                s for s, count in counts.items()
                if s != source and count <= self.low_water
            ]
            if not cold:
                break
            cold.sort(key=lambda s: (counts[s], s))
            target = cold[0]
            for ticket in tickets:
                if moved >= self.budget:
                    break
                if ticket.shard_id != source or not self._movable(cluster, ticket):
                    continue
                try:
                    cluster.migrate(ticket, target, mode=self.mode)
                except MigrateError:
                    # e.g. i1 has no AV heap for shared adoption, or a
                    # frame is flagged; this candidate stays put.
                    self.stats.refusals += 1
                    continue
                moved += 1
                counts[source] -= 1
                counts[target] += 1
                self.metrics.counter("net.migrations").inc()
                self.stats.decisions.append(
                    {"from": source, "to": target, "span": ticket.span}
                )
                if counts[source] <= self.high_water:
                    self._heat[source] = 0
                    break
        self.stats.migrations += moved
        return moved
