"""Transports: how wire records move between shards.

:class:`InProcessTransport` is the reference implementation — per-shard
FIFO queues inside the host process, advanced by the cluster's pump
ticks.  :class:`SocketTransport` pushes the *encoded* records through a
real ``socketpair`` behind the same interface, proving the wire format
survives a byte stream; delivery order and fault semantics are
identical, so every test and benchmark can run on either.

Faults live here, not in the machines: a :class:`NetFaultPolicy`
interprets the ``net_*`` actions of a :class:`~repro.faults.plan.
FaultPlan` over the ``net.send`` stream (the k-th message offered to
the transport), deterministically — drop, duplicate, delay by pump
ticks, or partition a link so its messages queue until it heals.  The
caller's timeout/retry discipline plus request-id dedup on the callee
turn that into at-most-once execution, which is what keeps every
shard's modelled meters bit-identical run over run even under faults.

The transport meters wire cost explicitly: every send accumulates the
message's 16-bit word count in ``stats`` (and the optional metrics
registry) — never on a machine's cycle counter.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.errors import WireError
from repro.faults.plan import NET_ACTIONS, FaultPlan, Injection
from repro.net.frame import RECV_BYTES, FrameBuffer, encode_frame
from repro.net.wire import Message, decode


@dataclass
class TransportStats:
    """Explicit wire meters (host-side; never a machine charge)."""

    sent: int = 0
    delivered: int = 0
    wire_words: int = 0
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    held: int = 0

    def as_dict(self) -> dict:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "wire_words": self.wire_words,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "held": self.held,
        }


class NetFaultPolicy:
    """Applies a plan's ``net_*`` injections to the ``net.send`` stream.

    Each armed injection counts the messages offered to the transport
    (its trigger must be ``on_event`` over ``net.send`` or the ``net``
    family) and fires once when its ordinal arrives — same discipline
    as :class:`~repro.faults.inject.FaultInjector`, but the "event
    stream" is the wire, so the policy lives with the transport.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injections: list[tuple[int, Injection]] = [
            (index, injection)
            for index, injection in enumerate(plan.injections)
            if injection.action in NET_ACTIONS
        ]
        self._counts = {index: 0 for index, _ in self.injections}
        self._armed = {index: True for index, _ in self.injections}
        #: (plan index, send ordinal) per firing, for chaos reports.
        self.fired: list[tuple[int, int]] = []
        self._sends = 0

    def actions_for(self, message: Message) -> list[Injection]:
        """Count one offered message; return the injections that fire."""
        self._sends += 1
        firing: list[Injection] = []
        for index, injection in self.injections:
            if not self._armed[index]:
                continue
            event = injection.trigger.event
            if event not in ("net", "net.send"):
                continue
            self._counts[index] += 1
            if self._counts[index] < injection.trigger.at:
                continue
            self._armed[index] = False
            self.fired.append((index, self._sends))
            firing.append(injection)
        return firing


def _parse_partition(detail: str) -> tuple[str, int]:
    """``"a->b:ticks"`` partitions one link; ``"ticks"`` partitions all.

    Returns (link key, duration).  The key ``"*"`` matches every link.
    """
    text = detail.strip() or "2"
    if "->" in text:
        link, _, ticks = text.partition(":")
        a, _, b = link.partition("->")
        try:
            return f"{int(a)}->{int(b)}", int(ticks or 2)
        except ValueError as fault:
            raise WireError(f"bad partition detail {detail!r}") from fault
    try:
        return "*", int(text)
    except ValueError as fault:
        raise WireError(f"bad partition detail {detail!r}") from fault


class InProcessTransport:
    """Per-destination FIFO queues with deterministic fault semantics.

    ``send`` applies the fault policy, then commits the message (or
    holds it: delayed messages wait their tick count; a partitioned
    link queues messages until it heals).  ``poll(dst)`` drains what is
    deliverable for one shard; ``tick()`` advances delays and
    partitions — the cluster calls it once per pump round.
    """

    def __init__(self, policy: NetFaultPolicy | None = None, tracer=None) -> None:
        self.policy = policy
        self.tracer = tracer
        self.stats = TransportStats()
        self._queues: dict[int, deque[Message]] = {}
        #: [ticks remaining, message] pairs awaiting delivery.
        self._delayed: list[list] = []
        #: link key ("src->dst" or "*") -> ticks until heal.
        self._partitions: dict[str, int] = {}
        #: messages caught behind a partition, in send order.
        self._held: list[Message] = []

    # -- the transport interface ------------------------------------------

    def send(self, message: Message) -> None:
        """Offer one message; the fault policy decides its fate."""
        self.stats.sent += 1
        self.stats.wire_words += message.wire_words
        self._emit(
            "net.send",
            message.describe(),
            src=message.src,
            dst=message.dst,
            msg=message.kind,
            words=message.wire_words,
        )
        copies = 1
        delay = 0
        if self.policy is not None:
            for injection in self.policy.actions_for(message):
                if injection.action == "net_drop":
                    self.stats.dropped += 1
                    self._emit(
                        "net.drop", message.describe(),
                        src=message.src, dst=message.dst,
                    )
                    return
                if injection.action == "net_dup":
                    copies += 1
                    self.stats.duplicated += 1
                    self._emit(
                        "net.dup", message.describe(),
                        src=message.src, dst=message.dst,
                    )
                elif injection.action == "net_delay":
                    delay = max(delay, int(injection.detail or "1"))
                    self.stats.delayed += 1
                    self._emit(
                        "net.delay", message.describe(),
                        src=message.src, dst=message.dst, ticks=delay,
                    )
                elif injection.action == "net_partition":
                    key, ticks = _parse_partition(injection.detail)
                    self._partitions[key] = max(self._partitions.get(key, 0), ticks)
                    self._emit("net.partition", key, ticks=ticks)
        for _ in range(copies):
            if delay > 0:
                self._delayed.append([delay, message])
            else:
                self._route(message)

    def poll(self, dst: int) -> list[Message]:
        """Drain every deliverable message for shard *dst* (FIFO)."""
        queue = self._queues.get(dst)
        if not queue:
            return []
        messages = list(queue)
        queue.clear()
        for message in messages:
            self.stats.delivered += 1
            self._emit(
                "net.recv",
                message.describe(),
                src=message.src,
                dst=message.dst,
                msg=message.kind,
            )
        return messages

    def tick(self) -> None:
        """One pump round: age delays, heal partitions, release holds."""
        still_delayed: list[list] = []
        for entry in self._delayed:
            entry[0] -= 1
            if entry[0] <= 0:
                self._route(entry[1])
            else:
                still_delayed.append(entry)
        self._delayed = still_delayed
        healed = False
        for key in list(self._partitions):
            self._partitions[key] -= 1
            if self._partitions[key] <= 0:
                del self._partitions[key]
                healed = True
        if healed and self._held:
            held, self._held = self._held, []
            for message in held:
                self._route(message)

    def pending(self) -> int:
        """Messages somewhere in flight (queues, delays, holds)."""
        return (
            sum(len(queue) for queue in self._queues.values())
            + len(self._delayed)
            + len(self._held)
        )

    # -- internals ---------------------------------------------------------

    def _partitioned(self, src: int, dst: int) -> bool:
        return "*" in self._partitions or f"{src}->{dst}" in self._partitions

    def _route(self, message: Message) -> None:
        if self._partitioned(message.src, message.dst):
            self.stats.held += 1
            self._held.append(message)
            return
        self._commit(message)

    def _commit(self, message: Message) -> None:
        self._queues.setdefault(message.dst, deque()).append(message)

    def _emit(self, kind: str, name: str, **data) -> None:
        if self.tracer is not None:
            self.tracer.emit(kind, name, **data)


class SocketTransport(InProcessTransport):
    """The same semantics, with the encoded records crossing a socket.

    Every committed message is written as one framed UTF-8 JSON line
    (:mod:`repro.net.frame`) to a ``socketpair``; ``poll`` first drains
    the socket, decoding each complete frame back into a
    :class:`~repro.net.wire.Message` and routing it into the per-shard
    queues.  A frame split across ``recv`` chunks (or larger than one
    recv buffer) stays in the :class:`~repro.net.frame.FrameBuffer`
    until its terminator arrives; if the peer closes mid-frame the
    drain raises :class:`~repro.errors.TruncatedFrameError` instead of
    silently discarding the partial record.  Fault semantics (policy,
    delays, partitions) are inherited unchanged — they act before the
    bytes are written, exactly as a faulty network would.
    """

    def __init__(self, policy: NetFaultPolicy | None = None, tracer=None) -> None:
        super().__init__(policy, tracer)
        import socket

        self._rx, self._tx = socket.socketpair()
        self._rx.setblocking(False)
        # Non-blocking writes with an explicit outgoing buffer: a frame
        # larger than the kernel socket buffer would otherwise deadlock
        # a blocking ``sendall`` (nothing drains the read side until
        # ``poll``).  ``_drain_socket`` interleaves flush and recv, so
        # even a single frame bigger than the whole buffer crosses.
        self._tx.setblocking(False)
        self._out = b""
        self._framer = FrameBuffer()
        self._in_socket = 0

    def close(self) -> None:
        self._tx.close()
        self._rx.close()

    def _commit(self, message: Message) -> None:
        self._out += encode_frame(message.encode())
        self._in_socket += 1
        self._flush_tx()

    def _flush_tx(self) -> int:
        """Push buffered outgoing bytes; return how many were written."""
        written = 0
        while self._out:
            try:
                sent = self._tx.send(self._out)
            except BlockingIOError:
                break
            self._out = self._out[sent:]
            written += sent
        return written

    def _drain_socket(self) -> None:
        closed = False
        while True:
            flushed = self._flush_tx()
            try:
                chunk = self._rx.recv(RECV_BYTES)
            except BlockingIOError:
                if flushed:  # recv freed buffer space; keep pushing
                    continue
                break
            except OSError:  # pragma: no cover - rx already closed
                closed = True
                break
            if not chunk:
                closed = True
                break
            for line in self._framer.feed(chunk):
                self._in_socket -= 1
                super()._commit(decode(line))
        if closed:
            # EOF with buffered partial bytes is data loss; surface it.
            self._framer.finish()

    def poll(self, dst: int) -> list[Message]:
        self._drain_socket()
        return super().poll(dst)

    def pending(self) -> int:
        # _in_socket counts frames this transport wrote but has not yet
        # decoded; a partial frame from a writer we did not count (or a
        # desynced counter) must still register as in flight, so the
        # pump cannot declare quiescence over buffered bytes.
        in_flight = self._in_socket
        if in_flight == 0 and self._framer.buffered:
            in_flight = 1
        return super().pending() + in_flight
