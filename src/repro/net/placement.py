"""Module placement: consistent-hash routing of module -> shard.

Routing must be a pure function of the module name and the shard set —
every shard (and the serving layer) computes the same answer with no
coordination, and adding a shard moves only ~1/N of the modules.  The
classic construction: each shard contributes ``vnodes`` points on a
hash ring (SHA-256 of ``"shard:replica"``), and a module lives on the
shard owning the first point clockwise of the module's own hash.

Explicit *pins* override the ring — the conformance tests and the
examples use them to place specific modules on specific shards.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import RouteError

#: Ring points per shard; enough that a module census spreads evenly
#: across up to 8 shards.
DEFAULT_VNODES = 64


def _point(key: str) -> int:
    """A 64-bit position on the ring for *key*."""
    return int.from_bytes(hashlib.sha256(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring over a fixed set of shard ids."""

    def __init__(self, shard_ids: list[int], vnodes: int = DEFAULT_VNODES) -> None:
        if not shard_ids:
            raise RouteError("a hash ring needs at least one shard")
        if vnodes < 1:
            raise RouteError(f"vnodes must be >= 1, got {vnodes}")
        self.shard_ids = sorted(shard_ids)
        self.vnodes = vnodes
        points: list[tuple[int, int]] = []
        for shard_id in self.shard_ids:
            for replica in range(vnodes):
                points.append((_point(f"shard-{shard_id}:{replica}"), shard_id))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def home(self, key: str) -> int:
        """The shard owning *key*: first ring point clockwise of its hash."""
        index = bisect.bisect_right(self._points, _point(key)) % len(self._points)
        return self._owners[index]


class Placement:
    """Where each module executes: pins first, the ring otherwise.

    A placement carries an **epoch**: a version number bumped by every
    :meth:`repin`.  Routing is only coherent while every participant
    uses the same pins, so the epoch travels in the process-mode hello
    and any later repin must be pushed to every worker explicitly —
    see :meth:`repro.net.procserve.ProcessCluster.repin`.  Mutating
    ``pins`` behind the epoch's back is the bug this exists to catch.
    """

    def __init__(
        self,
        shard_ids: list[int],
        pins: dict[str, int] | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        self.ring = HashRing(shard_ids, vnodes)
        self.pins = dict(pins or {})
        self.epoch = 0
        known = set(self.ring.shard_ids)
        for module, shard_id in self.pins.items():
            if shard_id not in known:
                raise RouteError(
                    f"module {module!r} pinned to unknown shard {shard_id}"
                )

    def repin(self, pins: dict[str, int]) -> int:
        """Replace the pin map and bump the epoch; returns the new epoch.

        Validation matches the constructor: every pin must name a known
        shard.  The caller owns propagation — in process mode that means
        a ``repin`` control round to every worker, fenced by the epoch.
        """
        known = set(self.ring.shard_ids)
        for module, shard_id in pins.items():
            if shard_id not in known:
                raise RouteError(
                    f"module {module!r} pinned to unknown shard {shard_id}"
                )
        self.pins = dict(pins)
        self.epoch += 1
        return self.epoch

    def home(self, module: str) -> int:
        """The shard on which *module*'s procedures execute."""
        pinned = self.pins.get(module)
        if pinned is not None:
            return pinned
        return self.ring.home(module)

    def table(self, modules: list[str]) -> dict[str, int]:
        """The full routing table for a module census (docs, reports)."""
        return {module: self.home(module) for module in sorted(modules)}
