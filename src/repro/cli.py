"""Command-line interface: run, disassemble, measure, trace, and profile.

Usage::

    python -m repro run prog.mesa [lib.mesa ...] [--impl i4] [--args 1 2]
    python -m repro disasm prog.mesa [--impl i2]
    python -m repro measure prog.mesa [lib.mesa ...] [--json]
    python -m repro trace prog.mesa [--format chrome|folded|jsonl] [--out f]
    python -m repro profile prog.mesa [--top 10] [--shards 2 --pin Math=1]
    python -m repro optimize prog.mesa --profile p.json --facts f.json --out o.json
    python -m repro run --image o.json [--engine jit]
    python -m repro serve --shards 4 --requests 1000 --seed 7
    python -m repro loadgen --requests 1000 --seed 7 --out workload.json
    python -m repro chaos --net

``run`` executes a program on one implementation and prints its results,
output channel, and meters.  ``disasm`` shows the compiled encoding
(entry vectors, fsi bytes, calling sequences).  ``measure`` runs the
whole I1-I4 ladder and prints the section 8 comparison table (``--json``
emits the raw :class:`~repro.machine.costs.CycleCounter` snapshots).
``trace`` records the observability event stream (:mod:`repro.obs`) and
exports it for chrome://tracing, flamegraph tools, or line-at-a-time
processing.  ``profile`` reconstructs the matched call/return tree and
prints the top procedures by inclusive/exclusive modelled cycles.

``trace`` and ``profile`` also accept Python files (like the examples)
whose embedded ``MODULE ...`` string literals form the program.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.report import format_table
from repro.analysis.timing import transfer_cost_table
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.isa.disassembler import format_listing
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link


def _read_sources(paths: list[str]) -> list[str]:
    return [Path(path).read_text() for path in paths]


def _read_program_sources(paths: list[str]) -> list[str]:
    """Module sources from ``.mesa`` files or Python files with embedded
    ``MODULE ...`` string literals (the examples)."""
    sources: list[str] = []
    for path in paths:
        text = Path(path).read_text()
        if path.endswith(".py"):
            embedded = _embedded_sources(text)
            if not embedded:
                raise SystemExit(f"{path}: no embedded MODULE sources")
            sources.extend(embedded)
        else:
            sources.append(text)
    return sources


def _entry(text: str) -> tuple[str, str]:
    module, _, proc = text.partition(".")
    if not module or not proc:
        raise argparse.ArgumentTypeError("entry must look like Module.proc")
    return module, proc


def _pin(text: str) -> tuple[str, int]:
    module, _, shard = text.partition("=")
    if not module or not shard:
        raise argparse.ArgumentTypeError("pin must look like Module=shard")
    try:
        return module, int(shard)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"pin shard must be an integer, got {shard!r}"
        ) from None


def _build(sources: list[str], preset: str, entry: tuple[str, str]) -> Machine:
    from repro.lang.compiler import check_entry

    config = MachineConfig.preset(preset)
    modules = compile_program(sources, CompileOptions.for_config(config))
    check_entry(modules, entry)  # friendlier message than a link error
    image = link(modules, config, entry)
    return Machine(image)


def cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import TrapError
    from repro.obs import TraceRecorder

    if args.facts and args.engine != "jit":
        print("run: --facts requires --engine jit", file=sys.stderr)
        return 2
    hot_order = None
    if args.image:
        from repro.fdo import FdoRefusal, load_image

        if args.files:
            print(
                "run: --image already embeds the sources; give either "
                "source files or --image, not both",
                file=sys.stderr,
            )
            return 2
        try:
            machine, doc = load_image(args.image)
        except FdoRefusal as refusal:
            print(f"run: image refused: {refusal}", file=sys.stderr)
            return 2
        module, _, proc = doc["entry"].partition(".")
        args.entry = (module, proc)
        hot_order = doc.get("log", {}).get("block_order") or None
    else:
        if not args.files:
            print("run: give source files or --image", file=sys.stderr)
            return 2
        machine = _build(_read_sources(args.files), args.impl, args.entry)
    recorder = None
    if args.engine == "jit":
        from repro.jit import JitRefusal, install_jit

        facts = None
        if args.facts:
            facts = json.loads(Path(args.facts).read_text())
        try:
            install_jit(machine, facts, hot_order=hot_order)
        except JitRefusal as refusal:
            print(f"run: jit refused: {refusal}", file=sys.stderr)
            return 2
    else:
        # A small ring of recent events rides along on every run, so a
        # trap dies with a story (the faulting context plus the last
        # transfers) instead of a bare exception.  Under the JIT the
        # tracer would pin execution to the interpreter, so compiled
        # runs forgo the ring.
        recorder = TraceRecorder(capacity=256)
        machine.attach_tracer(recorder)
    machine.start(args.entry[0], args.entry[1], *args.args)
    try:
        results = machine.run()
    except TrapError as fault:
        _print_trap_diagnostics(machine, recorder, fault)
        return 1
    print(f"results: {results}")
    if machine.output:
        print(f"output:  {machine.output}")
    if args.stats:
        report = machine.report()
        print(f"\ninstructions: {report['steps']}")
        print(f"memory refs:  {report['memory_references']}")
        print(f"model cycles: {report['cycles']}")
        fetch = report["fetch"]
        print(f"jump-speed:   {fetch['call_return_jump_speed_fraction']:.1%}")
        if "return_stack_hit_rate" in report:
            print(f"return-stack: {report['return_stack_hit_rate']:.1%} hits")
        if "bank_overflow_rate" in report:
            print(f"bank rate:    {report['bank_overflow_rate']:.2%} overflow+underflow")
    return 0


def _print_trap_diagnostics(machine, recorder, fault) -> None:
    """An unhandled trap, narrated: class, PC, procedure, recent events."""
    frame = machine.frame
    where = frame.proc.qualified_name if frame is not None else "<no frame>"
    print(f"trap: {fault.trap}", file=sys.stderr)
    print(
        f"  at pc {machine.pc:#06x} in {where} "
        f"(step {machine.steps}, cycle {machine.counter.cycles})",
        file=sys.stderr,
    )
    if fault.detail:
        print(f"  detail: {fault.detail}", file=sys.stderr)
    tail = recorder.tail(10) if recorder is not None else []
    if tail:
        print(f"last {len(tail)} trace events:", file=sys.stderr)
        for event in tail:
            print(f"  {event}", file=sys.stderr)


def cmd_disasm(args: argparse.Namespace) -> int:
    config = MachineConfig.preset(args.impl)
    sources = _read_sources(args.files)
    modules = compile_program(sources, CompileOptions.for_config(config))
    image = link(modules, config, args.entry)
    for module in modules:
        linked = image.instance_of(module.name)
        print(f"MODULE {module.name}  (code base {linked.code_base:#06x}, "
              f"gf {linked.gf_address:#06x})")
        for target_index, target in enumerate(module.imports):
            print(f"  LV[{target_index}] -> {target[0]}.{target[1]}")
        for procedure in module.procedures:
            entry = linked.code_base + procedure.entry_offset
            fsi = image.code.fetch_byte(entry)
            words = image.ladder.size_of(fsi)
            print(f"\n  PROCEDURE {procedure.name}  "
                  f"(entry {entry:#06x}, fsi {fsi} = {words} words)")
            listing = format_listing(procedure.body)
            print("    " + listing.replace("\n", "\n    "))
        print()
    return 0


#: Version tag of the ``measure --json`` output shape; bump on change.
MEASURE_JSON_SCHEMA = "repro-measure/1"


def cmd_measure(args: argparse.Namespace) -> int:
    sources = _read_program_sources(args.files)
    costs = transfer_cost_table(
        sources, entry=args.entry, args=tuple(args.args), engine=args.engine
    )
    if args.json:
        payload = {
            "schema": MEASURE_JSON_SCHEMA,
            "entry": f"{args.entry[0]}.{args.entry[1]}",
            "args": list(args.args),
            "engine": args.engine,
            "implementations": [
                {
                    "label": cost.label,
                    "results": list(cost.results),
                    "steps": cost.steps,
                    "calls": cost.calls,
                    "returns": cost.returns,
                    "memory_refs_per_transfer": cost.memory_refs,
                    "register_refs_per_transfer": cost.register_refs,
                    "cycles_per_transfer": cost.cycles_per_transfer,
                    "jump_speed_fraction": cost.jump_speed_fraction,
                    "counters": dict(cost.counters),
                }
                for cost in costs
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    rows = []
    for cost in costs:
        rows.append(
            [
                cost.label,
                list(cost.results),
                cost.transfers,
                f"{cost.memory_refs:.2f}",
                f"{cost.cycles_per_transfer:.1f}",
                f"{cost.jump_speed_fraction:.0%}",
            ]
        )
    print(
        format_table(
            ["implementation", "results", "transfers", "mem refs/xfer", "cycles/xfer", "jump speed"],
            rows,
        )
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Fast, self-contained checks of the paper's headline claims.

    A subset of the full benchmark harness (see ``benchmarks/run_all.py``)
    that needs no source files and runs in a couple of seconds.
    """
    failures = 0

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        status = "PASS" if ok else "FAIL"
        if not ok:
            failures += 1
        suffix = f"  ({detail})" if detail else ""
        print(f"[{status}] {label}{suffix}")

    # T1 (section 5): the 34-bit example.
    from repro.analysis.space import d1_call_space, t1_savings

    t1 = t1_savings(3, 10, 32)
    check(
        "T1 indirection example: 96 -> 62 bits, 34 saved",
        (t1.direct_bits, t1.indirect_bits, t1.saved_bits) == (96, 62, 34),
    )

    # D1 (section 6): +30% / equal / +50%.
    one, two = d1_call_space(1), d1_call_space(2)
    check(
        "D1 call-site space: DFC +33%, SDFC +0% (1 call), +50% (2 calls)",
        abs(one.direct_overhead - 1 / 3) < 0.01
        and one.short_direct_overhead == 0.0
        and abs(two.short_direct_overhead - 0.5) < 0.01,
    )

    # Figure 2 (section 5.3): 3 references to allocate, 4 to free.
    from repro.alloc.avheap import AVHeap
    from repro.alloc.sizing import geometric_ladder
    from repro.machine.memory import Memory

    memory = Memory(1 << 16)
    heap = AVHeap(memory, geometric_ladder(), 16, 64, 1 << 14)
    heap.free(heap.allocate(2))
    snap = memory.counter.snapshot()
    pointer = heap.allocate(2)
    alloc_refs = memory.counter.delta_since(snap)
    snap = memory.counter.snapshot()
    heap.free(pointer)
    free_refs = memory.counter.delta_since(snap)
    check(
        "Figure 2 frame heap: 3 refs/allocate, 4 refs/free",
        alloc_refs["memory_read"] + alloc_refs["memory_write"] == 3
        and free_refs["memory_read"] + free_refs["memory_write"] == 4,
    )

    # Figure 3 (section 7.2): the exact bank-assignment trace.
    from repro.banks.bankfile import BankFile
    from repro.banks.renaming import BankManager

    banks = BankFile(4, 16)
    manager = BankManager(banks, spill=lambda b: None, fill=lambda b, f: None)
    frames = {name: object() for name in "XABCD"}
    manager.begin(frames["X"])
    caller = manager.on_call(frames["A"])
    manager.on_return(frames["X"], caller)
    manager.on_call(frames["B"])
    caller_c = manager.on_call(frames["C"])
    manager.on_return(frames["B"], caller_c)
    caller_d = manager.on_call(frames["D"])
    manager.on_return(frames["B"], caller_d)
    lbanks = [event.lbank + 1 for event in manager.trace]
    sbanks = [event.sbank + 1 for event in manager.trace]
    check(
        "Figure 3 renaming trace: Lbank 1,2,1,3,2,3,4,3 / Sbank 2,3,3,2,4,4,2,2",
        lbanks == [1, 2, 1, 3, 2, 3, 4, 3] and sbanks == [2, 3, 3, 2, 4, 4, 2, 2],
    )

    # Descriptor packing (section 5.1).
    from repro.mesa.descriptor import MAX_BIASED_ENTRIES, pack_descriptor, unpack_descriptor

    check(
        "Packed descriptor: 16 bits, 1024 env, 32 code, 128 via bias",
        unpack_descriptor(pack_descriptor(1023, 31)) == (1023, 31)
        and MAX_BIASED_ENTRIES == 128,
    )

    # The ladder end to end: identical results, shrinking traffic, >=95%.
    fib = """
MODULE Main;
PROCEDURE fib(n): INT;
BEGIN
  IF n < 2 THEN RETURN n; END;
  RETURN fib(n - 1) + fib(n - 2);
END;
PROCEDURE main(): INT;
BEGIN
  RETURN fib(11);
END;
END.
"""
    meters = {}
    for preset in ("i1", "i2", "i3", "i4"):
        machine = _build([fib], preset, ("Main", "main"))
        machine.start()
        results = machine.run()
        meters[preset] = (
            results,
            machine.counter.memory_references,
            machine.fetch.call_return_jump_speed_fraction,
        )
    check(
        "Ladder correctness: identical results on I1-I4",
        len({tuple(values[0]) for values in meters.values()}) == 1,
    )
    check(
        "Ladder shape: I4 memory refs < I3 < I2",
        meters["i4"][1] < meters["i3"][1] < meters["i2"][1],
        f"{meters['i2'][1]} -> {meters['i3'][1]} -> {meters['i4'][1]}",
    )
    check(
        "Headline: >=95% of calls+returns at jump speed on I3/I4",
        meters["i3"][2] >= 0.95 and meters["i4"][2] >= 0.95,
        f"{meters['i3'][2]:.1%}",
    )

    print(
        f"\n{8 - failures}/8 claims verified."
        if not failures
        else f"\n{failures} claim(s) FAILED."
    )
    return 1 if failures else 0


def _traced_run(args: argparse.Namespace, capacity: int | None, trace_steps: bool):
    """Build, attach a recorder, run; shared by ``trace`` and ``profile``."""
    from repro.obs import TraceRecorder

    machine = _build(_read_program_sources(args.files), args.impl, args.entry)
    recorder = TraceRecorder(capacity=capacity, trace_steps=trace_steps)
    machine.attach_tracer(recorder)
    machine.start(args.entry[0], args.entry[1], *args.args)
    results = machine.run()
    return machine, recorder, results


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        build_call_tree,
        to_chrome_trace,
        to_folded_stacks,
        to_jsonl,
        validate_chrome_trace,
    )

    machine, recorder, _ = _traced_run(args, args.capacity, args.steps)
    events = list(recorder.events)
    if recorder.dropped:
        print(
            f"warning: ring buffer dropped {recorder.dropped} of "
            f"{recorder.emitted} events (raise --capacity for a full trace)",
            file=sys.stderr,
        )
    if args.format == "chrome":
        tree = build_call_tree(
            events,
            total_cycles=machine.counter.cycles,
            total_steps=machine.steps,
            dropped=recorder.dropped,
        )
        payload = to_chrome_trace(events, tree)
        problems = validate_chrome_trace(payload)
        if problems:  # pragma: no cover - exporter bug guard
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 1
        text = json.dumps(payload, indent=2) + "\n"
    elif args.format == "folded":
        text = to_folded_stacks(events)
    else:
        text = to_jsonl(events)
    if args.out:
        Path(args.out).write_text(text)
        print(
            f"wrote {len(events)} events ({args.format}) to {args.out}",
            file=sys.stderr,
        )
    else:
        print(text, end="")
    return 0


def _profile_cluster(args: argparse.Namespace) -> int:
    """``profile --shards N``: split the program across a cluster and
    print the stitched cross-shard call tree (one span per Remote XFER,
    costed with the callee shard's modelled meters)."""
    from repro.net.cluster import Cluster
    from repro.net.stitch import render, stitch

    sources = _read_program_sources(args.files)
    pins = dict(args.pin) if args.pin else None
    cluster = Cluster(
        sources,
        shards=args.shards,
        config=args.impl,
        entry=args.entry,
        pins=pins,
        record=True,
    )
    ticket = cluster.submit(args.entry[0], args.entry[1], *args.args)
    cluster.pump()
    print(f"results: {ticket.results}")
    roots = stitch(cluster.trace_events())
    spans = sum(1 for root in roots for _ in root.walk())
    remote = sum(
        1
        for root in roots
        for node, _ in root.walk()
        if node.origin not in ("", "root")
    )
    print(
        f"{spans} span(s), {remote} remote, across {args.shards} shard(s) "
        f"in {cluster.ticks} pump ticks"
    )
    print(f"placement: {cluster.placement.table(cluster.shards[0].modules())}")
    print()
    print(render(roots))
    print()
    for shard_id, meters in cluster.meters().items():
        print(
            f"shard {shard_id}: {meters['steps']} instructions, "
            f"{meters['counter']['cycles']} modelled cycles, "
            f"{meters['blocks']} remote stalls"
        )
    wire = cluster.transport.stats
    print(
        f"wire: {wire.sent} messages, {wire.wire_words} words "
        "(metered on the transport, never on a machine)"
    )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import aggregate, build_call_tree

    if (args.json or args.out) and args.shards > 1:
        print(
            "profile: --json/--out summarize one machine's run; they do "
            "not combine with --shards",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1:
        return _profile_cluster(args)
    machine, recorder, results = _traced_run(args, capacity=None, trace_steps=False)
    if args.json or args.out:
        from repro.fdo import profile_document

        doc = profile_document(
            machine,
            list(recorder.events),
            results,
            args.impl,
            args.entry,
            tuple(args.args),
        )
        text = json.dumps(doc, indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            if not args.json:
                print(f"profile written to {args.out}")
        if args.json:
            print(text)
        return 0
    tree = build_call_tree(
        recorder.events,
        total_cycles=machine.counter.cycles,
        total_steps=machine.steps,
        dropped=recorder.dropped,
    )
    profiles = aggregate(tree)
    total = max(1, machine.counter.cycles)

    print(f"results: {results}")
    print(
        f"{machine.steps} instructions, {machine.counter.cycles} modelled "
        f"cycles, {machine.counter.memory_references} memory references"
    )
    if not tree.structured:
        print(
            "note: non-LIFO transfers (XFER/traps) in this run; "
            "attribution near them is approximate"
        )
    print()
    rows = []
    for profile in profiles[: args.top]:
        rows.append(
            [
                profile.name,
                profile.calls,
                profile.inclusive_cycles,
                f"{profile.inclusive_cycles / total:.1%}",
                profile.exclusive_cycles,
                f"{profile.exclusive_cycles / total:.1%}",
                f"{profile.exclusive_per_call:.1f}",
            ]
        )
    print(
        format_table(
            ["procedure", "calls", "incl cycles", "incl%", "excl cycles", "excl%", "excl/call"],
            rows,
        )
    )

    report = machine.report()
    lines = []
    if "return_stack_hit_rate" in report:
        lines.append(f"return-stack hit rate: {report['return_stack_hit_rate']:.1%}")
    if machine.bankfile is not None:
        stats = machine.bankfile.stats
        lines.append(
            f"bank traffic: {stats.words_spilled} words spilled, "
            f"{stats.words_filled} filled "
            f"({stats.overflows} overflows, {stats.underflows} underflows)"
        )
    if "alloc" in report:
        alloc = report["alloc"]
        lines.append(
            f"frames: {alloc['allocations']:.0f} allocated, "
            f"{alloc['frees']:.0f} freed, "
            f"{alloc['replenishments']:.0f} allocator traps"
        )
    if lines:
        print()
        for line in lines:
            print(line)
    return 0


#: Version tag of the snapshot *file* (the envelope around the machine
#: state, which carries its own ``repro-snapshot/N`` schema).
SNAPSHOT_FILE_SCHEMA = "repro-snapshot-file/1"


def cmd_snapshot(args: argparse.Namespace) -> int:
    """Run a program for N instructions, then freeze the state vector.

    The file embeds the module sources so ``resume`` can relink the same
    image without the original files; restore is only defined against an
    identically configured machine (see docs/faults.md).
    """
    from repro.faults import capture

    sources = _read_program_sources(args.files)
    machine = _build(sources, args.impl, args.entry)
    machine.start(args.entry[0], args.entry[1], *args.args)
    while not machine.halted and machine.steps < args.at_step:
        machine.step()
    if machine.halted:
        print(
            f"snapshot: program halted at step {machine.steps}, before "
            f"--at-step {args.at_step}; nothing to freeze",
            file=sys.stderr,
        )
        return 1
    doc = {
        "schema": SNAPSHOT_FILE_SCHEMA,
        "impl": args.impl,
        "entry": f"{args.entry[0]}.{args.entry[1]}",
        "args": list(args.args),
        "sources": sources,
        "state": capture(machine),
    }
    text = json.dumps(doc) + "\n"
    Path(args.out).write_text(text)
    print(
        f"froze {args.impl} at step {machine.steps} "
        f"(cycle {machine.counter.cycles}) to {args.out}"
    )
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Thaw a snapshot file onto a fresh image and run it to completion.

    ``--verify`` also runs the same program straight through and checks
    that resumed == uninterrupted on results, steps, and every modelled
    meter — the bit-identical-resume guarantee.
    """
    from repro.errors import TrapError
    from repro.faults import restore

    doc = json.loads(Path(args.snapshot).read_text())
    if doc.get("schema") != SNAPSHOT_FILE_SCHEMA:
        print(
            f"resume: {args.snapshot} is not a {SNAPSHOT_FILE_SCHEMA} file "
            f"(schema {doc.get('schema')!r})",
            file=sys.stderr,
        )
        return 1
    entry = _entry(doc["entry"])
    machine = _build(doc["sources"], doc["impl"], entry)
    restore(machine, doc["state"])
    try:
        results = machine.run()
    except TrapError as fault:
        print(f"trap: {fault}", file=sys.stderr)
        return 1
    print(f"results: {results}")
    if machine.output:
        print(f"output:  {machine.output}")
    print(f"steps:   {machine.steps}  cycles: {machine.counter.cycles}")
    if args.verify:
        reference = _build(doc["sources"], doc["impl"], entry)
        reference.start(entry[0], entry[1], *doc["args"])
        ref_results = reference.run()
        mismatches = []
        if results != ref_results:
            mismatches.append(f"results {results} != {ref_results}")
        if machine.steps != reference.steps:
            mismatches.append(f"steps {machine.steps} != {reference.steps}")
        resumed, straight = machine.counter.snapshot(), reference.counter.snapshot()
        for key in sorted(set(resumed) | set(straight)):
            if resumed.get(key, 0) != straight.get(key, 0):
                mismatches.append(
                    f"{key} {resumed.get(key, 0)} != {straight.get(key, 0)}"
                )
        if mismatches:
            print("verify: resumed run DIVERGED from uninterrupted run:",
                  file=sys.stderr)
            for line in mismatches:
                print(f"  {line}", file=sys.stderr)
            return 1
        print("verify: resumed run is bit-identical to an uninterrupted run")
    return 0


#: Version tag of the loadgen workload file.
LOADGEN_SCHEMA = "repro-loadgen/1"


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Generate a seeded serving workload with host-computed answers."""
    from repro.net.serve import generate_workload

    workload = generate_workload(args.seed, args.requests)
    doc = {
        "schema": LOADGEN_SCHEMA,
        "seed": args.seed,
        "requests": args.requests,
        "workload": [request.to_dict() for request in workload],
    }
    text = json.dumps(doc, indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(
            f"{args.requests} request(s) (seed {args.seed}) written to {args.out}"
        )
    else:
        print(text, end="")
    return 0


def _serve_processes(
    args: argparse.Namespace, workload, source: str, pins=None
) -> int:
    """``serve --processes``: each shard a real OS worker process."""
    from repro.net.procserve import ProcessCluster, ProcessServer
    from repro.net.serve import SERVICE_SOURCES

    cluster = ProcessCluster(
        list(SERVICE_SOURCES),
        shards=args.shards,
        config=args.impl,
        pins=pins,
        self_homed=(args.route == "direct"),
    )
    try:
        server = ProcessServer(
            cluster,
            route=args.route,
            queue_capacity=args.queue_capacity,
            batch_size=args.batch_size,
        )
        report = server.serve(workload)
        meters = cluster.meters()
    finally:
        cluster.close()
    summary = report.to_dict()
    print(
        f"served {report.completed}/{report.requests} request(s) ({source}) "
        f"on {report.shards} worker process(es), route={args.route}, "
        f"in {summary['elapsed_s']}s ({summary['requests_per_s']} req/s)"
    )
    print(
        f"lost={report.lost} wrong={report.wrong} retried={report.retried} "
        f"backpressure_stalls={report.backpressure_stalls}"
    )
    print(
        f"latency: p50={summary['p50_ms']}ms p99={summary['p99_ms']}ms; "
        f"wire: {summary['wire']['wire_words']} words"
    )
    if args.json or args.out:
        doc = {"report": summary, "meters": {str(k): v for k, v in meters.items()}}
        text = json.dumps(doc, indent=2) + "\n"
        if args.out:
            Path(args.out).write_text(text)
            print(f"report written to {args.out}")
        else:
            print(text, end="")
    return 0 if report.lost == 0 and report.wrong == 0 else 1


def cmd_serve(args: argparse.Namespace) -> int:
    """Drive a shard pool through a loadgen workload and report."""
    from repro.jit import JitRefusal
    from repro.net.cluster import Cluster
    from repro.net.serve import SERVICE_SOURCES, Request, Server, generate_workload
    from repro.net.transport import SocketTransport
    from repro.obs import MetricsRegistry

    if args.workload:
        doc = json.loads(Path(args.workload).read_text())
        if doc.get("schema") != LOADGEN_SCHEMA:
            print(
                f"serve: {args.workload} is not a {LOADGEN_SCHEMA} workload",
                file=sys.stderr,
            )
            return 2
        workload = [Request.from_dict(r) for r in doc["workload"]]
        source = args.workload
    elif args.skew:
        from repro.net.serve import generate_skewed_workload

        workload = generate_skewed_workload(args.seed, args.requests)
        source = f"seed {args.seed} (skewed 90/10)"
    else:
        workload = generate_workload(args.seed, args.requests)
        source = f"seed {args.seed}"
    pins = None
    if args.pins:
        from repro.errors import NetError
        from repro.net.colocate import load_pins

        try:
            pins, planned_shards = load_pins(args.pins)
        except NetError as fault:
            print(f"serve: {fault}", file=sys.stderr)
            return 2
        if planned_shards and planned_shards != args.shards:
            print(
                f"serve: pin map {args.pins} was planned for "
                f"{planned_shards} shard(s), serving {args.shards}",
                file=sys.stderr,
            )
            return 2
    if args.processes:
        if args.engine == "jit":
            # Worker processes build their own machines from a spec that
            # has no engine slot; keep the axes orthogonal for now.
            print("serve: --engine jit does not combine with --processes",
                  file=sys.stderr)
            return 2
        if args.autoscale:
            print("serve: --autoscale drives the in-process pump; drop "
                  "--processes", file=sys.stderr)
            return 2
        return _serve_processes(args, workload, source, pins=pins)
    transport = SocketTransport() if args.socket else None
    try:
        cluster = Cluster(
            list(SERVICE_SOURCES),
            shards=args.shards,
            config=args.impl,
            pins=pins,
            transport=transport,
            engine=args.engine,
        )
    except JitRefusal as refusal:
        print(f"serve: jit refused: {refusal}", file=sys.stderr)
        return 2
    balancer = None
    pump_ticks = None
    if args.autoscale:
        from repro.net.balance import Balancer

        balancer = Balancer(
            high_water=args.high_water,
            low_water=args.low_water,
            patience=args.patience,
            budget=args.migration_budget,
        )
        pump_ticks = args.pump_ticks
    metrics = MetricsRegistry()
    server = Server(
        cluster,
        queue_capacity=args.queue_capacity,
        batch_size=args.batch_size,
        metrics=metrics,
        balancer=balancer,
        pump_ticks_per_round=pump_ticks,
    )
    try:
        report = server.serve(workload)
    finally:
        cluster.close()
    summary = report.to_dict()
    print(
        f"served {report.completed}/{report.requests} request(s) ({source}) "
        f"on {report.shards} shard(s) in {report.ticks} pump ticks"
    )
    print(
        f"lost={report.lost} wrong={report.wrong} retried={report.retried} "
        f"backpressure_stalls={report.backpressure_stalls}"
        + (f" migrations={report.migrations}" if args.autoscale else "")
    )
    print(
        f"latency: p50={summary['p50_ticks']} p99={summary['p99_ticks']} "
        f"pump ticks; wire: {report.wire_words} words"
    )
    if args.json or args.out:
        doc = {
            "report": summary,
            "metrics": metrics.snapshot(),
            "placement": cluster.placement.table(cluster.shards[0].modules()),
            "wire": cluster.transport.stats.as_dict(),
        }
        text = json.dumps(doc, indent=2) + "\n"
        if args.out:
            Path(args.out).write_text(text)
            print(f"report written to {args.out}")
        else:
            print(text, end="")
    return 0 if report.lost == 0 and report.wrong == 0 else 1


def cmd_migrate(args: argparse.Namespace) -> int:
    """Live-migrate a running process between shards and prove it safe.

    Runs a corpus program split across shards twice — once untouched,
    once migrating the root process to a spare shard mid-flight — and
    compares results and cluster-aggregate modelled meters.  Exclusive
    mode must be bit-identical on both axes; shared mode must be
    results-identical (meter attribution legitimately shifts).
    """
    import re

    from repro.interp.processes import ProcessStatus
    from repro.net.cluster import Cluster
    from repro.net.migrate import MigrateError, aggregate_meters
    from repro.workloads.programs import CORPUS, program

    if args.program not in CORPUS:
        print(f"migrate: unknown corpus program {args.program!r} "
              f"(known: {', '.join(sorted(CORPUS))})", file=sys.stderr)
        return 2
    prog = program(args.program)
    modules: list[str] = []
    for source in prog.sources:
        modules.extend(re.findall(r"MODULE\s+(\w+)\s*;", source))
    entry_module = prog.entry[0]
    # The split that makes the demo interesting: the entry module alone
    # on shard 0, everything else on shard 1, shard 2 spare to adopt.
    pins = {m: (0 if m == entry_module else 1) for m in modules}
    shards = max(3, args.to + 1)
    if args.to == 0:
        print("migrate: --to 0 is the root's own home; pick another shard",
              file=sys.stderr)
        return 2

    def build() -> Cluster:
        return Cluster(
            list(prog.sources), shards=shards, config=args.impl, pins=pins
        )

    reference = build()
    ref_ticket = reference.submit(prog.entry[0], prog.entry[1], *prog.args)
    reference.pump()
    ref_agg = aggregate_meters(reference.meters())

    cluster = build()
    ticket = cluster.submit(prog.entry[0], prog.entry[1], *prog.args)
    migrated_tick = None
    moved = True
    while moved:
        moved = cluster.pump_tick()
        if (
            migrated_tick is None
            and cluster.ticks >= args.at
            and ticket.process.status is ProcessStatus.BLOCKED
        ):
            try:
                cluster.migrate(ticket, args.to, mode=args.mode)
            except MigrateError as refusal:
                print(f"migrate: refused: {refusal}", file=sys.stderr)
                return 2
            migrated_tick = cluster.ticks
    if migrated_tick is None:
        print(
            f"migrate: {args.program} never blocked at/after tick {args.at} "
            "— nothing to migrate (try a smaller --at)",
            file=sys.stderr,
        )
        return 2
    agg = aggregate_meters(cluster.meters())

    print(
        f"migrated {args.program} root p{ticket.process.pid} to shard "
        f"{args.to} at tick {migrated_tick} ({args.mode} mode)"
    )
    ok = True
    if ticket.status is not ProcessStatus.DONE or ticket.results != ref_ticket.results:
        print(f"  results: {ticket.results} != reference {ref_ticket.results}")
        ok = False
    else:
        print(f"  results: {ticket.results} == unmigrated reference")
    if args.mode == "exclusive":
        if agg == ref_agg:
            print("  cluster-aggregate meters: bit-identical to the "
                  "unmigrated run")
        else:
            print("  cluster-aggregate meters: DIVERGED from the "
                  "unmigrated run")
            ok = False
    else:
        same = "identical" if agg == ref_agg else "shifted (expected)"
        print(f"  cluster-aggregate meters: {same} — shared mode promises "
              "results only")
    if args.json:
        print(json.dumps(
            {
                "program": args.program,
                "mode": args.mode,
                "migrated_tick": migrated_tick,
                "results": list(ticket.results),
                "reference_results": list(ref_ticket.results),
                "aggregate_meters": agg,
                "reference_meters": ref_agg,
                "ok": ok,
            },
            indent=2,
        ))
    return 0 if ok else 1


def _net_chaos(args: argparse.Namespace) -> int:
    """``chaos --net``: the transport-fault sweep over a split cluster."""
    from repro.net.chaos import (
        MIGRATION_PLANS,
        NET_PLANS,
        run_net_chaos,
        run_net_chaos_process,
        run_net_migration_chaos,
    )

    if args.migrate:
        if args.processes:
            print("chaos: --migrate races the in-process pump; drop "
                  "--processes", file=sys.stderr)
            return 2
        plans = tuple(args.plans) if args.plans else MIGRATION_PLANS
        unknown = [name for name in plans if name not in MIGRATION_PLANS]
        if unknown:
            print(f"chaos: plans {unknown} do not combine with --migrate "
                  f"(canned: {', '.join(MIGRATION_PLANS)})", file=sys.stderr)
            return 2
        report = run_net_migration_chaos(plans=plans, seeds=args.seeds)
        print(report.summary())
        if args.report:
            Path(args.report).write_text(
                json.dumps(report.to_dict(), indent=2) + "\n"
            )
            print(f"report written to {args.report}")
        return 0 if report.ok else 1
    plans = tuple(args.plans) if args.plans else tuple(NET_PLANS)
    unknown = [name for name in plans if name not in NET_PLANS]
    if unknown:
        print(f"chaos: unknown net plans {unknown} "
              f"(canned: {', '.join(NET_PLANS)})", file=sys.stderr)
        return 2
    if args.processes:
        report = run_net_chaos_process(plans=plans, seeds=args.seeds)
    else:
        report = run_net_chaos(plans=plans, seeds=args.seeds)
    print(report.summary())
    if args.report:
        Path(args.report).write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    """Replay seeded fault plans across I1-I4; fail on any divergence."""
    from repro.faults.chaos import CANNED_PLANS, DEFAULT_PROGRAMS, run_chaos
    from repro.workloads.programs import CORPUS

    if args.net:
        return _net_chaos(args)
    if args.processes:
        print("chaos: --processes requires --net", file=sys.stderr)
        return 2
    if args.migrate:
        print("chaos: --migrate requires --net", file=sys.stderr)
        return 2
    programs = tuple(args.programs) if args.programs else DEFAULT_PROGRAMS
    unknown = [name for name in programs if name not in CORPUS]
    if unknown:
        print(f"chaos: unknown corpus programs {unknown}", file=sys.stderr)
        return 2
    plans = tuple(args.plans) if args.plans else tuple(CANNED_PLANS)
    unknown = [name for name in plans if name not in CANNED_PLANS]
    if unknown:
        print(f"chaos: unknown plans {unknown} "
              f"(canned: {', '.join(CANNED_PLANS)})", file=sys.stderr)
        return 2
    report = run_chaos(programs=programs, seeds=args.seeds, plans=plans,
                       engine=args.engine)
    print(report.summary())
    if args.report:
        Path(args.report).write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


def _embedded_sources(text: str) -> list[str]:
    """MESA module sources embedded in a Python file as string literals.

    The examples keep their programs in module-level strings; any string
    constant whose stripped text starts with ``MODULE `` counts.  All
    strings in one file form one program.
    """
    import ast as python_ast

    sources = []
    for node in python_ast.walk(python_ast.parse(text)):
        if (
            isinstance(node, python_ast.Constant)
            and isinstance(node.value, str)
            and node.value.lstrip().startswith("MODULE ")
        ):
            sources.append(node.value)
    return sources


def cmd_check(args: argparse.Namespace) -> int:
    """Statically verify programs: control flow, stack depths, linkage.

    Exit status: 0 all clean, 1 findings (errors; warnings too under
    ``--strict``), 2 when a program could not even be compiled or linked.
    """
    import sys

    from repro.check import check_image, check_modules
    from repro.errors import ReproError

    if not args.files and not args.corpus:
        print("check: give source files, --from-python files, or --corpus",
              file=sys.stderr)
        return 2

    programs: list[tuple[str, list[str], tuple[str, str] | None]] = []
    if args.corpus:
        from repro.workloads.programs import CORPUS

        for name, program in CORPUS.items():
            programs.append((f"corpus:{name}", list(program.sources), program.entry))
    if args.from_python:
        for path in args.files:
            sources = _embedded_sources(Path(path).read_text())
            if sources:
                programs.append((path, sources, None))
            else:
                print(f"{path}: no embedded MODULE sources, nothing to check")
    elif args.files:
        programs.append((", ".join(args.files), _read_sources(args.files), args.entry))

    config = MachineConfig.preset(args.impl)
    status = 0
    for label, sources, entry in programs:
        try:
            modules = compile_program(sources, CompileOptions.for_config(config))
        except ReproError as fault:
            print(f"{label}: cannot compile: {fault}")
            status = 2
            continue
        if entry is None:
            entry = (modules[0].name, modules[0].procedures[0].name)
            for module in modules:
                if module.name == "Main" and any(
                    procedure.name == "main" for procedure in module.procedures
                ):
                    entry = ("Main", "main")
                    break
        report = check_modules(
            modules,
            convention=config.arg_convention,
            stack_limit=config.eval_stack_depth,
            entry=entry,
        )
        if report.ok:
            try:
                image = link(modules, config, entry)
            except ReproError as fault:
                print(f"{label}: cannot link: {fault}")
                status = 2
                continue
            report = check_image(image)
        failed = not report.ok or (args.strict and report.warnings)
        if report.diagnostics:
            print(f"== {label} ==")
            print(report.format(listing=args.listing))
        else:
            print(f"{label}: clean")
        if failed:
            status = max(status, 1)
    return status


def _default_entry(modules) -> tuple[str, str]:
    """``Main.main`` when present, else the first procedure compiled."""
    for module in modules:
        if module.name == "Main" and any(
            procedure.name == "main" for procedure in module.procedures
        ):
            return ("Main", "main")
    return (modules[0].name, modules[0].procedures[0].name)


def cmd_analyze(args: argparse.Namespace) -> int:
    """Interprocedural analysis: resolved call graph, effect summaries,
    stack/frame bounds, and the versioned ``repro-facts/1`` document.

    Exit status: 0 facts emitted for every program, 1 findings (the
    analysis gate failed, or ``--differential`` observed an edge or
    depth outside the static prediction), 2 when a program could not be
    compiled or linked.
    """
    import sys

    from repro.check import FACTS_SCHEMA, analyze_image, soundness_differential
    from repro.errors import ReproError
    from repro.interp.machineconfig import LinkageKind

    if not args.files and not args.corpus:
        print("analyze: give source files, --from-python files, or --corpus",
              file=sys.stderr)
        return 2

    config = MachineConfig.preset(args.impl)
    programs: list[tuple[str, list[str], tuple[str, str] | None, object]] = []
    if args.corpus:
        from repro.workloads.programs import CORPUS

        for name, program in CORPUS.items():
            if program.needs_descriptors and config.linkage is LinkageKind.SIMPLE:
                continue  # no packed descriptors under SIMPLE linkage
            programs.append(
                (f"corpus:{name}", list(program.sources), program.entry, program)
            )
    if args.from_python:
        for path in args.files:
            sources = _embedded_sources(Path(path).read_text())
            if sources:
                programs.append((path, sources, None, None))
            else:
                print(f"{path}: no embedded MODULE sources, nothing to analyze")
    elif args.files:
        programs.append(
            (", ".join(args.files), _read_sources(args.files), args.entry, None)
        )

    status = 0
    documents: dict[str, dict] = {}
    for label, sources, entry, program in programs:
        try:
            modules = compile_program(sources, CompileOptions.for_config(config))
            if entry is None:
                entry = _default_entry(modules)
            image = link(modules, config, entry)
        except ReproError as fault:
            print(f"{label}: cannot build: {fault}", file=sys.stderr)
            status = 2
            continue
        extra = [tuple(root) for root in args.root] if args.root else None
        analysis = analyze_image(image, extra_roots=extra)
        if not analysis.ok:
            print(f"== {label} ==")
            print(analysis.report.format())
            status = max(status, 1)
            continue
        if args.strict and analysis.report.warnings:
            print(f"== {label} ==")
            print(analysis.report.format())
            status = max(status, 1)
        facts = analysis.to_facts()
        documents[label] = facts
        if not args.json:
            summary = facts["summary"]
            print(
                f"{label}: {summary['sites']} site(s): "
                f"{summary['monomorphic']} monomorphic, "
                f"{summary['polymorphic']} polymorphic, "
                f"{summary['unknown']} unknown"
            )
            for root, bound in facts["entry_bounds"].items():
                depth = bound["call_depth"]
                words = bound["frame_words"]
                print(
                    f"  {root}: call depth "
                    f"{'unbounded' if depth is None else depth}, frame words "
                    f"{'unbounded' if words is None else words}, eval depth "
                    f"{bound['eval_depth']}"
                )
        if args.differential and program is not None:
            problems = soundness_differential(program, args.impl)
            for problem in problems:
                print(f"  UNSOUND: {problem}")
            if problems:
                status = max(status, 1)
            elif not args.json:
                print("  differential: every observed edge and depth contained")

    if args.json or args.out:
        if len(documents) == 1 and not args.corpus:
            payload = next(iter(documents.values()))
        else:
            payload = {
                "schema": FACTS_SCHEMA,
                "impl": args.impl,
                "programs": documents,
            }
        text = json.dumps(payload, indent=2)
        if args.out:
            Path(args.out).write_text(text + "\n")
            if not args.json:
                print(f"facts written to {args.out}")
        if args.json:
            print(text)
    return status


def _optimize_placement(args: argparse.Namespace) -> int:
    """``optimize --placement``: a recorded serving run -> a pin map.

    Runs the service image under the loadgen workload with tracing on,
    stitches the per-shard spans, and plans pins that co-locate chatty
    caller/callee module pairs (``repro serve --pins FILE`` loads the
    result).
    """
    from repro.net.colocate import plan_pins
    from repro.net.serve import run_serve
    from repro.net.stitch import stitch

    report, cluster, _ = run_serve(
        shards=args.shards,
        requests=args.requests,
        seed=args.seed,
        config=args.impl,
        record=True,
    )
    if report.lost or report.wrong:
        print(
            f"optimize: profiling run lost {report.lost} / answered "
            f"{report.wrong} wrong — refusing to plan from it",
            file=sys.stderr,
        )
        return 2
    roots = stitch(cluster.trace_events())
    plan = plan_pins(roots, args.shards)
    text = json.dumps(plan.to_dict(), indent=2) + "\n"
    if args.out:
        Path(args.out).write_text(text)
        print(f"pin map written to {args.out}")
    else:
        print(text, end="")
    hot = plan.edges[:3]
    for edge in hot:
        together = plan.pins[edge["caller"]] == plan.pins[edge["callee"]]
        state = "co-located" if together else "split"
        print(
            f"  {edge['caller']} -> {edge['callee']}: {edge['calls']} "
            f"call(s), {state}"
        )
    return 0


def cmd_optimize(args: argparse.Namespace) -> int:
    """Feedback-directed image rewriting: profile + facts → a verified
    optimized image (see ``docs/fdo.md``).

    Exit status: 0 when an image was emitted (a no-op rewrite still
    emits — the image is byte-identical to the original), 2 when the
    inputs are stale/mismatched or every rewrite candidate failed the
    verification gates.
    """
    from repro.errors import ReproError
    from repro.fdo import FdoRefusal, optimize, save_image

    if args.placement:
        return _optimize_placement(args)
    if not args.files or not args.profile or not args.facts or not args.out:
        print(
            "optimize: image rewriting needs source files, --profile, "
            "--facts, and --out (or use --placement for a pin map)",
            file=sys.stderr,
        )
        return 2
    try:
        sources = _read_program_sources(args.files)
        profile = json.loads(Path(args.profile).read_text())
        facts = json.loads(Path(args.facts).read_text())
    except (OSError, json.JSONDecodeError) as fault:
        print(f"optimize: cannot read inputs: {fault}", file=sys.stderr)
        return 2
    try:
        result = optimize(
            sources,
            args.impl,
            args.entry,
            profile,
            facts,
            min_calls=args.min_site_calls,
        )
    except FdoRefusal as refusal:
        print(f"optimize: refused: {refusal}", file=sys.stderr)
        return 2
    except ReproError as fault:
        print(f"optimize: cannot build: {fault}", file=sys.stderr)
        return 2
    save_image(result, args.out)
    log = result.log
    if args.log:
        Path(args.log).write_text(json.dumps(log, indent=2) + "\n")
    if args.json:
        print(json.dumps(log, indent=2))
        return 0
    kind = "no-op (byte-identical)" if log["noop"] else "rewritten"
    print(f"optimized image written to {args.out} ({kind})")
    for decision in log["decisions"]:
        saving = decision.get("expected_saving", {})
        cycles = saving.get("cycles")
        tail = f"  (expect -{cycles} cycles)" if cycles else ""
        where = decision.get("site") or ", ".join(
            decision.get("procedures", ())
        )
        where = f" {where}" if where else ""
        print(f"  {decision['kind']}:{where} {decision['rewrite']}{tail}")
    for refusal in log["refusals"]:
        site = f" {refusal['site']}" if "site" in refusal else ""
        print(f"  refused [{refusal['aspect']}]{site}: {refusal['reason']}")
    total = log["expected_saving"]
    if total["cycles"] or total["memory_references"]:
        print(
            f"  expected saving: {total['memory_references']} memory "
            f"references, {total['cycles']} cycles (replay-validated)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast Procedure Calls (ASPLOS 1982) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("files", nargs="+", help="module source files")
        p.add_argument("--entry", type=_entry, default=("Main", "main"),
                       help="entry procedure, Module.proc (default Main.main)")

    run = sub.add_parser("run", help="compile and execute a program")
    run.add_argument("files", nargs="*", help="module source files")
    run.add_argument("--entry", type=_entry, default=("Main", "main"),
                     help="entry procedure, Module.proc (default Main.main)")
    run.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i2",
                     help="implementation preset (default i2)")
    run.add_argument("--args", type=int, nargs="*", default=[],
                     help="integer arguments for the entry procedure")
    run.add_argument("--stats", action="store_true", help="print the meters")
    run.add_argument("--engine", choices=["interp", "jit"], default="interp",
                     help="execution engine (jit compiles verified blocks)")
    run.add_argument("--facts", metavar="PATH", default=None,
                     help="precomputed repro-facts/1 artifact (jit only; "
                     "must match the image)")
    run.add_argument("--image", metavar="PATH", default=None,
                     help="execute a repro-image/1 optimized image written "
                     "by `repro optimize` (instead of source files; the "
                     "file pins impl, entry, and sources)")
    run.set_defaults(func=cmd_run)

    disasm = sub.add_parser("disasm", help="show the compiled encoding")
    common(disasm)
    disasm.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i2")
    disasm.set_defaults(func=cmd_disasm)

    measure = sub.add_parser("measure", help="run the I1-I4 ladder comparison")
    common(measure)
    measure.add_argument("--args", type=int, nargs="*", default=[])
    measure.add_argument("--engine", choices=["interp", "jit"],
                         default="interp",
                         help="execution engine for every rung of the ladder")
    measure.add_argument("--json", action="store_true",
                         help="emit machine-readable CycleCounter snapshots")
    measure.set_defaults(func=cmd_measure)

    trace = sub.add_parser(
        "trace", help="record and export the observability event stream"
    )
    trace.add_argument("files", nargs="+",
                       help="module source files (or .py files with embedded "
                            "MODULE literals, like the examples)")
    trace.add_argument("--entry", type=_entry, default=("Main", "main"),
                       help="entry procedure, Module.proc (default Main.main)")
    trace.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i4",
                       help="implementation preset (default i4)")
    trace.add_argument("--args", type=int, nargs="*", default=[],
                       help="integer arguments for the entry procedure")
    trace.add_argument("--format", choices=["chrome", "folded", "jsonl"],
                       default="jsonl",
                       help="chrome (chrome://tracing JSON), folded "
                            "(flamegraph stacks), or jsonl (default)")
    trace.add_argument("--out", metavar="PATH", default=None,
                       help="write to a file instead of stdout")
    trace.add_argument("--capacity", type=int, default=None, metavar="N",
                       help="bound the event ring buffer (default: unbounded)")
    trace.add_argument("--steps", action="store_true",
                       help="also record one machine.step event per instruction")
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile", help="call-tree profile by inclusive/exclusive modelled cycles"
    )
    profile.add_argument("files", nargs="+",
                        help="module source files (or .py files with embedded "
                             "MODULE literals, like the examples)")
    profile.add_argument("--entry", type=_entry, default=("Main", "main"),
                        help="entry procedure, Module.proc (default Main.main)")
    profile.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i4",
                        help="implementation preset (default i4)")
    profile.add_argument("--args", type=int, nargs="*", default=[],
                        help="integer arguments for the entry procedure")
    profile.add_argument("--top", type=int, default=10, metavar="N",
                        help="procedures to list (default 10)")
    profile.add_argument("--shards", type=int, default=1, metavar="N",
                        help="split the program across N shards and print "
                             "the stitched cross-shard call tree (default 1)")
    profile.add_argument("--pin", type=_pin, action="append", metavar="MOD=SHARD",
                        help="pin a module to a shard (repeatable; default: "
                             "consistent-hash placement)")
    profile.add_argument("--json", action="store_true",
                        help="emit the repro-profile/1 document (the input "
                             "to `repro optimize`) instead of the table")
    profile.add_argument("--out", metavar="PATH", default=None,
                        help="write the repro-profile/1 document here")
    profile.set_defaults(func=cmd_profile)

    verify = sub.add_parser(
        "verify", help="fast checks of the paper's headline claims"
    )
    verify.set_defaults(func=cmd_verify)

    snapshot = sub.add_parser(
        "snapshot", help="run N instructions, then freeze the machine state"
    )
    snapshot.add_argument("files", nargs="+",
                          help="module source files (or .py files with embedded "
                               "MODULE literals, like the examples)")
    snapshot.add_argument("--entry", type=_entry, default=("Main", "main"),
                          help="entry procedure, Module.proc (default Main.main)")
    snapshot.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i4",
                          help="implementation preset (default i4)")
    snapshot.add_argument("--args", type=int, nargs="*", default=[],
                          help="integer arguments for the entry procedure")
    snapshot.add_argument("--at-step", type=int, required=True, metavar="N",
                          help="freeze after N executed instructions")
    snapshot.add_argument("--out", metavar="PATH", required=True,
                          help="snapshot file to write")
    snapshot.set_defaults(func=cmd_snapshot)

    resume = sub.add_parser(
        "resume", help="thaw a snapshot onto a fresh image and finish the run"
    )
    resume.add_argument("snapshot", help="file written by `repro snapshot`")
    resume.add_argument("--verify", action="store_true",
                        help="also run straight through and require the resumed "
                             "run to match on results, steps, and all meters")
    resume.set_defaults(func=cmd_resume)

    chaos = sub.add_parser(
        "chaos", help="replay seeded fault plans across I1-I4 over the corpus"
    )
    chaos.add_argument("--corpus", action="store_true",
                       help="use the default chaos corpus subset (implied; "
                            "narrow it with --programs)")
    chaos.add_argument("--programs", nargs="*", metavar="NAME",
                       help="corpus programs to stress (default: chaos subset)")
    chaos.add_argument("--plans", nargs="*", metavar="NAME",
                       help="canned fault plans to replay (default: all)")
    chaos.add_argument("--seeds", type=int, default=5, metavar="N",
                       help="seeds per (program, plan) pair (default 5)")
    chaos.add_argument("--engine", choices=["interp", "jit"],
                       default="interp",
                       help="install the jit on every machine (outcomes "
                       "must be unchanged by the deopt contract)")
    chaos.add_argument("--report", metavar="PATH", default=None,
                       help="write the full JSON conformance report here")
    chaos.add_argument("--net", action="store_true",
                       help="run the transport-fault sweep instead: drops, "
                            "duplicates, delays, and partitions over a "
                            "2-shard split cluster")
    chaos.add_argument("--processes", action="store_true",
                       help="with --net: drive the sweep across real OS "
                            "worker processes through the front door's "
                            "fault router (outcome-class conformance)")
    chaos.add_argument("--migrate", action="store_true",
                       help="with --net: migrate the root request "
                            "mid-flight in every case — the migration must "
                            "race the plan and still recover with the "
                            "reference results, deterministically")
    chaos.set_defaults(func=cmd_chaos)

    serve = sub.add_parser(
        "serve", help="drive a shard pool through a loadgen workload"
    )
    serve.add_argument("--shards", type=int, default=4, metavar="N",
                       help="shards in the pool (default 4)")
    serve.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i2",
                       help="implementation preset per shard (default i2)")
    serve.add_argument("--workload", metavar="PATH", default=None,
                       help="loadgen workload file (default: generate from "
                            "--requests/--seed)")
    serve.add_argument("--requests", type=int, default=100, metavar="N",
                       help="requests to generate when no workload file "
                            "(default 100)")
    serve.add_argument("--seed", type=int, default=7, metavar="S",
                       help="workload seed (default 7)")
    serve.add_argument("--queue-capacity", type=int, default=8, metavar="N",
                       help="bounded per-shard run queue (default 8)")
    serve.add_argument("--batch-size", type=int, default=4, metavar="N",
                       help="admissions per pump round (default 4)")
    serve.add_argument("--socket", action="store_true",
                       help="carry the wire records over a real socketpair")
    serve.add_argument("--processes", action="store_true",
                       help="promote each shard to a real OS worker process "
                            "behind the asyncio front door")
    serve.add_argument("--engine", choices=["interp", "jit"],
                       default="interp",
                       help="shard execution engine (in-process shards only)")
    serve.add_argument("--route", choices=["direct", "dispatch"],
                       default="direct",
                       help="process-mode routing: direct (leaf procedure on "
                            "a round-robin worker; the scale route) or "
                            "dispatch (Main.dispatch with worker-to-worker "
                            "Remote XFER; the conformance route)")
    serve.add_argument("--pins", metavar="PATH", default=None,
                       help="repro-pins/1 pin map from `repro optimize "
                            "--placement`: place modules where the plan says")
    serve.add_argument("--autoscale", action="store_true",
                       help="attach the migration balancer: tick-paced "
                            "pumping, hot shards drained onto cold ones via "
                            "live process migration (in-process shards only)")
    serve.add_argument("--skew", action="store_true",
                       help="use the 90/10 hot-key workload instead of the "
                            "uniform one (the autoscaling load shape)")
    serve.add_argument("--pump-ticks", type=int, default=1, metavar="N",
                       help="with --autoscale: pump ticks per admission "
                            "round (default 1)")
    serve.add_argument("--high-water", type=int, default=6, metavar="N",
                       help="with --autoscale: in-flight requests above "
                            "which a shard counts as hot (default 6)")
    serve.add_argument("--low-water", type=int, default=2, metavar="N",
                       help="with --autoscale: in-flight requests at/below "
                            "which a shard may receive migrants (default 2)")
    serve.add_argument("--patience", type=int, default=3, metavar="N",
                       help="with --autoscale: consecutive hot observations "
                            "before migrating (default 3)")
    serve.add_argument("--migration-budget", type=int, default=1, metavar="N",
                       help="with --autoscale: migrations per observation "
                            "(default 1)")
    serve.add_argument("--json", action="store_true",
                       help="also print the full JSON report")
    serve.add_argument("--out", metavar="PATH", default=None,
                       help="write the full JSON report here")
    serve.set_defaults(func=cmd_serve)

    migrate = sub.add_parser(
        "migrate",
        help="live-migrate a running process between shards and prove it",
    )
    migrate.add_argument("--program", default="mathlib", metavar="NAME",
                         help="corpus program to run split (default mathlib)")
    migrate.add_argument("--impl", choices=["i1", "i2", "i3", "i4"],
                         default="i2",
                         help="implementation preset (default i2)")
    migrate.add_argument("--at", type=int, default=2, metavar="TICK",
                         help="migrate at the first block boundary at/after "
                              "this pump tick (default 2)")
    migrate.add_argument("--to", type=int, default=2, metavar="SHARD",
                         help="target shard (default 2, the spare)")
    migrate.add_argument("--mode", choices=["exclusive", "shared"],
                         default="exclusive",
                         help="exclusive: idle target, cluster-aggregate "
                              "meters bit-identical; shared: busy target, "
                              "results-exact (default exclusive)")
    migrate.add_argument("--json", action="store_true",
                         help="also print the full JSON evidence")
    migrate.set_defaults(func=cmd_migrate)

    loadgen = sub.add_parser(
        "loadgen", help="generate a seeded serving workload with known answers"
    )
    loadgen.add_argument("--requests", type=int, default=100, metavar="N",
                         help="requests to generate (default 100)")
    loadgen.add_argument("--seed", type=int, default=7, metavar="S",
                         help="generator seed (default 7)")
    loadgen.add_argument("--out", metavar="PATH", default=None,
                         help="write the workload JSON here (default stdout)")
    loadgen.set_defaults(func=cmd_loadgen)

    check = sub.add_parser(
        "check", help="statically verify programs without executing them"
    )
    check.add_argument("files", nargs="*", help="module source files")
    check.add_argument("--entry", type=_entry, default=None,
                       help="entry procedure, Module.proc (default Main.main)")
    check.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i2",
                       help="implementation preset to verify against (default i2)")
    check.add_argument("--corpus", action="store_true",
                       help="also verify every workload corpus program")
    check.add_argument("--from-python", action="store_true",
                       help="treat each file as a Python file with embedded "
                            "MODULE string literals (the examples)")
    check.add_argument("--listing", action="store_true",
                       help="print disassembled context around each finding")
    check.add_argument("--strict", action="store_true",
                       help="warnings also fail the check")
    check.set_defaults(func=cmd_check)

    analyze = sub.add_parser(
        "analyze",
        help="interprocedural analysis: call graph, effects, bounds, facts",
    )
    analyze.add_argument("files", nargs="*", help="module source files")
    analyze.add_argument("--entry", type=_entry, default=None,
                         help="entry procedure, Module.proc (default Main.main)")
    analyze.add_argument("--impl", choices=["i1", "i2", "i3", "i4"], default="i2",
                         help="implementation preset to analyze against "
                              "(default i2)")
    analyze.add_argument("--corpus", action="store_true",
                         help="analyze every workload corpus program")
    analyze.add_argument("--from-python", action="store_true",
                         help="treat each file as a Python file with embedded "
                              "MODULE string literals (the examples)")
    analyze.add_argument("--root", action="append", type=_entry, default=None,
                         metavar="MODULE.PROC",
                         help="extra call-graph root (spawned process or "
                              "served entry); repeatable")
    analyze.add_argument("--json", action="store_true",
                         help="print the repro-facts/1 JSON document")
    analyze.add_argument("--out", metavar="FILE",
                         help="also write the facts JSON to FILE")
    analyze.add_argument("--differential", action="store_true",
                         help="corpus soundness gate: run each program under "
                              "the tracer and assert every observed call "
                              "edge and depth is statically predicted")
    analyze.add_argument("--strict", action="store_true",
                         help="warnings also fail the analysis")
    analyze.set_defaults(func=cmd_analyze)

    optimize = sub.add_parser(
        "optimize",
        help="feedback-directed image rewriting from a profile + facts",
    )
    optimize.add_argument("files", nargs="*",
                          help="module source files (or .py files with "
                               "embedded MODULE literals, like the examples)")
    optimize.add_argument("--entry", type=_entry, default=("Main", "main"),
                          help="entry procedure, Module.proc (default "
                               "Main.main)")
    optimize.add_argument("--impl", choices=["i1", "i2", "i3", "i4"],
                          default="i2",
                          help="implementation preset the rewrite targets "
                               "(must match the profile; default i2)")
    optimize.add_argument("--profile", metavar="PATH", default=None,
                          help="repro-profile/1 document from "
                               "`repro profile --out` (image rewriting)")
    optimize.add_argument("--facts", metavar="PATH", default=None,
                          help="repro-facts/1 artifact from "
                               "`repro analyze --out` (image rewriting)")
    optimize.add_argument("--out", metavar="PATH", default=None,
                          help="output file: optimized repro-image/1 "
                               "(required for image rewriting; run it with "
                               "`repro run --image`) or repro-pins/1 pin "
                               "map with --placement (default stdout)")
    optimize.add_argument("--placement", action="store_true",
                          help="plan a placement pin map instead: run the "
                               "service image recorded, stitch the "
                               "cross-shard spans, and co-locate chatty "
                               "module pairs (`repro serve --pins FILE`)")
    optimize.add_argument("--shards", type=int, default=4, metavar="N",
                          help="with --placement: shards to plan for "
                               "(default 4)")
    optimize.add_argument("--requests", type=int, default=100, metavar="N",
                          help="with --placement: profiling workload size "
                               "(default 100)")
    optimize.add_argument("--seed", type=int, default=7, metavar="S",
                          help="with --placement: profiling workload seed "
                               "(default 7)")
    optimize.add_argument("--log", metavar="PATH", default=None,
                          help="also write the repro-fdo/1 decision log here")
    optimize.add_argument("--json", action="store_true",
                          help="print the repro-fdo/1 decision log instead "
                               "of the summary")
    optimize.add_argument("--min-site-calls", type=int, default=2, metavar="N",
                          help="observed calls before a site counts as hot "
                               "(default 2)")
    optimize.set_defaults(func=cmd_optimize)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
