"""Whole-image interprocedural analysis: call graph, effects, bounds.

The intraprocedural verifier (:mod:`repro.check.checker`) proves each
body safe in isolation; this module layers the whole-image questions on
top, in the CFA2 / pushdown-analysis tradition: calls and returns are
matched exactly (a call edge goes to the target's entry and comes back
to the site, never smeared across return points), so the precision of
the summaries below is limited only by genuinely data-dependent
transfers (``XF``), which are over-approximated, never dropped.

Four products, one per question the FDO pass and the template JIT ask:

* **call-site resolution** — every ``LFC``/``EFC*``/``DFC``/``SDFC``
  resolves through the image's linkage tables to exactly one target;
  every ``XF`` is bounded by the *XF universe*: the procedures whose
  descriptors are taken as ``PROC`` literals (the only way a packed
  descriptor enters the data flow) plus the *resumable* set — procedures
  whose live frames can escape as context words (bodies containing
  ``XF`` or ``LLC``, and static callers of bodies containing ``LRC``).
  Each site is classified ``monomorphic`` / ``polymorphic`` /
  ``unknown`` by the size of its target set.
* **effect summaries** — per-procedure flags (globals read/written,
  heap read/written, ports performed, traps possible) scanned from the
  bytecode (:mod:`repro.check.effects`) and closed transitively over
  the call and XF edges; ``locals-only`` means no data effect outside
  the procedure's own frame survives the closure.
* **worst-case bounds per entry point** — interprocedural eval-stack
  depth (exact: the section 5.2 discipline makes the stack hold only
  the argument record at transfers, so the maximum is the maximum over
  reachable bodies), and call-depth / total-frame-words bounds by
  longest path over the callee graph (``None`` = unbounded when
  recursion or a reachable ``XF`` makes the chain data-dependent).
* **facts artifact** — :func:`ImageAnalysis.to_facts` serializes it all
  as a versioned JSON document (:data:`FACTS_SCHEMA`), the input
  contract of ``repro analyze`` and the optimization passes.

Soundness is *gated dynamically*: :func:`soundness_differential` runs a
corpus program under the obs tracer and asserts every observed call
edge, callee, transfer depth, and eval-stack depth is contained in the
static prediction.  Over-approximation is fine; under-approximation is
the property failure.  The contract excludes descriptors forged by
arithmetic (not produced by ``PROC`` literals) — the checker already
marks every ``XF`` body with a ``dynamic-transfer`` NOTE for that
reason — and trap-context transfers (modelled as host-level faults).

Facts are only emitted for images whose :func:`check_image` report is
clean: an image that lies about its frame sizes or linkage tables gets
no facts, which is exactly how the under-declared-frame fuzz injection
is caught (see ``check/fuzz.py``).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.interp.image import LinkedModule, ProgramImage
from repro.interp.machineconfig import ArgConvention, LinkageKind
from repro.isa.opcodes import CALL_OPS, Op
from repro.isa.program import Procedure

from repro.check.callgraph import CallGraph, ProcNode
from repro.check.checker import _image_resolver, check_image
from repro.check.diagnostics import CheckReport, Severity
from repro.check.effects import (
    FIXED_EFFECTS,
    GLOBAL_READ_OPS,
    GLOBAL_WRITE_OPS,
    HEAP_READ_OPS,
    HEAP_WRITE_OPS,
    PORT_OPS,
    TRAP_POSSIBLE_OPS,
)
from repro.check.cfg import build_cfg
from repro.check.stackcheck import StackRules, verify_stack_depths

#: Version tag of the facts document; bump on any shape change.
FACTS_SCHEMA = "repro-facts/1"


def image_fingerprint(image: ProgramImage) -> str:
    """A content hash binding a facts artifact to one linked image.

    Covers the placed code bytes, the configuration axes that change
    analysis results, and the instance layout (gf addresses and code
    bases) — the deterministic link reproduces all of these, so a
    relink of the same sources with the same config fingerprints
    identically, while any code or layout change does not.
    """
    h = hashlib.sha256()
    h.update(image.code.raw)
    h.update(image.config.linkage.value.encode())
    h.update(image.config.arg_convention.value.encode())
    h.update(str(image.config.eval_stack_depth).encode())
    for (name, inst), linked in sorted(image.instances.items()):
        h.update(f"{name}#{inst}@{linked.gf_address}:{linked.code_base};".encode())
    return h.hexdigest()[:32]

#: Effect-flag vocabulary (the facts document uses these exact strings).
EFFECT_READS_GLOBALS = "reads-globals"
EFFECT_WRITES_GLOBALS = "writes-globals"
EFFECT_READS_HEAP = "reads-heap"
EFFECT_WRITES_HEAP = "writes-heap"
EFFECT_PORTS = "performs-ports"
EFFECT_TRAPS = "trap-possible"

#: Effects that disqualify "locals-only" (traps are a control effect,
#: not a data effect: a DIV that can trap still touches no shared data).
_DATA_EFFECTS = frozenset(
    {
        EFFECT_READS_GLOBALS,
        EFFECT_WRITES_GLOBALS,
        EFFECT_READS_HEAP,
        EFFECT_WRITES_HEAP,
        EFFECT_PORTS,
    }
)

_EFFECT_OPS = (
    (GLOBAL_READ_OPS, EFFECT_READS_GLOBALS),
    (GLOBAL_WRITE_OPS, EFFECT_WRITES_GLOBALS),
    (HEAP_READ_OPS, EFFECT_READS_HEAP),
    (HEAP_WRITE_OPS, EFFECT_WRITES_HEAP),
    (PORT_OPS, EFFECT_PORTS),
    (TRAP_POSSIBLE_OPS, EFFECT_TRAPS),
)


@dataclass(frozen=True)
class CallSite:
    """One transfer site, resolved and classified."""

    module: str
    procedure: str
    offset: int
    opcode: str
    #: ``"call"`` for LFC/EFC*/DFC/SDFC, ``"xfer"`` for a general XF.
    kind: str
    #: Possible targets as qualified names; None means top (unknown).
    targets: tuple[str, ...] | None

    @property
    def classification(self) -> str:
        if self.targets is None:
            return "unknown"
        return "monomorphic" if len(self.targets) == 1 else "polymorphic"


@dataclass
class ProcSummary:
    """Everything the analyzer knows about one procedure."""

    node: ProcNode
    arg_count: int
    result_count: int
    frame_words: int
    #: The fsi byte as placed in the segment, and the ladder class it buys.
    fsi: int
    frame_class_words: int
    #: Worst-case evaluation-stack depth anywhere in the body.
    max_eval_depth: int
    #: Effects of this body alone, before the transitive closure.
    base_effects: frozenset[str]
    #: Closed effects (filled by the analysis driver).
    effects: set[str] = field(default_factory=set)
    #: Bytecode-scan truth (independent of compiler declarations).
    performs_xfer: bool = False
    captures_context: bool = False
    sites: list[CallSite] = field(default_factory=list)

    @property
    def locals_only(self) -> bool:
        """No data effect outside the procedure's own frame, even
        transitively."""
        return not (self.effects & _DATA_EFFECTS)


@dataclass(frozen=True)
class EntryBounds:
    """Worst-case resource bounds for one entry point."""

    entry: str
    #: Maximum live activation-chain length, counting the root frame;
    #: None = unbounded (recursion or a reachable XF).
    call_depth: int | None
    #: Total frame-heap words of the worst chain (allocation-class
    #: sizes, i.e. what the AV actually hands out); None = unbounded.
    frame_words: int | None
    #: Maximum evaluation-stack depth over every reachable body (always
    #: finite: the eval stack never survives a transfer).
    eval_depth: int


@dataclass
class ImageAnalysis:
    """The analyzer's full output for one linked image."""

    image: ProgramImage
    report: CheckReport
    procs: dict[ProcNode, ProcSummary] = field(default_factory=dict)
    graph: CallGraph = field(default_factory=CallGraph)
    #: The over-approximated target set of every general XF in the image.
    xf_universe: frozenset[ProcNode] = frozenset()
    #: Bounds per entry point (image entry first, then extra roots).
    bounds: dict[str, EntryBounds] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.report.ok

    def sites(self) -> list[CallSite]:
        """Every transfer site in the image, in a stable order."""
        collected: list[CallSite] = []
        for node in sorted(self.procs):
            collected.extend(self.procs[node].sites)
        return collected

    def edges(self) -> set[tuple[str, str]]:
        """Every possible (caller, callee) pair as qualified names."""
        pairs: set[tuple[str, str]] = set()
        for node in sorted(self.procs):
            for site in self.procs[node].sites:
                for target in site.targets or ():
                    pairs.add((str(node), target))
        return pairs

    def to_facts(self) -> dict:
        """The versioned machine-readable facts document."""
        if not self.ok:
            raise ValueError(
                "facts are only defined for a clean image; the report has "
                f"{len(self.report.errors)} error(s)"
            )
        sites = self.sites()
        counted = {"monomorphic": 0, "polymorphic": 0, "unknown": 0}
        bounded = 0
        for site in sites:
            counted[site.classification] += 1
            if _site_frame_bound(self, site) is not None:
                bounded += 1
        procedures = []
        for node in sorted(self.procs):
            summary = self.procs[node]
            procedures.append(
                {
                    "module": node.module,
                    "name": node.name,
                    "arg_count": summary.arg_count,
                    "result_count": summary.result_count,
                    "frame_words": summary.frame_words,
                    "fsi": summary.fsi,
                    "frame_class_words": summary.frame_class_words,
                    "max_eval_depth": summary.max_eval_depth,
                    "effects": sorted(summary.effects),
                    "locals_only": summary.locals_only,
                    "performs_xfer": summary.performs_xfer,
                    "captures_context": summary.captures_context,
                    "sites": [
                        {
                            "offset": site.offset,
                            "opcode": site.opcode,
                            "kind": site.kind,
                            "classification": site.classification,
                            "targets": (
                                sorted(site.targets)
                                if site.targets is not None
                                else None
                            ),
                            "frame_bound_words": _site_frame_bound(self, site),
                        }
                        for site in summary.sites
                    ],
                }
            )
        total = len(sites)
        return {
            "schema": FACTS_SCHEMA,
            "image_hash": image_fingerprint(self.image),
            "entry": f"{self.image.entry.module}.{self.image.entry.name}",
            "linkage": self.image.config.linkage.value,
            "arg_convention": self.image.config.arg_convention.value,
            "eval_stack_limit": self.image.config.eval_stack_depth,
            "xf_universe": sorted(str(node) for node in self.xf_universe),
            "procedures": procedures,
            "entry_bounds": {
                entry: {
                    "call_depth": bound.call_depth,
                    "frame_words": bound.frame_words,
                    "eval_depth": bound.eval_depth,
                }
                for entry, bound in self.bounds.items()
            },
            "summary": {
                "sites": total,
                "monomorphic": counted["monomorphic"],
                "polymorphic": counted["polymorphic"],
                "unknown": counted["unknown"],
                "monomorphic_fraction": (
                    round(counted["monomorphic"] / total, 4) if total else 1.0
                ),
                "finite_frame_bound_fraction": (
                    round(bounded / total, 4) if total else 1.0
                ),
            },
        }


def _site_frame_bound(analysis: ImageAnalysis, site: CallSite) -> int | None:
    """Worst frame allocation this one transfer can cause, in words."""
    if site.targets is None:
        return None
    bound = 0
    for target in site.targets:
        module, _, name = target.rpartition(".")
        summary = analysis.procs.get(ProcNode(module, name))
        if summary is None:
            return None
        bound = max(bound, summary.frame_class_words)
    return bound


# -- the analysis driver ---------------------------------------------------------


def analyze_image(
    image: ProgramImage,
    report: CheckReport | None = None,
    extra_roots: list[tuple[str, str]] | None = None,
) -> ImageAnalysis:
    """Analyze a linked image; gated on a clean :func:`check_image`.

    The returned :class:`ImageAnalysis` always carries the combined
    report; summaries, bounds and facts are only populated when the
    base verification produced no errors (an image with broken linkage
    tables has no trustworthy call graph to summarize).
    """
    report = report or CheckReport()
    check_image(image, report, extra_roots=extra_roots)
    analysis = ImageAnalysis(image=image, report=report)
    if not report.ok:
        return analysis

    primaries = {
        name: linked for (name, inst), linked in image.instances.items() if inst == 0
    }
    direct_headers: dict[int, tuple[LinkedModule, Procedure]] = {}
    for linked in primaries.values():
        for procedure in linked.module.procedures:
            analysis.graph.add_node(ProcNode(linked.name, procedure.name))
            if procedure.direct_offset >= 0:
                direct_headers[linked.code_base + procedure.direct_offset] = (
                    linked,
                    procedure,
                )

    scanned: dict[ProcNode, _BodyScan] = {}
    for name in sorted(primaries):
        linked = primaries[name]
        for procedure in linked.module.procedures:
            node = ProcNode(linked.name, procedure.name)
            scan = _scan_body(image, linked, procedure, direct_headers, analysis, report)
            if scan is None:
                # The gate passed, so this only happens when the body
                # became unanalyzable between passes; give up soundly.
                report.add(
                    "analysis-incomplete",
                    Severity.ERROR,
                    "body could not be re-analyzed after a clean image check",
                    node.module,
                    node.name,
                )
                continue
            scanned[node] = scan
    if not report.ok:
        return analysis

    analysis.xf_universe = _xf_universe(primaries, scanned, analysis.graph)
    universe = tuple(sorted(str(node) for node in analysis.xf_universe))

    for node, scan in sorted(scanned.items()):
        sites: list[CallSite] = []
        for offset, opcode, target in scan.call_sites:
            sites.append(
                CallSite(node.module, node.name, offset, opcode, "call", (target,))
            )
        for offset in scan.xf_offsets:
            sites.append(
                CallSite(node.module, node.name, offset, "XF", "xfer", universe)
            )
        sites.sort(key=lambda site: site.offset)
        analysis.procs[node] = ProcSummary(
            node=node,
            arg_count=scan.procedure.arg_count,
            result_count=scan.procedure.result_count,
            frame_words=scan.procedure.frame_words,
            fsi=scan.fsi,
            frame_class_words=image.ladder.size_of(scan.fsi),
            max_eval_depth=scan.max_eval_depth,
            base_effects=scan.effects,
            performs_xfer=bool(scan.xf_offsets),
            captures_context=scan.captures_context,
            sites=sites,
        )

    _close_effects(analysis)
    roots = [f"{image.entry.module}.{image.entry.name}"]
    roots.extend(f"{module}.{proc}" for module, proc in extra_roots or [])
    for root in roots:
        bound = _entry_bounds(analysis, root)
        if bound is not None:
            analysis.bounds[root] = bound
    return analysis


@dataclass
class _BodyScan:
    """Raw per-body facts before summaries are assembled."""

    procedure: Procedure
    fsi: int
    max_eval_depth: int
    effects: frozenset[str]
    has_llc: bool
    has_lrc: bool
    #: (offset, opcode name, qualified target) per resolved call site.
    call_sites: list[tuple[int, str, str]]
    xf_offsets: list[int]

    @property
    def captures_context(self) -> bool:
        return self.has_llc or self.has_lrc


def _scan_body(
    image: ProgramImage,
    linked: LinkedModule,
    procedure: Procedure,
    direct_headers: dict[int, tuple[LinkedModule, Procedure]],
    analysis: ImageAnalysis,
    report: CheckReport,
) -> _BodyScan | None:
    """Decode one placed body; resolve its sites; scan its effects."""
    node = ProcNode(linked.name, procedure.name)
    raw = image.code.raw
    config = image.config
    entry = linked.code_base + procedure.entry_offset
    fsi = raw[entry]
    body = raw[entry + 1 : entry + 1 + len(procedure.body)]

    # The base checker already reported everything; this pass only
    # needs the CFG, the resolved targets, and the verified depths.
    scratch = CheckReport()
    cfg = build_cfg(body, scratch, node.module, node.name)
    if cfg is None:
        return None
    resolver = _image_resolver(
        image, linked, procedure, body, direct_headers, analysis.graph, node, scratch
    )
    call_sites: list[tuple[int, str, str]] = []
    effects_at: dict[int, int] = {}

    def resolve(item):
        effect = resolver(item)
        if effect is not None:
            call_sites.append((item.offset, item.instruction.op.name, effect.target))
            effects_at[item.offset] = effect.result_count
        return effect

    rules = StackRules(
        entry_depth=(
            procedure.arg_count
            if config.arg_convention is ArgConvention.COPY
            else 0
        ),
        result_count=procedure.result_count,
        stack_limit=config.eval_stack_depth,
    )
    depth_at = verify_stack_depths(cfg, rules, resolve, scratch, node.module, node.name)
    if depth_at is None:
        return None

    effects: set[str] = set()
    xf_offsets: list[int] = []
    has_llc = False
    has_lrc = False
    max_depth = rules.entry_depth
    for block in cfg.block_order():
        for item in block.instructions:
            op = item.instruction.op
            for ops, flag in _EFFECT_OPS:
                if op in ops:
                    effects.add(flag)
            if op is Op.XF:
                xf_offsets.append(item.offset)
            if op is Op.LLC:
                has_llc = True
            if op is Op.LRC:
                has_lrc = True
            before = depth_at.get(item.offset)
            if before is None:
                continue  # dead code: never executed
            if op in CALL_OPS:
                after = effects_at.get(item.offset, before)
            elif op is Op.XF:
                after = 1  # the incoming record, by convention
            elif op is Op.RET:
                after = before
            else:
                pops, pushes = FIXED_EFFECTS[op]
                after = before - pops + pushes
            max_depth = max(max_depth, before, after)

    _check_declared_metadata(
        procedure, node, bool(xf_offsets), has_llc or has_lrc, report
    )
    return _BodyScan(
        procedure=procedure,
        fsi=fsi,
        max_eval_depth=max_depth,
        effects=frozenset(effects),
        has_llc=has_llc,
        has_lrc=has_lrc,
        call_sites=call_sites,
        xf_offsets=xf_offsets,
    )


def _check_declared_metadata(
    procedure: Procedure,
    node: ProcNode,
    has_xf: bool,
    captures: bool,
    report: CheckReport,
) -> None:
    """Compiler declarations vs the bytecode: a procedure that performs
    an XF (or captures a context word) while declaring it does not would
    hide indirect callees from every consumer of the facts."""
    if procedure.performs_xfer is False and has_xf:
        report.add(
            "undeclared-xfer",
            Severity.ERROR,
            "the body contains XF but the procedure declares "
            "performs_xfer=False; its indirect callees would be invisible "
            "to the call graph",
            node.module,
            node.name,
        )
    if procedure.captures_context is False and captures:
        report.add(
            "undeclared-capture",
            Severity.ERROR,
            "the body captures a context word (LLC/LRC) but declares "
            "captures_context=False; its frames could be XFERed into "
            "without the analysis knowing",
            node.module,
            node.name,
        )


def _xf_universe(
    primaries: dict[str, LinkedModule],
    scanned: dict[ProcNode, _BodyScan],
    graph: CallGraph,
) -> frozenset[ProcNode]:
    """Every procedure a general XF anywhere in the image could reach.

    A context word is either a packed descriptor or a live frame.
    Descriptors enter the data flow only through ``PROC`` literals, so
    the *taken* set (desc-fixup targets) bounds the descriptor arm.  A
    live frame must have been suspended with a resumable saved PC; that
    frame escapes only through ``LLC`` (its owner captured itself),
    through ``LRC`` in a callee (capturing the caller or the XF
    source), or by being an XF performer itself — hence the resumable
    arm below.  Arithmetic forgery of context words is outside the
    soundness contract (see the module docstring).
    """
    universe: set[ProcNode] = set()
    lrc_owners: set[ProcNode] = set()
    for name in sorted(primaries):
        linked = primaries[name]
        for fixup in linked.module.fixups:
            if fixup.kind == "desc":
                universe.add(ProcNode(fixup.target_module, fixup.target_procedure))
    for node, scan in scanned.items():
        if scan.xf_offsets or scan.has_llc:
            universe.add(node)
        if scan.has_lrc:
            lrc_owners.add(node)
    # Static callers of an LRC capturer: their frames are what LRC hands
    # out while they wait at the call site.
    for caller, callees in graph.calls.items():
        if callees & lrc_owners:
            universe.add(caller)
    return frozenset(universe)


def _close_effects(analysis: ImageAnalysis) -> None:
    """Transitive closure of effects over call and XF edges."""
    for summary in analysis.procs.values():
        summary.effects = set(summary.base_effects)
    changed = True
    while changed:
        changed = False
        for summary in analysis.procs.values():
            for site in summary.sites:
                for target in site.targets or ():
                    module, _, name = target.rpartition(".")
                    callee = analysis.procs.get(ProcNode(module, name))
                    if callee is None:
                        continue
                    missing = callee.effects - summary.effects
                    if missing:
                        summary.effects |= missing
                        changed = True


def _entry_bounds(analysis: ImageAnalysis, root: str) -> EntryBounds | None:
    """Longest-path bounds from one entry point over the callee graph."""
    module, _, name = root.rpartition(".")
    if ProcNode(module, name) not in analysis.procs:
        return None

    def callees(qualname: str) -> set[str]:
        owner, _, proc = qualname.rpartition(".")
        summary = analysis.procs.get(ProcNode(owner, proc))
        if summary is None:
            return set()
        targets: set[str] = set()
        for site in summary.sites:
            targets.update(site.targets or ())
        return targets

    # Reachability + cycle detection (a cycle anywhere reachable makes
    # the depth data-dependent: recursion, or an XF back-edge).
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[str, int] = {}
    reachable: list[str] = []
    cyclic = False

    def visit(qualname: str) -> None:
        nonlocal cyclic
        state = color.get(qualname, WHITE)
        if state == GRAY:
            cyclic = True
            return
        if state == BLACK:
            return
        color[qualname] = GRAY
        for target in sorted(callees(qualname)):
            visit(target)
        color[qualname] = BLACK
        reachable.append(qualname)

    visit(root)

    eval_depth = 0
    for qualname in reachable:
        owner, _, proc = qualname.rpartition(".")
        summary = analysis.procs.get(ProcNode(owner, proc))
        if summary is not None:
            eval_depth = max(eval_depth, summary.max_eval_depth)

    if cyclic:
        return EntryBounds(entry=root, call_depth=None, frame_words=None,
                           eval_depth=eval_depth)

    # `reachable` is in post-order, so every callee's bound is ready
    # before its callers ask for it.
    depth_of: dict[str, int] = {}
    words_of: dict[str, int] = {}
    for qualname in reachable:
        owner, _, proc = qualname.rpartition(".")
        summary = analysis.procs.get(ProcNode(owner, proc))
        if summary is None:
            depth_of[qualname] = 0
            words_of[qualname] = 0
            continue
        sub_depth = 0
        sub_words = 0
        for target in callees(qualname):
            sub_depth = max(sub_depth, depth_of.get(target, 0))
            sub_words = max(sub_words, words_of.get(target, 0))
        depth_of[qualname] = 1 + sub_depth
        words_of[qualname] = summary.frame_class_words + sub_words
    return EntryBounds(
        entry=root,
        call_depth=depth_of[root],
        frame_words=words_of[root],
        eval_depth=eval_depth,
    )


# -- the dynamic soundness gate --------------------------------------------------


def soundness_differential(
    program,
    preset: str = "i2",
    max_steps: int = 400_000,
) -> list[str]:
    """Run one corpus program; check every observation against the facts.

    Returns a list of problem strings — empty means the static
    prediction contained everything the machine actually did.  Programs
    needing descriptors are skipped under SIMPLE linkage (they cannot
    run there), returning no problems.
    """
    from repro.interp.machine import Machine
    from repro.interp.machineconfig import MachineConfig
    from repro.lang.compiler import CompileOptions, compile_program
    from repro.lang.linker import link
    from repro.obs.edges import observed_call_edges, observed_transfer_depth
    from repro.obs.tracer import TraceRecorder

    config = MachineConfig.preset(preset)
    if program.needs_descriptors and config.linkage is LinkageKind.SIMPLE:
        return []
    modules = compile_program(list(program.sources), CompileOptions.for_config(config))
    image = link(modules, config, program.entry)
    analysis = analyze_image(image)
    if not analysis.ok:
        return [
            f"{program.name}/{preset}: static analysis not clean:\n"
            + analysis.report.format()
        ]

    machine = Machine(image)
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    machine.start(None, None, *program.args)
    max_eval = len(machine.stack)
    while not machine.halted and machine.steps < max_steps:
        machine.step()
        max_eval = max(max_eval, len(machine.stack))

    problems: list[str] = []
    label = f"{program.name}/{preset}"
    static_edges = analysis.edges()
    for source, target in sorted(observed_call_edges(recorder.events)):
        if (source, target) not in static_edges:
            problems.append(
                f"{label}: observed edge {source} -> {target} is not in the "
                "static call graph"
            )
    entry = f"{image.entry.module}.{image.entry.name}"
    bounds = analysis.bounds.get(entry)
    if bounds is None:
        problems.append(f"{label}: no bounds computed for entry {entry}")
        return problems
    if max_eval > bounds.eval_depth:
        problems.append(
            f"{label}: observed eval-stack depth {max_eval} exceeds the "
            f"static bound {bounds.eval_depth}"
        )
    observed_depth, exact = observed_transfer_depth(recorder.events)
    if bounds.call_depth is not None and exact and observed_depth > bounds.call_depth:
        problems.append(
            f"{label}: observed transfer depth {observed_depth} exceeds the "
            f"static bound {bounds.call_depth}"
        )
    return problems
