"""Control-flow graph construction over disassembled procedure bodies.

The builder performs the first tier of static verification:

* the body must decode linearly into instructions with no undefined
  opcodes and no operand running past the end (structured
  :class:`~repro.errors.DecodeError` diagnostics);
* every jump target must land on an instruction boundary *inside* the
  body — a displacement into the middle of an instruction would make the
  machine decode operand bytes as opcodes, the classic way a one-byte
  corruption cascades;
* execution must not fall off the end of the body: the last reachable
  instruction must be a return, halt, or unconditional jump.

Basic blocks are maximal straight-line runs; edges are fall-through,
jump, and conditional-jump pairs.  Calls do *not* end a block — under
the matched call/return discipline control comes back to the next
instruction (the CFA2-style treatment; raw ``XF`` likewise resumes at
the saved PC when something transfers back).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecodeError
from repro.isa.disassembler import DecodedInstruction, disassemble
from repro.isa.opcodes import JUMP_OPS, Op

from repro.check.diagnostics import CheckReport, Severity, instruction_context

#: Instructions after which control cannot continue to the next offset.
_NO_FALL_THROUGH: frozenset[Op] = frozenset({Op.RET, Op.HALT, Op.JB, Op.JW})

#: Conditional jumps: both the target and the fall-through are live.
_CONDITIONAL_JUMPS: frozenset[Op] = frozenset({Op.JZB, Op.JNZB, Op.JZW, Op.JNZW})


@dataclass
class BasicBlock:
    """A maximal straight-line instruction run."""

    start: int
    instructions: list[DecodedInstruction] = field(default_factory=list)
    #: Start offsets of successor blocks.
    successors: list[int] = field(default_factory=list)

    @property
    def end(self) -> int:
        """Offset one past the last instruction byte."""
        last = self.instructions[-1]
        return last.offset + last.length

    @property
    def terminator(self) -> DecodedInstruction:
        return self.instructions[-1]


@dataclass
class ControlFlowGraph:
    """Blocks of one procedure body, keyed by start offset."""

    body: bytes
    blocks: dict[int, BasicBlock]
    instruction_starts: frozenset[int]

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_order(self) -> list[BasicBlock]:
        return [self.blocks[start] for start in sorted(self.blocks)]

    def reachable_blocks(self) -> set[int]:
        """Block starts reachable from the entry block."""
        seen: set[int] = set()
        work = [0]
        while work:
            start = work.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            work.extend(self.blocks[start].successors)
        return seen


def build_cfg(
    body: bytes,
    report: CheckReport,
    module: str | None = None,
    procedure: str | None = None,
) -> ControlFlowGraph | None:
    """Decode *body*, validate its control flow, and build the CFG.

    Emits diagnostics on *report*; returns None when the body cannot be
    decoded at all (later passes have nothing to work on).
    """
    if not body:
        report.add(
            "empty-body",
            Severity.ERROR,
            "procedure body has no instructions; execution falls off the end",
            module,
            procedure,
            offset=0,
        )
        return None
    try:
        items = disassemble(body)
    except DecodeError as fault:
        report.add(
            "decode-error",
            Severity.ERROR,
            str(fault),
            module,
            procedure,
            offset=fault.offset,
            context=instruction_context(body, fault.offset),
        )
        return None

    starts = frozenset(item.offset for item in items)
    end = len(body)

    # Validate jump targets before carving blocks: a bad target is an
    # error, and the block builder then treats that edge as absent.
    bad_targets: set[int] = set()
    for item in items:
        target = item.target()
        if target is None:
            continue
        if not 0 <= target < end:
            report.add(
                "jump-out-of-range",
                Severity.ERROR,
                f"{item.instruction} at {item.offset:#06x} jumps to "
                f"{target:#06x}, outside the {end}-byte body",
                module,
                procedure,
                offset=item.offset,
                context=instruction_context(body, item.offset),
            )
            bad_targets.add(item.offset)
        elif target not in starts:
            report.add(
                "jump-into-instruction",
                Severity.ERROR,
                f"{item.instruction} at {item.offset:#06x} jumps to "
                f"{target:#06x}, the middle of an instruction",
                module,
                procedure,
                offset=item.offset,
                context=instruction_context(body, item.offset),
            )
            bad_targets.add(item.offset)

    # Leaders: offset 0, every jump target, every offset after a jump or
    # a no-fall-through instruction.
    leaders: set[int] = {0}
    for item in items:
        op = item.instruction.op
        target = item.target()
        if target is not None and item.offset not in bad_targets:
            leaders.add(target)
        if op in JUMP_OPS or op in _NO_FALL_THROUGH:
            following = item.offset + item.length
            if following < end:
                leaders.add(following)

    blocks: dict[int, BasicBlock] = {}
    current: BasicBlock | None = None
    for item in items:
        if item.offset in leaders:
            current = BasicBlock(start=item.offset)
            blocks[item.offset] = current
        assert current is not None
        current.instructions.append(item)

    for block in blocks.values():
        last = block.terminator
        op = last.instruction.op
        target = last.target()
        falls_through = op not in _NO_FALL_THROUGH
        if target is not None and last.offset not in bad_targets:
            block.successors.append(target)
            falls_through = op in _CONDITIONAL_JUMPS
        if falls_through:
            following = last.offset + last.length
            if following >= end:
                report.add(
                    "falls-off-end",
                    Severity.ERROR,
                    f"execution can run past the last instruction "
                    f"({last.instruction} at {last.offset:#06x}); bodies must "
                    "end in RET, HALT, or a jump",
                    module,
                    procedure,
                    offset=last.offset,
                    context=instruction_context(body, last.offset),
                )
            else:
                block.successors.append(following)

    return ControlFlowGraph(body=body, blocks=blocks, instruction_starts=starts)
