"""The static verifier: compiled modules and linked images, checked.

Two entry points:

* :func:`check_modules` — pre-link, over :class:`ModuleCode` values as
  the compiler or assembler produced them.  Call targets resolve through
  the modules' import lists and recorded fixups; table geometry does not
  exist yet, so the checks are control flow, stack discipline, operand
  ranges, import-order hygiene, and call-graph reachability.
* :func:`check_image` — post-link, over a :class:`ProgramImage`.  All
  of the above on the *placed* code bytes (fixups applied), plus the
  linkage-table checks of section 5: descriptor tag bits, LV/GFT/EV
  indices in range, GFT bias decoding, entry-vector words, the fsi byte
  against the geometric ladder and the procedure's frame need, and the
  inline GF word of every DIRECTCALL header.

Both return a :class:`~repro.check.diagnostics.CheckReport`; ``ok`` on
the report is the pass/fail verdict (errors fail, warnings and notes do
not).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import EncodingError, FrameSizeError
from repro.interp.image import LinkedModule, ProgramImage
from repro.interp.machineconfig import ArgConvention, LinkageKind
from repro.isa.disassembler import DecodedInstruction
from repro.isa.opcodes import Op
from repro.isa.program import EV_ENTRY_BYTES, ModuleCode, Procedure
from repro.mesa.descriptor import effective_entry_index, is_descriptor, unpack_descriptor

from repro.check.callgraph import CallGraph, ProcNode
from repro.check.cfg import ControlFlowGraph, build_cfg
from repro.check.diagnostics import CheckReport, Severity, instruction_context
from repro.check.effects import (
    DIRECT_CALL_OPS,
    EXTERNAL_CALL_INDEX,
    LOCAL_CALL_OPS,
    OperandLimits,
    external_index_of,
    global_index_of,
    local_index_of,
)
from repro.check.stackcheck import CallEffect, StackRules, verify_stack_depths

#: MachineConfig's default evaluation stack depth, for pre-link checks.
DEFAULT_STACK_LIMIT = 16


# -- shared per-procedure machinery -------------------------------------------


def _verify_body(
    body: bytes,
    node: ProcNode,
    limits: OperandLimits,
    rules: StackRules,
    resolver,
    report: CheckReport,
) -> ControlFlowGraph | None:
    """Decode, CFG-check, operand-check, and stack-verify one body."""
    cfg = build_cfg(body, report, node.module, node.name)
    if cfg is None:
        return None
    for block in cfg.block_order():
        for item in block.instructions:
            _check_data_operands(item, body, limits, report, node)
            _note_dynamic(item, body, report, node)
    verify_stack_depths(cfg, rules, resolver, report, node.module, node.name)
    return cfg


def _check_data_operands(
    item: DecodedInstruction,
    body: bytes,
    limits: OperandLimits,
    report: CheckReport,
    node: ProcNode,
) -> None:
    """Range-check local/global indices (calls are the resolver's job)."""
    local = local_index_of(item.instruction)
    if local is not None and local >= limits.local_words:
        report.add(
            "local-index",
            Severity.ERROR,
            f"{item.instruction} touches local {local} but the frame has "
            f"{limits.local_words} local word(s); the access would read the "
            "next frame",
            node.module,
            node.name,
            offset=item.offset,
            context=instruction_context(body, item.offset),
        )
    index = global_index_of(item.instruction)
    if index is not None and index >= limits.global_words:
        report.add(
            "global-index",
            Severity.ERROR,
            f"{item.instruction} touches global {index} but the module has "
            f"{limits.global_words} global word(s)",
            node.module,
            node.name,
            offset=item.offset,
            context=instruction_context(body, item.offset),
        )


def _note_dynamic(
    item: DecodedInstruction,
    body: bytes,
    report: CheckReport,
    node: ProcNode,
) -> None:
    """NOTE data-dependent instructions that bound the static guarantee."""
    op = item.instruction.op
    if op is Op.XF:
        report.add(
            "dynamic-transfer",
            Severity.NOTE,
            "XF transfers to a computed context word; its destination and "
            "linkage cannot be verified statically",
            node.module,
            node.name,
            offset=item.offset,
            context=instruction_context(body, item.offset),
        )
    elif op in (Op.ALOC, Op.FREE):
        report.add(
            "dynamic-frame",
            Severity.NOTE,
            f"{op.name} sizes or frees a frame from a run-time value; frame "
            "faults on this path cannot be excluded statically",
            node.module,
            node.name,
            offset=item.offset,
            context=instruction_context(body, item.offset),
        )


def _count_external_sites(cfg: ControlFlowGraph, import_count: int, counts: Counter) -> None:
    """Tally EFC call sites per link-vector index (for the hot-order check)."""
    for block in cfg.block_order():
        for item in block.instructions:
            if item.instruction.op in EXTERNAL_CALL_INDEX:
                index = external_index_of(item.instruction)
                if index is not None and index < import_count:
                    counts[index] += 1


def _check_import_order(
    module_name: str,
    imports: list[tuple[str, str]],
    counts: Counter,
    report: CheckReport,
) -> None:
    """Section 5.1 hygiene: link vectors ordered hottest-first.

    The one-byte opcodes EFC0-EFC7 only pay off when the statically most
    frequent external targets occupy the first link-vector slots — the
    contract :func:`repro.lang.analysis.external_call_frequencies`
    establishes.  A colder import ahead of a hotter one wastes the short
    encodings, so the site counts must be non-increasing by index.
    """
    for left in range(len(imports) - 1):
        right = left + 1
        if counts[right] > counts[left]:
            cold = ".".join(imports[left])
            hot = ".".join(imports[right])
            report.add(
                "import-order",
                Severity.WARNING,
                f"link-vector index {right} ({hot}, {counts[right]} site(s)) "
                f"is hotter than index {left} ({cold}, {counts[left]} "
                "site(s)); order imports by static frequency so EFC0-EFC7 "
                "cover the hottest targets (section 5.1)",
                module_name,
            )


# -- pre-link: check_modules ---------------------------------------------------


def check_modules(
    modules: list[ModuleCode],
    convention: ArgConvention = ArgConvention.COPY,
    stack_limit: int = DEFAULT_STACK_LIMIT,
    entry: tuple[str, str] | None = None,
    report: CheckReport | None = None,
    extra_roots: list[tuple[str, str]] | None = None,
) -> CheckReport:
    """Verify compiled modules before linking.

    *entry* names the call-graph root as ``(module, procedure)``; without
    one, every procedure counts as a root (so nothing is flagged
    unreachable — there is no program yet, only a library).
    *extra_roots* adds further ``(module, procedure)`` roots — procedures
    entered from outside the call graph, such as scheduler-spawned
    processes (see :func:`repro.check.callgraph.spawn_roots`).
    """
    report = report or CheckReport()
    by_name: dict[str, ModuleCode] = {}
    for module in modules:
        if module.name in by_name:
            report.add(
                "duplicate-module",
                Severity.ERROR,
                f"module {module.name!r} appears twice",
                module.name,
            )
            continue
        by_name[module.name] = module

    graph = CallGraph()
    for module in by_name.values():
        for procedure in module.procedures:
            graph.add_node(ProcNode(module.name, procedure.name))
    for module in by_name.values():
        _check_one_module(module, by_name, convention, stack_limit, graph, report)

    if entry is not None:
        roots = [ProcNode(*entry)]
        if roots[0] not in graph.nodes:
            report.add(
                "missing-entry",
                Severity.ERROR,
                f"entry procedure {roots[0]} does not exist",
                entry[0],
                entry[1],
            )
            roots = sorted(graph.nodes)
    else:
        roots = sorted(graph.nodes)
    roots.extend(ProcNode(*root) for root in extra_roots or [])
    graph.report_unreachable(roots, report)
    return report


def _check_one_module(
    module: ModuleCode,
    by_name: dict[str, ModuleCode],
    convention: ArgConvention,
    stack_limit: int,
    graph: CallGraph,
    report: CheckReport,
) -> None:
    ev_map = {procedure.ev_index: procedure for procedure in module.procedures}
    direct_fixups = {
        (fixup.procedure, fixup.site_offset): fixup
        for fixup in module.fixups
        if fixup.kind in ("dfc", "sdfc")
    }
    counts: Counter = Counter()

    for fixup in module.fixups:
        target = _lookup(by_name, fixup.target_module, fixup.target_procedure)
        if target is None:
            report.add(
                "unresolved-import",
                Severity.ERROR,
                f"{fixup.kind} fixup targets unknown procedure "
                f"{fixup.target_module}.{fixup.target_procedure}",
                module.name,
                fixup.procedure,
                offset=fixup.site_offset,
            )
        elif fixup.kind == "desc":
            graph.add_reference(
                ProcNode(module.name, fixup.procedure),
                ProcNode(fixup.target_module, fixup.target_procedure),
            )
            key = (fixup.target_module, fixup.target_procedure)
            if key in module.imports:
                counts[module.imports.index(key)] += 1

    for procedure in module.procedures:
        node = ProcNode(module.name, procedure.name)
        limits = OperandLimits(
            local_words=procedure.local_words,
            global_words=module.global_words,
            import_count=len(module.imports),
            proc_count=len(module.procedures),
        )
        rules = StackRules(
            entry_depth=procedure.arg_count if convention is ArgConvention.COPY else 0,
            result_count=procedure.result_count,
            stack_limit=stack_limit,
        )
        resolver = _module_resolver(
            module, procedure, by_name, ev_map, direct_fixups, graph, node, report
        )
        cfg = _verify_body(procedure.body, node, limits, rules, resolver, report)
        if cfg is not None:
            _count_external_sites(cfg, len(module.imports), counts)

    if not direct_fixups:
        # Under DIRECT linkage most external calls compile to DFC/SDFC,
        # so EFC site counts no longer mirror the static frequencies.
        _check_import_order(module.name, module.imports, counts, report)


def _lookup(
    by_name: dict[str, ModuleCode], module_name: str, proc_name: str
) -> Procedure | None:
    owner = by_name.get(module_name)
    if owner is None:
        return None
    try:
        return owner.procedure_named(proc_name)
    except EncodingError:
        return None


def _module_resolver(
    module: ModuleCode,
    procedure: Procedure,
    by_name: dict[str, ModuleCode],
    ev_map: dict[int, Procedure],
    direct_fixups: dict,
    graph: CallGraph,
    node: ProcNode,
    report: CheckReport,
):
    body = procedure.body

    def fail(check: str, message: str, item: DecodedInstruction) -> None:
        report.add(
            check,
            Severity.ERROR,
            message,
            node.module,
            node.name,
            offset=item.offset,
            context=instruction_context(body, item.offset),
        )
        return None

    def resolved(target_module: str, target: Procedure) -> CallEffect:
        graph.add_call(node, ProcNode(target_module, target.name))
        return CallEffect(
            target.arg_count, target.result_count, f"{target_module}.{target.name}"
        )

    def resolve(item: DecodedInstruction) -> CallEffect | None:
        op = item.instruction.op
        if op in LOCAL_CALL_OPS:
            index = item.instruction.operand
            target = ev_map.get(index)
            if target is None:
                return fail(
                    "ev-index",
                    f"{item.instruction} targets entry {index} but module "
                    f"{module.name!r} has {len(ev_map)} procedure(s)",
                    item,
                )
            return resolved(module.name, target)
        if op in EXTERNAL_CALL_INDEX:
            index = external_index_of(item.instruction)
            if index >= len(module.imports):
                return fail(
                    "lv-index",
                    f"{item.instruction} uses link-vector index {index} but "
                    f"module {module.name!r} imports "
                    f"{len(module.imports)} procedure(s)",
                    item,
                )
            target_module, target_name = module.imports[index]
            target = _lookup(by_name, target_module, target_name)
            if target is None:
                return fail(
                    "unresolved-import",
                    f"{item.instruction} resolves to "
                    f"{target_module}.{target_name}, which no module provides",
                    item,
                )
            return resolved(target_module, target)
        assert op in DIRECT_CALL_OPS
        fixup = direct_fixups.get((procedure.name, item.offset))
        if fixup is None:
            return fail(
                "direct-unbound",
                f"{item.instruction} has no recorded link fixup; its operand "
                "cannot be resolved before linking",
                item,
            )
        target = _lookup(by_name, fixup.target_module, fixup.target_procedure)
        if target is None:
            return None  # the fixup pass reported unresolved-import already
        return resolved(fixup.target_module, target)

    return resolve


# -- post-link: check_image -----------------------------------------------------


def check_image(
    image: ProgramImage,
    report: CheckReport | None = None,
    extra_roots: list[tuple[str, str]] | None = None,
) -> CheckReport:
    """Verify a linked program image without executing it.

    *extra_roots* names additional ``(module, procedure)`` call-graph
    roots beyond the image entry — procedures control enters from
    outside the graph (spawned processes, externally served root
    XFERs) that must not be flagged unreachable.
    """
    report = report or CheckReport()
    raw = image.code.raw
    graph = CallGraph()

    primaries = {
        name: linked for (name, inst), linked in image.instances.items() if inst == 0
    }
    instance_counts = Counter(name for (name, _inst) in image.instances)

    direct_headers: dict[int, tuple[LinkedModule, Procedure]] = {}
    for linked in primaries.values():
        for procedure in linked.module.procedures:
            graph.add_node(ProcNode(linked.name, procedure.name))
            if procedure.direct_offset >= 0:
                direct_headers[linked.code_base + procedure.direct_offset] = (
                    linked,
                    procedure,
                )

    _check_gft(image, report)
    for name in sorted(primaries):
        _check_linked_module(
            image,
            primaries[name],
            direct_headers,
            graph,
            report,
            instance_counts[name],
        )

    roots = [ProcNode(image.entry.module, image.entry.name)]
    roots.extend(ProcNode(*root) for root in extra_roots or [])
    graph.report_unreachable(roots, report)
    return report


def _check_gft(image: ProgramImage, report: CheckReport) -> None:
    """Every populated GFT entry must name a real global frame, and its
    bias bits must agree with the owner's recorded bias slots."""
    if image.gft is None:
        return
    for index in range(len(image.gft)):
        gf_address, bias = image.gft.peek_entry(index)
        owner = image.by_gf.get(gf_address)
        if owner is None:
            report.add(
                "gft-entry",
                Severity.ERROR,
                f"GFT entry {index} holds {gf_address:#06x}, which is not "
                "any instance's global frame",
                offset=index,
            )
        elif bias >= len(owner.env_indices) or owner.env_indices[bias] != index:
            report.add(
                "gft-bias",
                Severity.ERROR,
                f"GFT entry {index} carries bias {bias}, but module "
                f"{owner.name!r} assigns that bias slot to GFT entry "
                f"{owner.env_indices[bias] if bias < len(owner.env_indices) else '<none>'}",
                offset=index,
            )


def _descriptor_target(
    image: ProgramImage, word: int
) -> tuple[tuple[LinkedModule, Procedure] | None, str, str]:
    """Chase a packed descriptor through GFT and EV.

    Returns ``(target, check, message)``: on success *target* is the
    ``(linked module, procedure)`` pair and the rest is empty; on failure
    *target* is None and *check*/*message* describe the first broken link.
    """
    if not is_descriptor(word):
        return None, "descriptor-tag", (
            f"word {word:#06x} has no descriptor tag bit; the machine would "
            "treat it as a frame pointer"
        )
    env, code = unpack_descriptor(word)
    if image.gft is None:
        return None, "descriptor-tag", (
            "packed descriptors need a GFT, but SIMPLE linkage builds none"
        )
    if env >= len(image.gft):
        return None, "gft-index", (
            f"descriptor {word:#06x} has env {env}, outside the "
            f"{len(image.gft)}-entry GFT"
        )
    gf_address, bias = image.gft.peek_entry(env)
    linked = image.by_gf.get(gf_address)
    if linked is None:
        return None, "gft-entry", (
            f"descriptor {word:#06x} reaches GFT entry {env} holding "
            f"{gf_address:#06x}, not a global frame"
        )
    effective = effective_entry_index(code, bias)
    for procedure in linked.module.procedures:
        if procedure.ev_index == effective:
            return (linked, procedure), "", ""
    return None, "ev-index", (
        f"descriptor {word:#06x} selects entry {effective} (code {code}, "
        f"bias {bias}) but module {linked.name!r} has "
        f"{len(linked.module.procedures)} procedure(s)"
    )


def _check_linked_module(
    image: ProgramImage,
    linked: LinkedModule,
    direct_headers: dict[int, tuple[LinkedModule, Procedure]],
    graph: CallGraph,
    report: CheckReport,
    instance_count: int,
) -> None:
    module = linked.module
    base = linked.code_base
    raw = image.code.raw
    config = image.config
    use_tables = config.linkage is not LinkageKind.SIMPLE
    counts: Counter = Counter()
    desc_fixups_by_proc: dict[str, list] = {}
    for fixup in module.fixups:
        if fixup.kind == "desc":
            desc_fixups_by_proc.setdefault(fixup.procedure, []).append(fixup)
            key = (fixup.target_module, fixup.target_procedure)
            if key in module.imports:
                counts[module.imports.index(key)] += 1

    for procedure in module.procedures:
        node = ProcNode(module.name, procedure.name)
        entry = base + procedure.entry_offset

        ev_word = _word(raw, base + procedure.ev_index * EV_ENTRY_BYTES)
        if ev_word != procedure.entry_offset:
            report.add(
                "ev-entry",
                Severity.ERROR,
                f"entry-vector word {procedure.ev_index} holds "
                f"{ev_word:#06x}, but the procedure's fsi byte is at "
                f"segment offset {procedure.entry_offset:#06x}",
                module.name,
                procedure.name,
                offset=procedure.ev_index,
            )

        _check_fsi(image, linked, procedure, raw[entry], report)

        if procedure.direct_offset >= 0:
            header = _word(raw, base + procedure.direct_offset)
            expected = linked.gf_address if instance_count == 1 else 0
            if header != expected:
                report.add(
                    "direct-header-gf",
                    Severity.ERROR,
                    f"DIRECTCALL header holds GF {header:#06x}, expected "
                    f"{expected:#06x}",
                    module.name,
                    procedure.name,
                    offset=procedure.direct_offset,
                )

        body = raw[entry + 1 : entry + 1 + len(procedure.body)]
        limits = OperandLimits(
            local_words=procedure.local_words,
            global_words=module.global_words,
            import_count=len(module.imports),
            proc_count=len(module.procedures),
        )
        rules = StackRules(
            entry_depth=(
                procedure.arg_count
                if config.arg_convention is ArgConvention.COPY
                else 0
            ),
            result_count=procedure.result_count,
            stack_limit=config.eval_stack_depth,
        )
        resolver = _image_resolver(
            image, linked, procedure, body, direct_headers, graph, node, report
        )
        cfg = _verify_body(body, node, limits, rules, resolver, report)
        if cfg is not None:
            _count_external_sites(cfg, len(module.imports), counts)
            _check_desc_literals(
                image,
                cfg,
                desc_fixups_by_proc.get(procedure.name, ()),
                node,
                graph,
                report,
            )

    if use_tables and config.linkage is not LinkageKind.DIRECT:
        _check_import_order(module.name, module.imports, counts, report)


def _check_fsi(
    image: ProgramImage,
    linked: LinkedModule,
    procedure: Procedure,
    fsi: int,
    report: CheckReport,
) -> None:
    """The frame-size byte against the ladder and the frame's real need."""
    ladder = image.ladder
    if fsi >= len(ladder):
        report.add(
            "fsi-range",
            Severity.ERROR,
            f"fsi byte {fsi} is outside the {len(ladder)}-class allocation "
            "vector; LOCALCALL would index past the AV",
            linked.name,
            procedure.name,
            offset=procedure.entry_offset,
        )
        return
    if ladder.size_of(fsi) < procedure.frame_words:
        report.add(
            "fsi-too-small",
            Severity.ERROR,
            f"fsi {fsi} allocates {ladder.size_of(fsi)}-word frames but the "
            f"procedure needs {procedure.frame_words} words; its locals "
            "would overrun the frame",
            linked.name,
            procedure.name,
            offset=procedure.entry_offset,
        )
        return
    try:
        tight = ladder.fsi_for(procedure.frame_words)
    except FrameSizeError:
        tight = fsi
    if fsi != tight:
        report.add(
            "fsi-loose",
            Severity.WARNING,
            f"fsi {fsi} ({ladder.size_of(fsi)} words) is not the smallest "
            f"class fitting the {procedure.frame_words}-word frame "
            f"(fsi {tight}, {ladder.size_of(tight)} words); the excess is "
            "internal fragmentation (section 5.3)",
            linked.name,
            procedure.name,
            offset=procedure.entry_offset,
        )


def _check_desc_literals(
    image: ProgramImage,
    cfg: ControlFlowGraph,
    fixups,
    node: ProcNode,
    graph: CallGraph,
    report: CheckReport,
) -> None:
    """Validate the patched descriptor of every ``PROC(M.p)`` literal."""
    body = cfg.body
    for fixup in fixups:
        offset = fixup.site_offset
        if offset not in cfg.instruction_starts or body[offset] != Op.LIW:
            report.add(
                "desc-literal",
                Severity.ERROR,
                f"descriptor fixup at {offset:#06x} does not land on a LIW "
                "literal",
                node.module,
                node.name,
                offset=offset,
                context=instruction_context(body, offset),
            )
            continue
        word = _word(body, offset + 1)
        target, check, message = _descriptor_target(image, word)
        if target is None:
            report.add(
                check,
                Severity.ERROR,
                message,
                node.module,
                node.name,
                offset=offset,
                context=instruction_context(body, offset),
            )
            continue
        linked, procedure = target
        if (linked.name, procedure.name) != (fixup.target_module, fixup.target_procedure):
            report.add(
                "desc-mismatch",
                Severity.ERROR,
                f"PROC literal resolves to {linked.name}.{procedure.name} "
                f"but was compiled for "
                f"{fixup.target_module}.{fixup.target_procedure}",
                node.module,
                node.name,
                offset=offset,
                context=instruction_context(body, offset),
            )
        graph.add_reference(node, ProcNode(linked.name, procedure.name))


def _image_resolver(
    image: ProgramImage,
    linked: LinkedModule,
    procedure: Procedure,
    body: bytes,
    direct_headers: dict[int, tuple[LinkedModule, Procedure]],
    graph: CallGraph,
    node: ProcNode,
    report: CheckReport,
):
    module = linked.module
    memory = image.memory

    def fail(check: str, message: str, item: DecodedInstruction) -> None:
        report.add(
            check,
            Severity.ERROR,
            message,
            node.module,
            node.name,
            offset=item.offset,
            context=instruction_context(body, item.offset),
        )
        return None

    def resolved(owner_name: str, target: Procedure) -> CallEffect:
        graph.add_call(node, ProcNode(owner_name, target.name))
        return CallEffect(
            target.arg_count, target.result_count, f"{owner_name}.{target.name}"
        )

    def check_import(item: DecodedInstruction, index: int, owner: str, name: str) -> None:
        if (owner, name) != module.imports[index]:
            expected = ".".join(module.imports[index])
            report.add(
                "import-mismatch",
                Severity.ERROR,
                f"link-vector entry {index} resolves to {owner}.{name} but "
                f"the module imported {expected}",
                node.module,
                node.name,
                offset=item.offset,
                context=instruction_context(body, item.offset),
            )

    def resolve(item: DecodedInstruction) -> CallEffect | None:
        op = item.instruction.op
        if op in LOCAL_CALL_OPS:
            index = item.instruction.operand
            for target in module.procedures:
                if target.ev_index == index:
                    return resolved(module.name, target)
            return fail(
                "ev-index",
                f"{item.instruction} targets entry {index} but module "
                f"{module.name!r} has {len(module.procedures)} procedure(s)",
                item,
            )
        if op in EXTERNAL_CALL_INDEX:
            index = external_index_of(item.instruction)
            if index >= len(module.imports):
                return fail(
                    "lv-index",
                    f"{item.instruction} uses link-vector index {index} but "
                    f"the link vector has {len(module.imports)} populated "
                    "entr(ies)",
                    item,
                )
            if image.config.linkage is LinkageKind.SIMPLE:
                entry_address = memory.peek(linked.lv_base + 2 * index)
                gf_address = memory.peek(linked.lv_base + 2 * index + 1)
                meta = image.procs_by_entry.get(entry_address)
                if meta is None:
                    return fail(
                        "lv-wide-entry",
                        f"wide link-vector entry {index} holds entry address "
                        f"{entry_address:#06x}, which is no procedure's fsi "
                        "byte",
                        item,
                    )
                if gf_address not in image.by_gf:
                    return fail(
                        "lv-wide-gf",
                        f"wide link-vector entry {index} holds GF "
                        f"{gf_address:#06x}, which is not any instance's "
                        "global frame",
                        item,
                    )
                check_import(item, index, meta.module, meta.name)
                target_linked = image.by_gf[gf_address]
                for target in target_linked.module.procedures:
                    if target.name == meta.name:
                        return resolved(meta.module, target)
                return None  # unreachable: procs_by_entry and by_gf agree
            word = memory.peek(linked.lv_base + index)
            target, check, message = _descriptor_target(image, word)
            if target is None:
                return fail(check, f"link-vector entry {index}: {message}", item)
            target_linked, target_proc = target
            check_import(item, index, target_linked.name, target_proc.name)
            return resolved(target_linked.name, target_proc)
        assert op in DIRECT_CALL_OPS
        if op is Op.DFC:
            address = item.instruction.operand
        else:
            site = linked.code_base + procedure.entry_offset + 1 + item.offset
            address = site + 3 + item.instruction.operand
        entry = direct_headers.get(address)
        if entry is None:
            return fail(
                "direct-target",
                f"{item.instruction} transfers to {address:#08x}, which is "
                "not any procedure's DIRECTCALL header",
                item,
            )
        target_linked, target_proc = entry
        return resolved(target_linked.name, target_proc)

    return resolve


def _word(raw: bytes, address: int) -> int:
    return (raw[address] << 8) | raw[address + 1]
