"""Static verification of compiled modules and linked XFER images.

The subsystem the machine's trust story leans on: before an image runs,
:func:`check_modules` / :func:`check_image` prove the properties the
interpreter otherwise discovers by trapping — clean decode, jumps on
instruction boundaries, path-independent eval-stack depths, transfer
records matching target signatures, linkage tables whose every
descriptor resolves, and fsi bytes the allocation vector can honour.

See ``docs/checker.md`` for the full catalogue of checks and the paper
sections each one guards.
"""

from repro.check.callgraph import CallGraph, ProcNode
from repro.check.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.check.checker import check_image, check_modules
from repro.check.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    instruction_context,
)
from repro.check.effects import DYNAMIC_OPS, FIXED_EFFECTS, OperandLimits
from repro.check.stackcheck import CallEffect, StackRules, verify_stack_depths

__all__ = [
    "BasicBlock",
    "CallEffect",
    "CallGraph",
    "CheckReport",
    "ControlFlowGraph",
    "DYNAMIC_OPS",
    "Diagnostic",
    "FIXED_EFFECTS",
    "OperandLimits",
    "ProcNode",
    "Severity",
    "StackRules",
    "build_cfg",
    "check_image",
    "check_modules",
    "instruction_context",
    "verify_stack_depths",
]
