"""Static verification of compiled modules and linked XFER images.

The subsystem the machine's trust story leans on: before an image runs,
:func:`check_modules` / :func:`check_image` prove the properties the
interpreter otherwise discovers by trapping — clean decode, jumps on
instruction boundaries, path-independent eval-stack depths, transfer
records matching target signatures, linkage tables whose every
descriptor resolves, and fsi bytes the allocation vector can honour.

See ``docs/checker.md`` for the full catalogue of checks and the paper
sections each one guards.
"""

from repro.check.callgraph import CallGraph, ProcNode, spawn_roots
from repro.check.cfg import BasicBlock, ControlFlowGraph, build_cfg
from repro.check.checker import check_image, check_modules
from repro.check.diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    instruction_context,
)
from repro.check.effects import DYNAMIC_OPS, FIXED_EFFECTS, OperandLimits
from repro.check.interproc import (
    FACTS_SCHEMA,
    CallSite,
    EntryBounds,
    ImageAnalysis,
    ProcSummary,
    analyze_image,
    soundness_differential,
)
from repro.check.stackcheck import CallEffect, StackRules, verify_stack_depths

__all__ = [
    "BasicBlock",
    "CallEffect",
    "CallGraph",
    "CallSite",
    "CheckReport",
    "ControlFlowGraph",
    "DYNAMIC_OPS",
    "Diagnostic",
    "EntryBounds",
    "FACTS_SCHEMA",
    "FIXED_EFFECTS",
    "ImageAnalysis",
    "OperandLimits",
    "ProcNode",
    "ProcSummary",
    "Severity",
    "StackRules",
    "analyze_image",
    "build_cfg",
    "check_image",
    "check_modules",
    "instruction_context",
    "soundness_differential",
    "spawn_roots",
    "verify_stack_depths",
]
