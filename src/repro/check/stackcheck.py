"""Eval-stack depth verification by abstract interpretation over the CFG.

The JVM-verifier-style invariant: the evaluation stack's depth at every
instruction is a static property of the offset, independent of the path
that reached it.  The verifier computes it by dataflow — propagate the
depth along every CFG edge, reject on conflict — and checks at each
instruction that:

* pops never underflow (``ADD`` with one word on the stack);
* pushes never exceed the configured stack depth (the Mesa stack lives
  in registers; overflow is a hard machine fault);
* transfers obey the section 5.2 discipline: at a call the stack holds
  *exactly* the outgoing argument record (under RENAME the machine
  takes the whole stack as the record, so a depth mismatch silently
  becomes an argument-count mismatch — the nastiest kind of corruption);
* ``RET`` executes with exactly the procedure's result record on the
  stack (the machine hands the whole stack to the caller);
* join points agree on the depth.

Unreachable blocks are reported as dead code (WARNING) — they cannot be
verified, and the machine can never execute them through structured
control flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.isa.disassembler import DecodedInstruction
from repro.isa.opcodes import CALL_OPS, Op

from repro.check.cfg import ControlFlowGraph
from repro.check.diagnostics import CheckReport, Severity, instruction_context
from repro.check.effects import FIXED_EFFECTS


@dataclass(frozen=True)
class CallEffect:
    """The stack effect of one resolved call site."""

    arg_count: int
    result_count: int
    target: str  # qualified name, for messages


#: Resolves a call instruction at an offset to its target's signature.
#: Returning None means the resolver could not identify the target; it
#: is expected to have emitted its own diagnostic, and the verifier
#: stops propagating depth through that instruction.
CallResolver = Callable[[DecodedInstruction], CallEffect | None]


@dataclass(frozen=True)
class StackRules:
    """Per-procedure facts the depth verifier checks against."""

    #: Depth on entry: the argument record under COPY (the prologue pops
    #: it), zero under RENAME (arguments arrive as bank-resident locals).
    entry_depth: int
    #: Words the procedure must leave on the stack at RET.
    result_count: int
    #: Hard stack-depth limit (MachineConfig.eval_stack_depth).
    stack_limit: int


def verify_stack_depths(
    cfg: ControlFlowGraph,
    rules: StackRules,
    resolve_call: CallResolver,
    report: CheckReport,
    module: str | None = None,
    procedure: str | None = None,
) -> dict[int, int] | None:
    """Dataflow the stack depth over *cfg*; returns {offset: entry depth}.

    Emits diagnostics on *report*.  Returns None when verification could
    not complete (a conflict poisons further propagation); a dict of the
    verified per-instruction depths otherwise.
    """
    body = cfg.body

    def diag(check: str, severity: Severity, message: str, offset: int) -> None:
        report.add(
            check,
            severity,
            message,
            module,
            procedure,
            offset=offset,
            context=instruction_context(body, offset),
        )

    in_depth: dict[int, int] = {0: rules.entry_depth}
    depth_at: dict[int, int] = {}
    work = [0]
    consistent = True
    visited: set[int] = set()
    while work:
        start = work.pop()
        if start in visited:
            continue
        visited.add(start)
        block = cfg.blocks[start]
        depth = in_depth[start]
        abandoned = False
        for item in block.instructions:
            depth_at[item.offset] = depth
            op = item.instruction.op
            if op in CALL_OPS:
                effect = resolve_call(item)
                if effect is None:
                    abandoned = True
                    break
                if depth != effect.arg_count:
                    diag(
                        "call-record-mismatch",
                        Severity.ERROR,
                        f"{item.instruction} transfers to {effect.target} with "
                        f"{depth} word(s) on the stack; its argument record is "
                        f"{effect.arg_count} word(s) (section 5.2: the stack "
                        "holds exactly the outgoing record at a transfer)",
                        item.offset,
                    )
                    if depth < effect.arg_count:
                        abandoned = True
                        break
                depth = effect.result_count
            elif op is Op.RET:
                if depth != rules.result_count:
                    diag(
                        "return-record-mismatch",
                        Severity.ERROR,
                        f"RET with {depth} word(s) on the stack; the "
                        f"procedure's result record is {rules.result_count} "
                        "word(s)",
                        item.offset,
                    )
            elif op is Op.XF:
                # XF pops the destination word and sends the *rest* of the
                # stack as the outgoing record; by convention the incoming
                # record is one word (repro.lang.codegen emits exactly that).
                if depth < 1:
                    diag(
                        "stack-underflow",
                        Severity.ERROR,
                        "XF needs a destination context word but the stack "
                        "is empty",
                        item.offset,
                    )
                    abandoned = True
                    break
                depth = 1
            else:
                pops, pushes = FIXED_EFFECTS[op]
                if depth < pops:
                    diag(
                        "stack-underflow",
                        Severity.ERROR,
                        f"{item.instruction} pops {pops} word(s) but the "
                        f"stack depth is {depth}",
                        item.offset,
                    )
                    abandoned = True
                    break
                depth = depth - pops + pushes
                if depth > rules.stack_limit:
                    diag(
                        "stack-overflow",
                        Severity.ERROR,
                        f"{item.instruction} pushes the stack to {depth} "
                        f"word(s), past the machine limit of "
                        f"{rules.stack_limit}",
                        item.offset,
                    )
                    abandoned = True
                    break
        if abandoned:
            consistent = False
            continue
        for successor in block.successors:
            if successor not in in_depth:
                in_depth[successor] = depth
                work.append(successor)
            elif in_depth[successor] != depth:
                diag(
                    "inconsistent-depth",
                    Severity.ERROR,
                    f"join at {successor:#06x} reached with stack depth "
                    f"{depth} from {block.terminator.offset:#06x} but "
                    f"{in_depth[successor]} along another path",
                    successor,
                )
                consistent = False

    dead = sorted(set(cfg.blocks) - set(in_depth))
    for start in dead:
        block = cfg.blocks[start]
        diag(
            "dead-code",
            Severity.WARNING,
            f"block at {start:#06x} ({len(block.instructions)} "
            "instruction(s)) is unreachable",
            start,
        )
    return depth_at if consistent else None
