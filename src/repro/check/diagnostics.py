"""Diagnostics for the static verifier.

A :class:`Diagnostic` pins one finding to a place: a module, usually a
procedure, and — for code findings — a byte offset into the procedure
body plus a disassembled context window, so the report reads like a
compiler error citing source lines.  Table findings (link vector, GFT,
fsi) cite the table index or entry address instead of a code offset.

Severities:

* ``ERROR`` — a property the machine relies on is violated; executing
  the image can corrupt control flow or trap.  Errors fail the check.
* ``WARNING`` — legal but suspicious (dead code, unreachable
  procedures, a cold import occupying a one-byte EFC slot).
* ``NOTE`` — information that bounds what the verifier can promise
  (e.g. a raw ``XF`` whose destination is data-dependent).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import DecodeError
from repro.isa.disassembler import DecodedInstruction, disassemble


class Severity(enum.Enum):
    """How bad a finding is."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Diagnostic:
    """One finding: check id, severity, location, message, context."""

    check: str  # kebab-case check id, e.g. "stack-underflow"
    severity: Severity
    message: str
    module: str | None = None
    procedure: str | None = None
    #: Byte offset within the procedure body (code findings) or a table
    #: index / entry address (table findings); None when not applicable.
    offset: int | None = None
    #: Disassembled context around the offset ("" when not applicable).
    context: str = ""

    @property
    def location(self) -> str:
        """``Module.proc+0x0012``-style location string."""
        place = ""
        if self.module:
            place = self.module
            if self.procedure:
                place += f".{self.procedure}"
        if self.offset is not None:
            mark = f"+{self.offset:#06x}" if place else f"{self.offset:#06x}"
            place += mark
        return place or "<image>"

    def format(self, listing: bool = False) -> str:
        """Render the diagnostic; with *listing*, include the context."""
        line = f"{self.severity.value}[{self.check}] {self.location}: {self.message}"
        if listing and self.context:
            line += "\n" + "\n".join(f"    {ctx}" for ctx in self.context.splitlines())
        return line


@dataclass
class CheckReport:
    """Accumulates diagnostics across every pass of a check run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        check: str,
        severity: Severity,
        message: str,
        module: str | None = None,
        procedure: str | None = None,
        offset: int | None = None,
        context: str = "",
    ) -> Diagnostic:
        diagnostic = Diagnostic(check, severity, message, module, procedure, offset, context)
        self.diagnostics.append(diagnostic)
        return diagnostic

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def notes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.NOTE]

    @property
    def ok(self) -> bool:
        """True when no ERROR-severity diagnostics were recorded."""
        return not self.errors

    def by_check(self, check: str) -> list[Diagnostic]:
        """All diagnostics of one check id (test and fuzz convenience)."""
        return [d for d in self.diagnostics if d.check == check]

    def format(self, listing: bool = False) -> str:
        """Human-readable report, errors first."""
        order = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}
        ranked = sorted(
            self.diagnostics, key=lambda d: (order[d.severity], d.module or "", d.offset or 0)
        )
        lines = [d.format(listing=listing) for d in ranked]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.notes)} note(s)"
        )
        return "\n".join(lines)


def instruction_context(body: bytes, offset: int, before: int = 2, after: int = 1) -> str:
    """A ``--listing``-style window around *offset*, the bad line marked.

    Decodes the body defensively: a decode failure truncates the window
    rather than raising (the context is a courtesy, never a check).
    """
    try:
        items = disassemble(body)
    except DecodeError as fault:
        items = _decode_prefix(body, fault.offset)
    window: list[str] = []
    shown: list[DecodedInstruction] = []
    for item in items:
        if item.offset <= offset:
            shown = (shown + [item])[-(before + 1) :]
        elif len(shown) < before + 1 + after:
            shown.append(item)
        else:
            break
    for item in shown:
        raw = body[item.offset : item.offset + item.length].hex(" ")
        marker = ">" if item.offset == offset else " "
        window.append(f"{marker} {item.offset:#06x}  {raw:<12} {item.instruction}")
    if not any(item.offset == offset for item in shown) and 0 <= offset < len(body):
        window.append(f"> {offset:#06x}  {body[offset]:#04x}          <undecodable>")
    return "\n".join(window)


def _decode_prefix(body: bytes, stop: int) -> list[DecodedInstruction]:
    """Decode as much of *body* as is well-formed before *stop*."""
    try:
        return disassemble(body, 0, stop)
    except DecodeError:
        items: list[DecodedInstruction] = []
        offset = 0
        from repro.isa.instruction import decode

        while offset < stop:
            try:
                instruction = decode(body, offset)
            except DecodeError:
                break
            items.append(DecodedInstruction(offset, instruction))
            offset += instruction.length
        return items
