"""Static stack effects and operand-range limits per opcode.

The fixed-effect table gives ``(pops, pushes)`` for every instruction
whose effect does not depend on linkage: loads push one, stores pop one,
binary operators pop two and push one, and so on.  Control transfers
(calls, ``RET``, ``XF``) are resolved by the verifier against the
target's signature — the whole point of call/return-matched analysis.

Operand limits are the second tier: a ``LLB 12`` in a procedure with a
9-word frame reads a word that belongs to the *next* frame, silently.
The machine has no bounds check there (a real machine would not either),
which is exactly why the checker verifies local, global, entry-vector,
and link-vector indices statically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import CALL_OPS, Op

#: (pops, pushes) for every opcode with a linkage-independent effect.
FIXED_EFFECTS: dict[Op, tuple[int, int]] = {
    Op.NOOP: (0, 0),
    Op.HALT: (0, 0),
    Op.BRK: (0, 0),
    Op.LIN1: (0, 1),
    Op.LI0: (0, 1),
    Op.LI1: (0, 1),
    Op.LI2: (0, 1),
    Op.LI3: (0, 1),
    Op.LI4: (0, 1),
    Op.LI5: (0, 1),
    Op.LI6: (0, 1),
    Op.LI7: (0, 1),
    Op.LIB: (0, 1),
    Op.LIW: (0, 1),
    Op.LL0: (0, 1),
    Op.LL1: (0, 1),
    Op.LL2: (0, 1),
    Op.LL3: (0, 1),
    Op.LL4: (0, 1),
    Op.LL5: (0, 1),
    Op.LL6: (0, 1),
    Op.LL7: (0, 1),
    Op.LLB: (0, 1),
    Op.SL0: (1, 0),
    Op.SL1: (1, 0),
    Op.SL2: (1, 0),
    Op.SL3: (1, 0),
    Op.SL4: (1, 0),
    Op.SL5: (1, 0),
    Op.SL6: (1, 0),
    Op.SL7: (1, 0),
    Op.SLB: (1, 0),
    Op.LLA: (0, 1),
    Op.LG: (0, 1),
    Op.SG: (1, 0),
    Op.LGA: (0, 1),
    Op.RD: (1, 1),
    Op.WR: (2, 0),
    Op.ADD: (2, 1),
    Op.SUB: (2, 1),
    Op.MUL: (2, 1),
    Op.DIV: (2, 1),
    Op.MOD: (2, 1),
    Op.NEG: (1, 1),
    Op.AND: (2, 1),
    Op.OR: (2, 1),
    Op.XOR: (2, 1),
    Op.NOT: (1, 1),
    Op.SHL: (2, 1),
    Op.SHR: (2, 1),
    Op.EQ: (2, 1),
    Op.NE: (2, 1),
    Op.LT: (2, 1),
    Op.LE: (2, 1),
    Op.GT: (2, 1),
    Op.GE: (2, 1),
    Op.DUP: (1, 2),
    Op.POP: (1, 0),
    Op.EXCH: (2, 2),
    Op.JB: (0, 0),
    Op.JW: (0, 0),
    Op.JZB: (1, 0),
    Op.JNZB: (1, 0),
    Op.JZW: (1, 0),
    Op.JNZW: (1, 0),
    Op.LRC: (0, 1),
    Op.LLC: (0, 1),
    Op.YIELD: (0, 0),
    Op.OUT: (1, 0),
    Op.RETAIN: (0, 0),
    Op.ALOC: (1, 1),
    Op.FREE: (1, 0),
}

#: Opcodes whose runtime behaviour depends on data the checker cannot
#: see: XF transfers to a computed context word, ALOC sizes a record
#: from a stack operand, FREE releases a computed pointer.  Bodies using
#: them get a NOTE bounding the verifier's guarantee.
DYNAMIC_OPS: frozenset[Op] = frozenset({Op.XF, Op.ALOC, Op.FREE})

#: Calls with an explicit entry-vector index operand.
LOCAL_CALL_OPS: frozenset[Op] = frozenset({Op.LFC})

#: External calls through the link vector, with their implied LV index
#: (None when the index is the operand byte, as in EFCB).
EXTERNAL_CALL_INDEX: dict[Op, int | None] = {
    Op.EFC0: 0,
    Op.EFC1: 1,
    Op.EFC2: 2,
    Op.EFC3: 3,
    Op.EFC4: 4,
    Op.EFC5: 5,
    Op.EFC6: 6,
    Op.EFC7: 7,
    Op.EFCB: None,
}

#: Direct calls whose operand is a code address (resolved by the linker).
DIRECT_CALL_OPS: frozenset[Op] = frozenset({Op.DFC, Op.SDFC})

# -- effect classes (the interprocedural analyzer's vocabulary) ---------------
#
# Each set names the opcodes that give a procedure one observable effect
# beyond its own frame.  :mod:`repro.check.interproc` scans bodies for
# them and closes the per-procedure summaries over the call graph, so a
# procedure is "locals-only" exactly when nothing it can transitively
# reach touches globals, the heap, or a port.

#: Reads of the owning module's global frame (including taking addresses).
GLOBAL_READ_OPS: frozenset[Op] = frozenset({Op.LG, Op.LGA})

#: Writes into the global frame.
GLOBAL_WRITE_OPS: frozenset[Op] = frozenset({Op.SG})

#: Reads through computed pointers (frames, globals, or heap records).
HEAP_READ_OPS: frozenset[Op] = frozenset({Op.RD})

#: Writes through computed pointers, and record allocation/release —
#: anything that mutates storage the frame heap shares.
HEAP_WRITE_OPS: frozenset[Op] = frozenset({Op.WR, Op.ALOC, Op.FREE})

#: Port operations: the output channel and the scheduler's yield point.
PORT_OPS: frozenset[Op] = frozenset({Op.OUT, Op.YIELD})

#: Opcodes that can dispatch a machine trap on data the checker cannot
#: see: divide/modulo by zero, allocation faults, XFER to a bad context
#: word, and the breakpoint.  (Frame-allocation exhaustion on calls is
#: excluded: it depends on arena pressure, not on the call site.)
TRAP_POSSIBLE_OPS: frozenset[Op] = frozenset(
    {Op.DIV, Op.MOD, Op.ALOC, Op.FREE, Op.XF, Op.BRK}
)

#: Opcodes that put a context word on the stack: a live frame captured
#: this way can escape and later be XFERed into, which is why the
#: analyzer treats their owners as resumable (see interproc.py).
CONTEXT_CAPTURE_OPS: frozenset[Op] = frozenset({Op.LLC, Op.LRC})

assert CALL_OPS == (
    frozenset(EXTERNAL_CALL_INDEX) | LOCAL_CALL_OPS | DIRECT_CALL_OPS
), "checker call classification out of sync with the opcode table"

#: One-byte local loads/stores, with their implied local slot.
SHORT_LOCAL_SLOTS: dict[Op, int] = {
    **{Op(int(Op.LL0) + i): i for i in range(8)},
    **{Op(int(Op.SL0) + i): i for i in range(8)},
}


@dataclass(frozen=True)
class OperandLimits:
    """Everything needed to range-check one procedure's operands."""

    #: Words of arguments + locals + temporaries (frame minus header).
    local_words: int
    #: Global variable words of the owning module.
    global_words: int
    #: Entries in the module's link vector (its import count).
    import_count: int
    #: Entries in the module's entry vector (its procedure count).
    proc_count: int


def local_index_of(instruction) -> int | None:
    """The local-variable slot an instruction touches, or None."""
    op = instruction.op
    if op in SHORT_LOCAL_SLOTS:
        return SHORT_LOCAL_SLOTS[op]
    if op in (Op.LLB, Op.SLB, Op.LLA):
        return instruction.operand
    return None


def global_index_of(instruction) -> int | None:
    """The global-variable index an instruction touches, or None."""
    if instruction.op in (Op.LG, Op.SG, Op.LGA):
        return instruction.operand
    return None


def external_index_of(instruction) -> int | None:
    """The link-vector index an external call uses, or None."""
    implied = EXTERNAL_CALL_INDEX.get(instruction.op)
    if instruction.op is Op.EFCB:
        return instruction.operand
    return implied
