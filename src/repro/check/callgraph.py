"""Whole-program call graph and reachability (matched call/return).

Built by the checker from resolved call sites: a *call* edge for every
``LFC``/``EFC*``/``DFC``/``SDFC`` whose target resolved statically, and
a *reference* edge for every taken procedure descriptor (a ``PROC(M.p)``
literal patched into a ``LIW`` operand) — the descriptor can reach its
target later through ``XF``, so a referenced procedure is live once the
taker is.

Reachability follows the matched call/return discipline: control enters
at the designated entry procedure and flows only along call and
reference edges (returns come back to the caller by construction, so
they add no edges).  Procedures outside the reachable set are reported
as unreachable — WARNING, not ERROR, because an unused export is legal;
it is simply dead weight in the code segment the section 5 space
analysis counts.

The entry procedure is not the only way control enters an image.  A
process spawned on a :class:`~repro.interp.processes.Scheduler` starts
at its own procedure, and the net serving layer runs incoming Remote
XFERs as root activations — none of which appear as call edges.  Those
procedures are *roots*, not dead code: :func:`spawn_roots` derives them
from spawned processes (or plain ``(module, proc)`` pairs), and
``check_image``/``check_modules`` accept them as ``extra_roots``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.check.diagnostics import CheckReport, Severity


@dataclass(frozen=True, order=True)
class ProcNode:
    """One procedure, named as ``(module, procedure)``."""

    module: str
    name: str

    def __str__(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class CallGraph:
    """Call and descriptor-reference edges over :class:`ProcNode` nodes."""

    nodes: set[ProcNode] = field(default_factory=set)
    calls: dict[ProcNode, set[ProcNode]] = field(default_factory=dict)
    references: dict[ProcNode, set[ProcNode]] = field(default_factory=dict)

    def add_node(self, node: ProcNode) -> None:
        self.nodes.add(node)

    def add_call(self, caller: ProcNode, callee: ProcNode) -> None:
        self.nodes.add(caller)
        self.nodes.add(callee)
        self.calls.setdefault(caller, set()).add(callee)

    def add_reference(self, taker: ProcNode, target: ProcNode) -> None:
        self.nodes.add(taker)
        self.nodes.add(target)
        self.references.setdefault(taker, set()).add(target)

    def successors(self, node: ProcNode) -> set[ProcNode]:
        return self.calls.get(node, set()) | self.references.get(node, set())

    def reachable_from(self, roots: list[ProcNode]) -> set[ProcNode]:
        """Nodes reachable from *roots* along call and reference edges."""
        seen: set[ProcNode] = set()
        work = [root for root in roots if root in self.nodes]
        while work:
            node = work.pop()
            if node in seen:
                continue
            seen.add(node)
            work.extend(self.successors(node) - seen)
        return seen

    def descriptor_targets(self) -> set[ProcNode]:
        """Every procedure some reachable-or-not taker holds a descriptor
        for — the set a data-dependent ``XF`` could land in."""
        targets: set[ProcNode] = set()
        for referenced in self.references.values():
            targets |= referenced
        return targets

    def report_unreachable(self, roots: list[ProcNode], report: CheckReport) -> set[ProcNode]:
        """Warn about procedures no chain of transfers from *roots* reaches."""
        live = self.reachable_from(roots)
        dead = sorted(self.nodes - live)
        root_names = ", ".join(str(root) for root in roots) or "<none>"
        for node in dead:
            report.add(
                "unreachable-procedure",
                Severity.WARNING,
                f"no chain of calls or taken descriptors from {root_names} "
                f"reaches {node}; its code is dead weight in the segment",
                node.module,
                node.name,
            )
        return live


def spawn_roots(processes: Iterable) -> list[ProcNode]:
    """Call-graph roots for procedures entered from outside the graph.

    Accepts anything with ``module``/``proc`` attributes (a
    :class:`~repro.interp.processes.Process`, or the Scheduler's
    ``processes`` list directly) or plain ``(module, proc)`` tuples.
    Pass the result as ``extra_roots`` to ``check_image`` /
    ``check_modules`` so scheduler-spawned processes and externally
    served entry points are not falsely reported unreachable.
    """
    roots: list[ProcNode] = []
    for process in processes:
        module, proc = (
            process if isinstance(process, tuple) else (process.module, process.proc)
        )
        roots.append(ProcNode(module, proc))
    return roots
