"""Differential fuzzing: the verifier's verdict against the machine's.

The property under test is a dichotomy.  For an image built from a
corpus program and then mutated:

* if :func:`~repro.check.checker.check_image` passes it with **no
  errors and no dynamic-op notes**, then running it must not raise any
  of the fault classes the verifier claims to exclude
  (:data:`VERIFIED_FAULTS`: decode faults, eval-stack under/overflow,
  linkage-table faults, frame-size faults, bad transfer contexts);
* otherwise the mutant was rejected statically — offset-precise — and
  anything may happen at runtime.

Bodies containing ``XF``/``ALOC``/``FREE`` are excluded from the first
arm (the NOTE diagnostics mark them) because their faults depend on
run-time data the verifier cannot see.

Besides the random byte-flip campaign, :data:`DEFECT_INJECTIONS` builds
one representative mutant per defect class — stack underflow, bad LV
index, bad GFT index, bad fsi, jump into the middle of an instruction —
so tests can assert each is caught statically with a precise location.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    DecodeError,
    EvalStackOverflow,
    EvalStackUnderflow,
    FrameSizeError,
    InvalidContext,
    LinkError,
    ReproError,
    StepLimitExceeded,
    TrapError,
)
from repro.interp.image import ProgramImage
from repro.interp.machine import Machine
from repro.interp.machineconfig import MachineConfig
from repro.isa.opcodes import Op
from repro.lang.compiler import CompileOptions, compile_program
from repro.lang.linker import link
from repro.mesa.descriptor import MAX_ENV, pack_descriptor

from repro.check.checker import check_image
from repro.check.diagnostics import CheckReport

#: Fault classes a clean verification (with no dynamic-op notes)
#: promises the machine will not raise.
VERIFIED_FAULTS = (
    DecodeError,
    EvalStackUnderflow,
    EvalStackOverflow,
    LinkError,
    FrameSizeError,
    InvalidContext,
    TrapError,
)

#: Check ids marking data-dependent instructions; a report containing
#: any of these is outside the dichotomy's first arm.
DYNAMIC_NOTE_CHECKS = ("dynamic-transfer", "dynamic-frame")


def build_image(
    sources: tuple[str, ...] | list[str],
    entry: tuple[str, str],
    preset: str = "i2",
) -> ProgramImage:
    """Compile and link a fresh image (one per mutant — images are cheap
    and mutation must never leak into the next trial)."""
    config = MachineConfig.preset(preset)
    modules = compile_program(list(sources), CompileOptions.for_config(config))
    return link(modules, config, entry)


def execute(image: ProgramImage, args: tuple[int, ...] = (), max_steps: int = 200_000) -> str:
    """Run the image's entry; classify the outcome.

    Returns ``"ok"``, ``"step-limit"``, ``"fault:<Name>"`` for a
    verified fault class, or ``"other:<Name>"`` for faults outside the
    verifier's contract (e.g. a data-dependent memory fault).
    """
    machine = Machine(image)
    try:
        machine.start(None, None, *args)
        machine.run(max_steps)
    except VERIFIED_FAULTS as fault:
        return f"fault:{type(fault).__name__}"
    except StepLimitExceeded:
        return "step-limit"
    except ReproError as fault:
        return f"other:{type(fault).__name__}"
    return "ok"


def has_dynamic_notes(report: CheckReport) -> bool:
    return any(report.by_check(check) for check in DYNAMIC_NOTE_CHECKS)


@dataclass
class FuzzTrial:
    """One mutant's paper trail."""

    label: str
    report: CheckReport
    #: Outcome string from :func:`execute`, or "" when the mutant was
    #: rejected statically (no run needed).
    outcome: str

    @property
    def violates_dichotomy(self) -> bool:
        """Statically clean, dynamically trapped — the property failure."""
        return (
            self.report.ok
            and not has_dynamic_notes(self.report)
            and self.outcome.startswith("fault:")
        )


def _body_addresses(image: ProgramImage) -> list[int]:
    """Absolute code addresses of every instruction byte in every body."""
    addresses: list[int] = []
    for (_name, instance), linked in image.instances.items():
        if instance:
            continue
        for procedure in linked.module.procedures:
            start = linked.code_base + procedure.entry_offset + 1
            addresses.extend(range(start, start + len(procedure.body)))
    return addresses


def mutate_random_byte(image: ProgramImage, rng: random.Random) -> str:
    """Flip one code byte (body, EV word, fsi byte, or direct header)."""
    address = rng.randrange(image.code.size)
    old = image.code.buffer[address]
    new = rng.randrange(256)
    while new == old:
        new = rng.randrange(256)
    image.code.buffer[address] = new
    image.code.epoch += 1
    return f"code[{address:#06x}]: {old:#04x} -> {new:#04x}"


def run_campaign(
    sources: tuple[str, ...] | list[str],
    entry: tuple[str, str],
    args: tuple[int, ...] = (),
    preset: str = "i2",
    trials: int = 40,
    seed: int = 0,
    max_steps: int = 200_000,
) -> list[FuzzTrial]:
    """Mutate the program *trials* times; check, then run the clean ones."""
    rng = random.Random(seed)
    results: list[FuzzTrial] = []
    for _ in range(trials):
        image = build_image(sources, entry, preset)
        label = mutate_random_byte(image, rng)
        report = check_image(image)
        outcome = ""
        if report.ok and not has_dynamic_notes(report):
            outcome = execute(image, args, max_steps)
        results.append(FuzzTrial(label=label, report=report, outcome=outcome))
    return results


# -- targeted defect injection ---------------------------------------------------
#
# Each injector mutates the image in place to plant one defect of its
# class, returning True when it found an applicable site.  The paired
# check id is what check_image must report for the mutant.


def _decoded_bodies(image: ProgramImage):
    """Yield ``(linked, procedure, body_base_address, decoded items)``."""
    from repro.isa.disassembler import disassemble

    raw = image.code.raw
    for (_name, instance), linked in sorted(image.instances.items()):
        if instance:
            continue
        for procedure in linked.module.procedures:
            start = linked.code_base + procedure.entry_offset + 1
            body = raw[start : start + len(procedure.body)]
            try:
                items = disassemble(body)
            except DecodeError:
                continue
            yield linked, procedure, start, items


def inject_stack_underflow(image: ProgramImage) -> bool:
    """Plant an instruction that pops below a provably-zero stack depth.

    Two sites guarantee depth zero without dataflow: the first
    instruction of a procedure entered with an empty stack (ADD there
    pops two from nothing), and the final RET of a zero-result procedure
    (POP there pops one from nothing).  Both replacements are one byte
    for one byte, so the rest of the body decodes unchanged and the
    diagnostic is exactly ``stack-underflow``.
    """
    from repro.interp.machineconfig import ArgConvention

    copy = image.config.arg_convention is ArgConvention.COPY
    for _linked, procedure, start, items in _decoded_bodies(image):
        entry_depth = procedure.arg_count if copy else 0
        if entry_depth == 0 and items[0].length == 1:
            image.code.buffer[start] = int(Op.ADD)
            image.code.epoch += 1
            return True
        last = items[-1]
        if procedure.result_count == 0 and last.instruction.op is Op.RET:
            image.code.buffer[start + last.offset] = int(Op.POP)
            image.code.epoch += 1
            return True
    return False


def inject_bad_lv_index(image: ProgramImage) -> bool:
    """Retarget an external call at a link-vector slot past the imports."""
    hot = {Op[f"EFC{i}"] for i in range(8)}
    for linked, _procedure, start, items in _decoded_bodies(image):
        if len(linked.module.imports) >= 8:
            continue
        for item in items:
            if item.instruction.op in hot:
                image.code.buffer[start + item.offset] = int(Op.EFC7)
                image.code.epoch += 1
                return True
    return False


def inject_bad_gft_index(image: ProgramImage) -> bool:
    """Poke a link-vector word to a descriptor with an absurd env field."""
    if image.gft is None:
        return False
    for (_name, instance), linked in sorted(image.instances.items()):
        if instance or not linked.module.imports:
            continue
        image.memory.poke(linked.lv_base, pack_descriptor(MAX_ENV, 0))
        return True
    return False


def inject_bad_fsi(image: ProgramImage) -> bool:
    """Stamp an fsi byte far past the allocation vector's ladder."""
    meta = image.entry
    image.code.buffer[meta.entry_address] = 0xEE
    image.code.epoch += 1
    return True


def inject_jump_into_instruction(image: ProgramImage) -> bool:
    """Re-aim a jump displacement at an operand byte of a wide instruction."""
    from repro.isa.disassembler import disassemble
    from repro.isa.opcodes import OperandKind, OPERAND_KINDS

    for (_name, instance), linked in sorted(image.instances.items()):
        if instance:
            continue
        for procedure in linked.module.procedures:
            start = linked.code_base + procedure.entry_offset + 1
            body = image.code.raw[start : start + len(procedure.body)]
            try:
                items = disassemble(body)
            except DecodeError:
                continue
            wide = [item for item in items if item.length > 1]
            for item in items:
                if OPERAND_KINDS[item.instruction.op] is not OperandKind.S8:
                    continue
                if item.target() is None:
                    continue
                after = item.offset + item.length
                for victim in wide:
                    displacement = victim.offset + 1 - after
                    if -128 <= displacement <= 127:
                        image.code.buffer[start + item.offset + 1] = displacement & 0xFF
                        image.code.epoch += 1
                        return True
    return False


#: (defect label, check id ``check_image`` must report, injector).
DEFECT_INJECTIONS = [
    ("stack underflow", "stack-underflow", inject_stack_underflow),
    ("bad LV index", "lv-index", inject_bad_lv_index),
    ("bad GFT index", "gft-index", inject_bad_gft_index),
    ("bad fsi", "fsi-range", inject_bad_fsi),
    ("jump into mid-instruction", "jump-into-instruction", inject_jump_into_instruction),
]


# -- analyzer-targeted defect injection ------------------------------------------
#
# Same contract as DEFECT_INJECTIONS, but the verdict comes from
# :func:`repro.check.interproc.analyze_image`: each defect either lies
# to the analyzer about a procedure's transfer behaviour (compiler
# metadata tamper) or under-declares a frame so the facts gate must
# refuse to emit.  Tests assert the paired check id appears AND that
# ``ImageAnalysis.to_facts`` raises — a lying image gets no facts.


def inject_hidden_indirect_callee(image: ProgramImage) -> bool:
    """Declare ``performs_xfer=False`` on a body that contains XF.

    The classic FDO footgun: a procedure whose indirect callees vanish
    from the call graph because the compiler's summary says it never
    transfers.  The analyzer must catch the lie by scanning the
    bytecode (check id ``undeclared-xfer``).
    """
    for _linked, procedure, _start, items in _decoded_bodies(image):
        if any(item.instruction.op is Op.XF for item in items):
            procedure.performs_xfer = False
            return True
    return False


def inject_hidden_context_capture(image: ProgramImage) -> bool:
    """Declare ``captures_context=False`` on a body using LLC/LRC.

    A frame that escapes through an undeclared capture can be XFERed
    into behind the analyzer's back, so the resumable set would be
    under-approximated (check id ``undeclared-capture``).
    """
    for _linked, procedure, _start, items in _decoded_bodies(image):
        if any(item.instruction.op in (Op.LLC, Op.LRC) for item in items):
            procedure.captures_context = False
            return True
    return False


def inject_underdeclared_frame(image: ProgramImage) -> bool:
    """Stamp an entry fsi byte to a ladder class smaller than the frame.

    The frame-size bounds in the facts are computed from the fsi bytes;
    an under-declared frame would make them optimistic, so the base
    check (``fsi-too-small``) must fail the image before facts exist.
    """
    for _linked, procedure, start, _items in _decoded_bodies(image):
        if image.ladder.size_of(0) < procedure.frame_words:
            image.code.buffer[start - 1] = 0  # fsi byte precedes the body
            image.code.epoch += 1
            return True
    return False


#: (defect label, check id ``analyze_image`` must report, injector).
ANALYZER_DEFECT_INJECTIONS = [
    ("hidden indirect callee", "undeclared-xfer", inject_hidden_indirect_callee),
    ("hidden context capture", "undeclared-capture", inject_hidden_context_capture),
    ("under-declared frame size", "fsi-too-small", inject_underdeclared_frame),
]


# -- FDO-targeted defect injection -----------------------------------------------
#
# Same contract again, but the subject is an image the feedback-directed
# optimizer rewrote (promoted DFC/SDFC sites with section 6 headers,
# retuned fsi bytes).  Each injector plants the defect a buggy rewriter
# would introduce; check_image must refuse the image — which is exactly
# the gate `repro optimize` runs before emitting, so a caught injection
# here proves a buggy rewrite cannot ship.


def build_optimized_image(
    sources: tuple[str, ...] | list[str],
    entry: tuple[str, str],
    preset: str = "i2",
    args: tuple[int, ...] = (),
) -> ProgramImage:
    """An image rewritten by the FDO pipeline (fresh per mutant)."""
    from repro.check.interproc import analyze_image
    from repro.fdo import collect_profile, optimize

    profile = collect_profile(list(sources), preset, entry, tuple(args))
    facts = analyze_image(build_image(sources, entry, preset)).to_facts()
    result = optimize(list(sources), preset, entry, profile, facts)
    return result.build().image


def inject_bad_direct_header(image: ProgramImage) -> bool:
    """Corrupt the inline GF word of a promoted DIRECTCALL header.

    A rewriter that emits the header but patches the wrong GF would send
    every promoted call into a foreign global frame; the checker must
    hold the header word to the owning instance's GF
    (check id ``direct-header-gf``).
    """
    for (_name, instance), linked in sorted(image.instances.items()):
        if instance:
            continue
        for procedure in linked.module.procedures:
            if procedure.direct_offset < 0:
                continue
            address = linked.code_base + procedure.direct_offset
            image.code.buffer[address] ^= 0x5A
            image.code.epoch += 1
            return True
    return False


def inject_promoted_target_into_body(image: ProgramImage) -> bool:
    """Re-aim a promoted DFC/SDFC one byte off its header.

    The early-bound address is the whole point of promotion; an
    off-by-one leaves it pointing into the header's interior, which is
    not any procedure's DIRECTCALL header (check id ``direct-target``).
    """
    for _linked, _procedure, start, items in _decoded_bodies(image):
        for item in items:
            if item.instruction.op in (Op.DFC, Op.SDFC):
                operand_end = start + item.offset + item.length - 1
                image.code.buffer[operand_end] ^= 0x01
                image.code.epoch += 1
                return True
    return False


def inject_fsi_below_observed(image: ProgramImage) -> bool:
    """Stamp a promoted procedure's fsi under its frame need.

    Models a frame-retuning decision taken below the observed maximum
    frame size: the linker refuses such overrides (LinkError), so the
    only way the image can exist is a tampered rewrite — and the base
    check must still catch it (check id ``fsi-too-small``).
    """
    for _linked, procedure, start, _items in _decoded_bodies(image):
        if procedure.direct_offset < 0:
            continue
        if image.ladder.size_of(0) < procedure.frame_words:
            image.code.buffer[start - 1] = 0  # fsi byte precedes the body
            image.code.epoch += 1
            return True
    return False


#: (defect label, check id ``check_image`` must report, injector);
#: subjects come from :func:`build_optimized_image`.
FDO_DEFECT_INJECTIONS = [
    ("promoted header wrong GF", "direct-header-gf", inject_bad_direct_header),
    ("promoted call into header interior", "direct-target",
     inject_promoted_target_into_body),
    ("fsi under observed frame", "fsi-too-small", inject_fsi_below_observed),
]
