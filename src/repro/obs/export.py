"""Trace exporters: Chrome trace_event JSON, folded stacks, JSONL.

Three interchange formats over one event stream:

* :func:`to_chrome_trace` — the Chrome ``trace_event`` format (the JSON
  Object Format with a ``traceEvents`` array), loadable in
  ``chrome://tracing`` and Perfetto.  Call/return pairs become complete
  (``"ph": "X"``) duration events built from the reconstructed call
  tree, so the output is balanced by construction; every other event
  becomes an instant (``"ph": "i"``).  The time axis is modelled
  cycles, not wall-clock (1 "microsecond" = 1 cycle).
* :func:`to_folded_stacks` — Brendan Gregg's folded-stack format
  (``Main.main;Main.fib 123`` per line, weight = exclusive modelled
  cycles), the input ``flamegraph.pl`` and speedscope accept.
* :func:`to_jsonl` — one JSON object per event, the lossless dump.
"""

from __future__ import annotations

import json

from repro.obs import events as ev
from repro.obs.calltree import CallNode, CallTree, build_call_tree

#: Chrome phase characters used by the exporter.
_PHASE_COMPLETE = "X"
_PHASE_INSTANT = "i"

#: Event families mapped to Chrome categories.
_CATEGORY = {
    "machine": "machine",
    "xfer": "xfer",
    "alloc": "alloc",
    "ifu": "ifu",
    "bank": "bank",
    "sched": "sched",
}


def _category(kind: str) -> str:
    family = kind.partition(".")[0]
    return _CATEGORY.get(family, "other")


def to_chrome_trace(
    events,
    tree: CallTree | None = None,
    pid: int = 1,
    process_name: str = "repro XFER machine",
) -> dict:
    """Render *events* as a Chrome trace_event JSON object.

    Duration events come from *tree* (built from the events when not
    supplied); instants carry every non-call event with its data in
    ``args``.  Scheduler switch events move following instants onto the
    per-process thread ids (tid = 1 + pid of the simulated process).
    """
    events = list(events)
    if tree is None:
        tree = build_call_tree(events)

    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]

    for node, depth in tree.root.walk():
        trace_events.append(
            {
                "name": node.name,
                "cat": "xfer",
                "ph": _PHASE_COMPLETE,
                "ts": node.start_cycles,
                "dur": node.inclusive_cycles,
                "pid": pid,
                "tid": 1,
                "args": {
                    "steps": node.inclusive_steps,
                    "exclusive_cycles": node.exclusive_cycles,
                    "depth": depth,
                },
            }
        )

    tid = 1
    for event in events:
        if event.kind in (ev.XFER_CALL, ev.XFER_RETURN, ev.MACHINE_STEP):
            continue  # calls/returns are the duration events; steps are noise
        if event.kind == ev.SCHED_SWITCH_IN:
            tid = 1 + int(event.data.get("pid", 0))
        trace_events.append(
            {
                "name": event.name or event.kind,
                "cat": _category(event.kind),
                "ph": _PHASE_INSTANT,
                "s": "t",
                "ts": event.cycles,
                "pid": pid,
                "tid": tid,
                "args": {"kind": event.kind, "steps": event.steps, **event.data},
            }
        )
        if event.kind == ev.SCHED_SWITCH_OUT:
            tid = 1

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "time_unit": "modelled cycles (1 trace us = 1 cycle)",
            "structured": tree.structured,
            "dropped_events": tree.dropped,
        },
    }


def to_folded_stacks(events, tree: CallTree | None = None) -> str:
    """Render the call tree as folded stacks weighted by exclusive cycles.

    Each line is ``root;...;leaf <exclusive cycles>``; identical stacks
    are merged.  Feed to ``flamegraph.pl`` or paste into speedscope.
    """
    if tree is None:
        tree = build_call_tree(list(events))
    weights: dict[tuple[str, ...], int] = {}

    stack: list[tuple[CallNode, tuple[str, ...]]] = [(tree.root, (tree.root.name,))]
    while stack:
        node, path = stack.pop()
        exclusive = node.exclusive_cycles
        if exclusive > 0:
            weights[path] = weights.get(path, 0) + exclusive
        for child in node.children:
            stack.append((child, path + (child.name,)))

    lines = [
        f"{';'.join(path)} {weight}"
        for path, weight in sorted(weights.items())
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def to_jsonl(events) -> str:
    """One JSON object per event — the lossless, greppable dump."""
    return "".join(json.dumps(event.as_dict()) + "\n" for event in events)


def validate_chrome_trace(payload: dict) -> list[str]:
    """Sanity-check a trace object against what chrome://tracing needs.

    Returns a list of problems (empty = loadable): the required
    ``traceEvents`` array, required per-event keys, known phases, and
    non-negative timestamps/durations.  Used by the test suite and by
    ``repro trace --format chrome`` before writing.
    """
    problems: list[str] = []
    trace_events = payload.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["traceEvents missing or not a list"]
    for index, entry in enumerate(trace_events):
        if not isinstance(entry, dict):
            problems.append(f"event {index}: not an object")
            continue
        phase = entry.get("ph")
        if phase not in ("X", "i", "B", "E", "M"):
            problems.append(f"event {index}: unknown phase {phase!r}")
            continue
        required = {"name", "ph", "pid", "tid"}
        if phase != "M":
            required |= {"ts"}
        missing = required - entry.keys()
        if missing:
            problems.append(f"event {index}: missing {sorted(missing)}")
            continue
        if phase != "M" and entry["ts"] < 0:
            problems.append(f"event {index}: negative ts")
        if phase == "X" and entry.get("dur", 0) < 0:
            problems.append(f"event {index}: negative dur")
        if phase == "i" and entry.get("s") not in ("t", "p", "g"):
            problems.append(f"event {index}: instant without scope")
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as fault:
        problems.append(f"not JSON-serializable: {fault}")
    return problems
