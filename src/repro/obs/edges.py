"""Call-edge and depth extraction from a recorded trace.

The interprocedural analyzer's soundness gate
(:func:`repro.check.interproc.soundness_differential`) compares what the
machine actually did against the static prediction.  This module turns
the raw :class:`~repro.obs.events.TraceEvent` stream into the dynamic
side of that comparison: the set of observed (caller, callee) edges and
the peak live-activation depth.

Edges come from ``xfer.call`` (ordinary calls; the synthetic
``"<start>"`` source of the root activation is skipped) and from
``xfer.xfer`` (general transfers, both the new-frame descriptor arm and
the resume-a-live-frame arm).  ``xfer.return`` adds no edges — returns
go back to the caller by construction.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.obs.events import XFER_CALL, XFER_RETURN, XFER_XFER, TraceEvent

#: The machine's placeholder source name for the root activation.
ROOT_SOURCE = "<start>"


def observed_call_edges(events: Iterable[TraceEvent]) -> set[tuple[str, str]]:
    """Every (source, target) transfer edge the trace witnessed."""
    edges: set[tuple[str, str]] = set()
    for event in events:
        if event.kind == XFER_CALL:
            source = event.data.get("source", "")
            if source and source != ROOT_SOURCE:
                edges.add((source, event.name))
        elif event.kind == XFER_XFER:
            source = event.data.get("source", "")
            if source:
                edges.add((source, event.name))
    return edges


def observed_callees(events: Iterable[TraceEvent]) -> dict[str, set[str]]:
    """Observed callee set per caller, from the same edges."""
    callees: dict[str, set[str]] = {}
    for source, target in observed_call_edges(events):
        callees.setdefault(source, set()).add(target)
    return callees


def observed_transfer_depth(events: Iterable[TraceEvent]) -> tuple[int, bool]:
    """Peak live-activation depth, and whether the count is exact.

    Counts the root activation as depth 1, each ``xfer.call`` as +1 and
    each ``xfer.return`` as -1.  A descriptor ``xfer.xfer`` builds a new
    frame on top of a chain that stays live (+1); a resume ``xfer.xfer``
    jumps into an existing chain whose length the event stream does not
    carry, so the count stops being exact — the second element of the
    result turns False and callers should not compare the peak against
    a static bound (which is unbounded for such programs anyway).
    """
    depth = 1
    peak = 1
    exact = True
    for event in events:
        if event.kind == XFER_CALL:
            depth += 1
        elif event.kind == XFER_RETURN:
            depth -= 1
        elif event.kind == XFER_XFER:
            if event.data.get("descriptor"):
                depth += 1
            else:
                exact = False
        peak = max(peak, depth)
    return peak, exact
