"""Trace events: the vocabulary of the observability subsystem.

Every instrumented mechanism in the simulator emits :class:`TraceEvent`
records through a :class:`~repro.obs.tracer.Tracer`.  The taxonomy
follows the paper's own decomposition of a procedure call (sections
4-7): control transfers, frame allocation, the IFU return stack, the
register banks, and process switches each get a dot-namespaced family
of event kinds, so a consumer can subscribe to one mechanism or
reconstruct a whole run.

Timestamps are the machine's own meters — *steps* (instructions
executed) and modelled *cycles* — not host wall-clock: a trace is a
function of the program and the configuration, reproducible bit-for-bit
across hosts.  Because every call eventually pairs with a return, the
``xfer.call`` / ``xfer.return`` stream forms the balanced-bracket
structure that :mod:`repro.obs.calltree` folds back into a tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Event kinds (dot-namespaced by mechanism)
# ---------------------------------------------------------------------------

#: Machine lifecycle: ``start()`` set up the root activation.
MACHINE_BEGIN = "machine.begin"
#: The machine halted (final RETURN or HALT).
MACHINE_HALT = "machine.halt"
#: One instruction executed (only with ``trace_steps`` — very verbose).
MACHINE_STEP = "machine.step"

#: A call transfer completed (EFC/LFC/DFC/SDFC); name is the callee.
XFER_CALL = "xfer.call"
#: A return transfer completed; name is the returning procedure.
XFER_RETURN = "xfer.return"
#: A general XFER (coroutine linkage, trap context entry).
XFER_XFER = "xfer.xfer"
#: A trap was dispatched; name is the trap kind.
XFER_TRAP = "xfer.trap"

#: A frame (or long record) was allocated; name is the allocator.
ALLOC_FRAME = "alloc.frame"
#: A frame (or record) was freed.
ALLOC_FREE = "alloc.free"
#: The AV free list was empty — the section 5.3 software-allocator trap.
ALLOC_TRAP = "alloc.trap"
#: Bounded retry: the arena was full and the allocation was granted a
#: frame from a larger size class (graceful degradation).
ALLOC_PROMOTE = "alloc.promote"
#: Migration carved backing store for an adopted frame (uncounted host
#: work — no machine meters move).
ALLOC_CARVE = "alloc.carve"

#: A return was served from the IFU return stack (jump speed).
IFU_HIT = "ifu.hit"
#: A return fell back to the general scheme (stack empty).
IFU_MISS = "ifu.miss"
#: Return-stack entries were written to memory (overflow, xfer, ...).
IFU_FLUSH = "ifu.flush"

#: A register bank was spilled into its frame (section 7.1 overflow path).
BANK_SPILL = "bank.spill"
#: A register bank was filled from a frame (the underflow path).
BANK_FILL = "bank.fill"

#: The scheduler resumed a process (name is ``p<pid>``).
SCHED_SWITCH_IN = "sched.switch_in"
#: The scheduler suspended a process; ``reason`` is ``yield``/``preempt``.
SCHED_SWITCH_OUT = "sched.switch_out"
#: A process ran to completion.
SCHED_DONE = "sched.done"
#: A process was quarantined after an unhandled trap or a trap storm.
SCHED_FAULT = "sched.fault"
#: A process suspended on an outstanding Remote XFER (repro.net).
SCHED_BLOCK = "sched.block"
#: A remote reply delivered result words onto a blocked process's stack.
SCHED_UNBLOCK = "sched.unblock"

#: The fault-injection harness fired an injection (repro.faults).
FAULT_INJECT = "fault.inject"

#: A Remote XFER left the calling shard; carries span/parent ids.
NET_CALL = "net.call"
#: A wire message entered the transport (CALL/REPLY/ERROR/HELLO).
NET_SEND = "net.send"
#: A wire message was delivered to its destination shard.
NET_RECV = "net.recv"
#: The skeleton spawned a process for an incoming CALL.
NET_SERVE = "net.serve"
#: The skeleton sent a REPLY (or ERROR) back to the caller.
NET_REPLY = "net.reply"
#: The transport's fault policy dropped a message.
NET_DROP = "net.drop"
#: The transport's fault policy duplicated a message.
NET_DUP = "net.dup"
#: The transport's fault policy delayed a message by some ticks.
NET_DELAY = "net.delay"
#: A link was partitioned (messages queue until it heals).
NET_PARTITION = "net.partition"
#: A request was re-sent after a timeout or a shard fault.
NET_RETRY = "net.retry"
#: A process was extracted from its shard for migration (quiesced,
#: sliced out of the process table, forwarding installed).
NET_MIGRATE_EXTRACT = "net.migrate.extract"
#: A migrated process was adopted by its new home shard.
NET_MIGRATE_ADOPT = "net.migrate.adopt"
#: A reply (or error) for a migrated process hit the forwarding entry
#: on its old home and was re-routed to the new one.
NET_MIGRATE_FORWARD = "net.migrate.forward"

#: Every event kind, for validation and documentation.
ALL_KINDS: tuple[str, ...] = (
    MACHINE_BEGIN,
    MACHINE_HALT,
    MACHINE_STEP,
    XFER_CALL,
    XFER_RETURN,
    XFER_XFER,
    XFER_TRAP,
    ALLOC_FRAME,
    ALLOC_FREE,
    ALLOC_TRAP,
    ALLOC_PROMOTE,
    ALLOC_CARVE,
    IFU_HIT,
    IFU_MISS,
    IFU_FLUSH,
    BANK_SPILL,
    BANK_FILL,
    SCHED_SWITCH_IN,
    SCHED_SWITCH_OUT,
    SCHED_DONE,
    SCHED_FAULT,
    SCHED_BLOCK,
    SCHED_UNBLOCK,
    FAULT_INJECT,
    NET_CALL,
    NET_SEND,
    NET_RECV,
    NET_SERVE,
    NET_REPLY,
    NET_DROP,
    NET_DUP,
    NET_DELAY,
    NET_PARTITION,
    NET_RETRY,
    NET_MIGRATE_EXTRACT,
    NET_MIGRATE_ADOPT,
    NET_MIGRATE_FORWARD,
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One observed occurrence, stamped with the machine's own meters.

    ``seq`` is a global emission counter (monotonic even when the ring
    buffer drops old events), ``steps`` and ``cycles`` are the machine
    meters at emission time, and ``data`` carries kind-specific fields
    (all JSON-serializable).
    """

    seq: int
    kind: str
    name: str
    steps: int
    cycles: int
    data: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """A JSON-ready flat representation (for the JSONL exporter)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "steps": self.steps,
            "cycles": self.cycles,
            "data": dict(self.data),
        }

    def __str__(self) -> str:
        extra = " ".join(f"{key}={value}" for key, value in self.data.items())
        label = f" {self.name}" if self.name else ""
        suffix = f"  [{extra}]" if extra else ""
        return f"#{self.seq} @{self.steps}/{self.cycles}c {self.kind}{label}{suffix}"
