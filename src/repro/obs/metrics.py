"""The metrics registry: counters, gauges, and log2-bucket histograms.

The registry is the aggregated (as opposed to event-stream) face of the
observability subsystem.  It *wraps* the existing
:class:`~repro.machine.costs.CycleCounter` — a bound counter's event
counts and cycle total appear in every snapshot — without ever recording
into it: metrics are host-side bookkeeping and must not change any
modelled charge.

Histograms use power-of-two buckets, the natural scale for the paper's
distributions: frame sizes follow the section 5.3 ladder (geometric with
ratio ~1.4, so log2 buckets group adjacent rungs), call depth and
steps-per-process span orders of magnitude.  Bucket *i* holds values
``v`` with ``2**(i-1) <= v < 2**i`` (bucket 0 holds 0).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.costs import CycleCounter
from repro.obs import events as ev


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


@dataclass
class Gauge:
    """A value that goes up and down (e.g. current call depth)."""

    name: str
    value: int = 0

    def set(self, value: int) -> None:
        self.value = value

    def add(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Histogram:
    """A log2-bucket histogram of non-negative integer observations.

    ``buckets[i]`` counts observations in ``[2**(i-1), 2**i)``; bucket 0
    counts zeros.  The exact count, sum, and max are kept alongside, so
    means are exact even though the distribution is bucketed.
    """

    name: str
    buckets: dict[int, int] = field(default_factory=dict)
    count: int = 0
    total: int = 0
    max_value: int = 0

    def observe(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name} takes non-negative values, got {value}")
        bucket = value.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        upper_bounds = {
            str((1 << bucket) - 1 if bucket else 0): self.buckets[bucket]
            for bucket in sorted(self.buckets)
        }
        return {
            "count": self.count,
            "sum": self.total,
            "max": self.max_value,
            "mean": self.mean,
            "buckets": upper_bounds,
        }


class MetricsRegistry:
    """Named metrics plus an optional view of the machine's cycle counter.

    ``counter``/``gauge``/``histogram`` create on first use and return
    the existing instrument afterwards (mixing types under one name is
    an error).  :meth:`snapshot` returns one JSON-ready dict; when a
    :class:`CycleCounter` is bound, its event counts and cycle total are
    included under ``"model"`` — read straight off the shared counter,
    never modified.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._cycle_counter: CycleCounter | None = None

    def _get(self, name: str, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name)
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def bind_cycle_counter(self, counter: CycleCounter) -> None:
        """Include *counter*'s state (read-only) in snapshots."""
        self._cycle_counter = counter

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        data: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                data["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                data["gauges"][name] = metric.value
            else:
                data["histograms"][name] = metric.as_dict()
        if self._cycle_counter is not None:
            data["model"] = self._cycle_counter.snapshot()
        return data


class MetricsTracer:
    """A :class:`~repro.obs.tracer.Tracer` sink that feeds a registry.

    Subscribes to the event stream and maintains the distributions the
    paper argues from: frame sizes (section 5.3 sizes the ladder from
    them), call depth (section 6 sizes the return stack from its
    excursions), and steps-per-process (section 7's XFER-rate
    denominator).  Attach alongside a recorder with
    :class:`~repro.obs.tracer.TeeTracer`, or alone when only aggregates
    are wanted.
    """

    trace_steps = False

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._depth = 0

    def bind(self, machine) -> None:
        self.registry.bind_cycle_counter(machine.counter)

    def emit(self, kind: str, name: str = "", **data) -> None:
        registry = self.registry
        if kind == ev.XFER_CALL:
            self._depth += 1
            registry.counter("xfer.calls").inc()
            registry.gauge("current_call_depth").set(self._depth)
            registry.histogram("call_depth").observe(self._depth)
            words = data.get("words")
            if words is not None:
                registry.histogram("frame_words").observe(words)
        elif kind == ev.XFER_RETURN:
            if self._depth > 0:
                self._depth -= 1
            registry.gauge("current_call_depth").set(self._depth)
            registry.counter("xfer.returns").inc()
        elif kind == ev.XFER_XFER:
            registry.counter("xfer.xfers").inc()
        elif kind == ev.XFER_TRAP:
            registry.counter(f"trap.{name}").inc()
        elif kind == ev.ALLOC_FRAME:
            registry.counter("alloc.frames").inc()
            words = data.get("words")
            if words is not None:
                registry.histogram("alloc_words").observe(words)
        elif kind == ev.ALLOC_FREE:
            registry.counter("alloc.frees").inc()
        elif kind == ev.ALLOC_TRAP:
            registry.counter("alloc.traps").inc()
        elif kind == ev.IFU_HIT:
            registry.counter("ifu.hits").inc()
        elif kind == ev.IFU_MISS:
            registry.counter("ifu.misses").inc()
        elif kind == ev.IFU_FLUSH:
            registry.counter("ifu.flushes").inc()
            registry.counter("ifu.entries_flushed").inc(data.get("entries", 0))
        elif kind == ev.BANK_SPILL:
            registry.counter("bank.spills").inc()
            registry.counter("bank.words_spilled").inc(data.get("words", 0))
        elif kind == ev.BANK_FILL:
            registry.counter("bank.fills").inc()
            registry.counter("bank.words_filled").inc(data.get("words", 0))
        elif kind == ev.SCHED_SWITCH_OUT:
            registry.counter("sched.switches").inc()
            registry.counter(f"sched.{data.get('reason', 'switch')}s").inc()
        elif kind == ev.SCHED_DONE:
            registry.counter("sched.completions").inc()
            steps = data.get("steps")
            if steps is not None:
                registry.histogram("steps_per_process").observe(steps)
