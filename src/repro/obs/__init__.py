"""Runtime observability for the XFER machine: tracing, metrics, profiling.

The paper's argument is measurement-driven — section 2 sizes the XFER
budget from call-frequency statistics, section 8 validates the ladder
with counted memory references.  This package makes the reproduction
observable the same way:

* :mod:`repro.obs.events` — the event taxonomy (one family per
  mechanism: ``xfer``, ``alloc``, ``ifu``, ``bank``, ``sched``);
* :mod:`repro.obs.tracer` — the event bus: a :class:`Tracer` protocol
  whose disabled path is a single ``is None`` check at every
  instrumentation point, a ring-buffer :class:`TraceRecorder`, and a
  fan-out :class:`TeeTracer`;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` (counters,
  gauges, log2-bucket histograms) wrapping the shared
  :class:`~repro.machine.costs.CycleCounter` read-only;
* :mod:`repro.obs.calltree` — the matched call/return tree with exact
  inclusive/exclusive modelled-cycle attribution;
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, flamegraph
  folded stacks, and JSONL dumps.

The invariant the whole package is built around: **tracing never
changes the modelled machine**.  Event emission reads the meters, it
never records into them, so every `CycleCounter` total is bit-identical
with tracing on or off (``tests/test_obs_differential.py``).

Quickstart::

    from repro import build_machine
    from repro.obs import TraceRecorder, build_call_tree, aggregate

    machine = build_machine([SOURCE])
    recorder = TraceRecorder(capacity=None)
    machine.attach_tracer(recorder)
    machine.run()
    tree = build_call_tree(recorder.events, total_cycles=machine.counter.cycles)
    for profile in aggregate(tree)[:10]:
        print(profile.name, profile.inclusive_cycles, profile.exclusive_cycles)
"""

from repro.obs.calltree import (
    CallNode,
    CallTree,
    ProcProfile,
    aggregate,
    build_call_tree,
)
from repro.obs.edges import (
    observed_call_edges,
    observed_callees,
    observed_transfer_depth,
)
from repro.obs.events import ALL_KINDS, TraceEvent
from repro.obs.export import (
    to_chrome_trace,
    to_folded_stacks,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsTracer,
)
from repro.obs.tracer import TeeTracer, Tracer, TraceRecorder

__all__ = [
    "ALL_KINDS",
    "CallNode",
    "CallTree",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsTracer",
    "ProcProfile",
    "TeeTracer",
    "TraceEvent",
    "TraceRecorder",
    "Tracer",
    "aggregate",
    "build_call_tree",
    "observed_call_edges",
    "observed_callees",
    "observed_transfer_depth",
    "to_chrome_trace",
    "to_folded_stacks",
    "to_jsonl",
    "validate_chrome_trace",
]
