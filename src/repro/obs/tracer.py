"""Tracers: the event bus of the observability subsystem.

The design constraint is the paper's own (section 6): the common case
must pay nothing for the unusual one.  Every instrumentation point in
the interpreter, the allocators, the IFU and the scheduler is guarded by
a single ``if tracer is not None`` check on a plain attribute, so a
machine with no tracer attached executes the same hot path as before —
the modelled meters are *never* touched by tracing (the differential
test asserts bit-identical :class:`~repro.machine.costs.CycleCounter`
totals with tracing on and off).

:class:`TraceRecorder` is the standard sink: a bounded ring buffer of
:class:`~repro.obs.events.TraceEvent` stamped with the machine's steps
and modelled cycles.  :class:`TeeTracer` fans one event stream out to
several sinks (e.g. a recorder plus a
:class:`~repro.obs.metrics.MetricsTracer`).
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

from repro.obs.events import TraceEvent


@runtime_checkable
class Tracer(Protocol):
    """What an event sink must provide.

    ``emit(kind, name, **data)`` receives every event.  A tracer may
    additionally define ``bind(machine)`` (called by
    :meth:`repro.interp.machine.Machine.attach_tracer` so timestamps can
    be read off the machine's meters) and a ``trace_steps`` attribute
    (True requests per-instruction ``machine.step`` events — verbose,
    and the only part of tracing with per-step host cost).
    """

    def emit(self, kind: str, name: str = "", **data) -> None: ...


class TraceRecorder:
    """A bounded ring buffer of trace events.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are dropped (``dropped``
        counts them).  ``None`` retains everything — use for profiling
        runs where the full call/return stream is needed.
    trace_steps:
        Also record one ``machine.step`` event per instruction.
    """

    def __init__(self, capacity: int | None = 65536, trace_steps: bool = False) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self.trace_steps = trace_steps
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self._machine = None

    def bind(self, machine) -> None:
        """Stamp future events with *machine*'s steps and cycles."""
        self._machine = machine

    def emit(self, kind: str, name: str = "", **data) -> None:
        machine = self._machine
        if machine is not None:
            steps = machine.steps
            cycles = machine.counter.cycles
        else:
            steps = cycles = 0
        self.events.append(TraceEvent(self.emitted, kind, name, steps, cycles, data))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Events lost to the ring bound (0 when capacity was enough)."""
        return self.emitted - len(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def tail(self, count: int = 10) -> list[TraceEvent]:
        """The most recent *count* events (for failure diagnostics)."""
        if count <= 0:
            return []
        return list(self.events)[-count:]

    def by_kind(self, *kinds: str) -> list[TraceEvent]:
        """Retained events whose kind is in *kinds* (or prefix-matches
        a ``"family."`` namespace given as ``"family"``)."""
        exact = set(kinds)
        prefixes = tuple(f"{kind}." for kind in kinds)
        return [
            event
            for event in self.events
            if event.kind in exact or event.kind.startswith(prefixes)
        ]

    def clear(self) -> None:
        """Forget retained events (the emission counter keeps running)."""
        self.events.clear()


class TeeTracer:
    """Fan one event stream out to several sinks."""

    def __init__(self, *tracers: Tracer) -> None:
        if not tracers:
            raise ValueError("TeeTracer needs at least one sink")
        self.tracers = tuple(tracers)

    @property
    def trace_steps(self) -> bool:
        return any(getattr(tracer, "trace_steps", False) for tracer in self.tracers)

    def bind(self, machine) -> None:
        for tracer in self.tracers:
            bind = getattr(tracer, "bind", None)
            if bind is not None:
                bind(machine)

    def emit(self, kind: str, name: str = "", **data) -> None:
        for tracer in self.tracers:
            tracer.emit(kind, name, **data)
