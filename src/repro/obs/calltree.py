"""Reconstruct a call tree from the matched call/return event stream.

As long as transfers follow the LIFO discipline, the ``xfer.call`` /
``xfer.return`` stream is a balanced bracket sequence — the same
structure the IFU return stack exploits dynamically (section 6) and
pushdown control-flow analyses exploit statically.  Folding it back up
gives every activation as a :class:`CallNode` with entry/exit cycle
stamps, from which inclusive and exclusive modelled-cycle attributions
fall out exactly:

* a node's **inclusive** cycles are its exit stamp minus its entry stamp;
* its **exclusive** cycles are inclusive minus its children's inclusive;
* the root's inclusive cycles equal the machine's whole cycle total, and
  the sum of every node's exclusive cycles equals it too (asserted in
  tests — the attribution loses nothing and double-counts nothing).

Non-LIFO transfers (coroutine XFERs, trap contexts) break the bracket
discipline; the builder recovers by name-matching returns against the
open-node stack and flags the tree ``structured=False`` so consumers
know the attribution is approximate there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import events as ev


@dataclass
class CallNode:
    """One activation: a procedure entered at one instant, left at another."""

    name: str
    start_cycles: int
    start_steps: int
    end_cycles: int | None = None
    end_steps: int | None = None
    children: list["CallNode"] = field(default_factory=list)

    @property
    def inclusive_cycles(self) -> int:
        assert self.end_cycles is not None, f"open node {self.name}"
        return self.end_cycles - self.start_cycles

    @property
    def exclusive_cycles(self) -> int:
        return self.inclusive_cycles - sum(
            child.inclusive_cycles for child in self.children
        )

    @property
    def inclusive_steps(self) -> int:
        assert self.end_steps is not None, f"open node {self.name}"
        return self.end_steps - self.start_steps

    def walk(self):
        """Yield (node, depth) preorder."""
        stack = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in reversed(node.children):
                stack.append((child, depth + 1))


@dataclass
class CallTree:
    """The reconstructed run: a root node plus stream health flags."""

    root: CallNode
    #: False when non-LIFO transfers (XFER, trap contexts) or dropped
    #: ring-buffer events made the bracket matching approximate.
    structured: bool = True
    #: Events the ring buffer dropped before the builder saw them.
    dropped: int = 0

    @property
    def total_cycles(self) -> int:
        return self.root.inclusive_cycles

    def nodes(self) -> list[CallNode]:
        return [node for node, _ in self.root.walk()]


@dataclass
class ProcProfile:
    """Aggregated attribution for one procedure across all activations."""

    name: str
    calls: int = 0
    inclusive_cycles: int = 0
    exclusive_cycles: int = 0
    inclusive_steps: int = 0

    @property
    def exclusive_per_call(self) -> float:
        return self.exclusive_cycles / self.calls if self.calls else 0.0


def build_call_tree(
    events,
    total_cycles: int | None = None,
    total_steps: int | None = None,
    dropped: int = 0,
) -> CallTree:
    """Fold an event stream into a :class:`CallTree`.

    The root spans cycle 0 to the final event (or *total_cycles* when
    given, so loader/start charges before the first event and any tail
    after the last are attributed to the root rather than lost).
    """
    events = list(events)
    root_name = "<machine>"
    structured = dropped == 0
    begun = False
    for event in events:
        if event.kind == ev.MACHINE_BEGIN:
            root_name = event.name
            break
    root = CallNode(root_name, start_cycles=0, start_steps=0)
    open_nodes = [root]
    last_cycles = 0
    last_steps = 0

    for event in events:
        last_cycles = event.cycles
        last_steps = event.steps
        if event.kind == ev.MACHINE_BEGIN:
            if begun:
                structured = False  # second root (scheduler restart)
            begun = True
        elif event.kind == ev.XFER_CALL:
            node = CallNode(event.name, start_cycles=event.cycles, start_steps=event.steps)
            open_nodes[-1].children.append(node)
            open_nodes.append(node)
        elif event.kind == ev.XFER_RETURN:
            # The returning procedure should be the innermost open node;
            # tolerate non-LIFO streams by scanning for it.
            index = len(open_nodes) - 1
            while index > 0 and open_nodes[index].name != event.name:
                index -= 1
            if index == 0:
                if open_nodes[0].name == event.name:
                    # The root procedure's own return: close everything
                    # above it; the root's end stamp is set at the end so
                    # it spans the whole run.
                    if len(open_nodes) > 1:
                        structured = False
                    for node in open_nodes[1:]:
                        node.end_cycles = event.cycles
                        node.end_steps = event.steps
                    del open_nodes[1:]
                else:
                    structured = False  # return from a node we never saw enter
                continue
            if index != len(open_nodes) - 1:
                structured = False
            for node in open_nodes[index:]:
                node.end_cycles = event.cycles
                node.end_steps = event.steps
            del open_nodes[index:]
        elif event.kind in (ev.XFER_XFER, ev.XFER_TRAP):
            structured = False

    end_cycles = total_cycles if total_cycles is not None else last_cycles
    end_steps = total_steps if total_steps is not None else last_steps
    for node in open_nodes:
        node.end_cycles = end_cycles
        node.end_steps = end_steps
    return CallTree(root=root, structured=structured, dropped=dropped)


def aggregate(tree: CallTree) -> list[ProcProfile]:
    """Per-procedure attribution, sorted by inclusive cycles descending.

    Recursion is handled the standard way: a nested activation of a
    procedure already on its own ancestor path contributes to exclusive
    cycles (they are disjoint) but not again to inclusive cycles, so
    ``inclusive <= total`` always holds per procedure.
    """
    profiles: dict[str, ProcProfile] = {}
    active: dict[str, int] = {}  # names on the current ancestor path
    stack: list[tuple[CallNode, bool]] = [(tree.root, False)]
    while stack:
        node, leaving = stack.pop()
        if leaving:
            active[node.name] -= 1
            continue
        profile = profiles.get(node.name)
        if profile is None:
            profile = profiles[node.name] = ProcProfile(node.name)
        profile.calls += 1
        profile.exclusive_cycles += node.exclusive_cycles
        if not active.get(node.name):
            profile.inclusive_cycles += node.inclusive_cycles
            profile.inclusive_steps += node.inclusive_steps
        active[node.name] = active.get(node.name, 0) + 1
        stack.append((node, True))
        for child in reversed(node.children):
            stack.append((child, False))
    return sorted(profiles.values(), key=lambda p: (-p.inclusive_cycles, p.name))
