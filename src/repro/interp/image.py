"""The linked program image: everything a Machine needs to run.

Produced by :func:`repro.lang.linker.link` from compiled (or
hand-assembled) modules plus a :class:`~repro.interp.machineconfig.
MachineConfig`.  The image owns the simulated memory with all tables
populated — GFT, link vectors, global frames, allocation vector — the
code space with all segments placed and direct-call fixups applied, and
the frame allocator appropriate to the configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alloc.avheap import AVHeap
from repro.alloc.simpleheap import SimpleHeap
from repro.alloc.sizing import SizeLadder
from repro.interp.frames import ProcMeta
from repro.interp.machineconfig import MachineConfig
from repro.isa.program import CodeSpace, ModuleCode
from repro.machine.costs import CycleCounter
from repro.machine.memory import Memory, Region
from repro.mesa.tables import GlobalFrameTable, LinkVector, WideLinkVector


@dataclass
class LinkedModule:
    """One placed module instance and its table coordinates."""

    module: ModuleCode
    instance: int
    code_base: int
    gf_address: int
    lv_base: int
    lv: LinkVector | WideLinkVector
    #: GFT indices for this instance, one per bias slot in use (I2/I3);
    #: empty under SIMPLE linkage, which has no GFT.
    env_indices: list[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.module.name

    def key(self) -> tuple[str, int]:
        return (self.module.name, self.instance)


@dataclass
class ProgramImage:
    """The loaded program: memory, code, tables, allocators, symbols."""

    config: MachineConfig
    counter: CycleCounter
    memory: Memory
    code: CodeSpace
    ladder: SizeLadder
    gft: GlobalFrameTable | None
    #: The frame allocator: exactly one is non-None, per the config.
    av_heap: AVHeap | None
    first_fit: SimpleHeap | None
    frame_region: Region
    #: (module name, instance) -> placed module.
    instances: dict[tuple[str, int], LinkedModule]
    #: gf address -> placed module (the machine's module-context lookup).
    by_gf: dict[int, LinkedModule]
    #: absolute entry (fsi byte) address -> procedure metadata.
    procs_by_entry: dict[int, ProcMeta]
    #: The designated main procedure.
    entry: ProcMeta

    def instance_of(self, module_name: str, instance: int = 0) -> LinkedModule:
        """Look up a placed module instance."""
        return self.instances[(module_name, instance)]

    def proc_meta(self, module_name: str, proc_name: str, instance: int = 0) -> ProcMeta:
        """Metadata of a procedure by qualified name."""
        linked = self.instance_of(module_name, instance)
        procedure = linked.module.procedure_named(proc_name)
        return self.procs_by_entry[linked.code_base + procedure.entry_offset]

    def code_bytes(self) -> int:
        """Total code-space size (for the space benchmarks)."""
        return self.code.size

    def table_words(self) -> dict[str, int]:
        """Words spent on each table kind (benchmark C6's denominators)."""
        lv_words = sum(
            linked.lv.words()
            for (_name, instance), linked in self.instances.items()
            if instance == 0  # link vectors are shared across instances
        )
        gft_words = len(self.gft) if self.gft is not None else 0
        return {"link_vectors": lv_words, "gft": gft_words}
