"""Multiple processes over one machine (sections 1, 3, 6, 7).

The paper's model needs no special cases for processes: each process is
just a chain of contexts, and a process switch is an XFER that happens to
land in another chain.  What the *implementations* owe processes is the
fallback discipline: a switch is one of the "unusual" events, so the
return stack is flushed and "all the banks are flushed into storage"
(section 7.1) before the other process's state is loaded.

:class:`Scheduler` is a cooperative round-robin scheduler with optional
preemption by instruction quantum.  A process yields explicitly with the
``YIELD`` instruction, or is preempted when its quantum expires; its full
machine state (frame, PC, evaluation stack) is saved to a process record
(charged as memory traffic — the state vector lives in storage), and the
next runnable process is restored.

Because frames live in a heap rather than a stack, every process's
frames share one arena with no per-process reservation — exactly the
storage-allocation advantage the introduction claims over contiguous-
stack architectures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InterpreterError, StepLimitExceeded, TrapError
from repro.interp.frames import FrameState, FRAME_PC
from repro.interp.machine import Machine
from repro.machine.costs import Event
from repro.machine.memory import to_word


class ProcessStatus(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    DONE = "done"
    #: Suspended awaiting a remote reply (repro.net): the process made a
    #: Remote XFER and leaves the rotation until :meth:`Scheduler.unblock`
    #: delivers the result words onto its saved evaluation stack.
    BLOCKED = "blocked"
    #: Quarantined: the process took an unhandled trap (or stormed past
    #: its trap quota) and was removed from the rotation so it cannot
    #: wedge the scheduler.  Its ``fault`` field records the diagnostics.
    FAULTED = "faulted"


@dataclass
class Process:
    """One process: an entry point plus saved machine state."""

    pid: int
    module: str
    proc: str
    args: tuple[int, ...]
    status: ProcessStatus = ProcessStatus.READY
    started: bool = False
    #: Saved state while not running.
    frame: FrameState | None = None
    pc: int = 0
    gf: int = 0
    cb: int = -1
    stack: tuple[int, ...] = ()
    #: Result stack after completion.
    results: list[int] = field(default_factory=list)
    #: Instructions executed by this process.
    steps: int = 0
    #: Traps dispatched while this process was running (handled or not).
    traps: int = 0
    #: Diagnostics when status is FAULTED: trap kind, pc, proc, detail.
    fault: dict | None = None
    #: The outstanding remote request while status is BLOCKED (the dict
    #: the machine's remote stub parked in ``machine.remote_pending``).
    remote: dict | None = None


@dataclass
class SwitchStats:
    """Process-switch accounting (they are XFERs, and slow ones)."""

    switches: int = 0
    preemptions: int = 0
    yields: int = 0
    #: Processes quarantined (unhandled trap or trap-storm quota).
    quarantines: int = 0
    #: Processes suspended on a remote call (repro.net).
    blocks: int = 0


class Scheduler:
    """Round-robin over processes sharing one machine.

    Parameters
    ----------
    machine:
        The machine to schedule on.  The scheduler takes over its run
        loop; use :meth:`run` instead of ``machine.run``.
    quantum:
        Instructions per time slice; 0 disables preemption (switches
        happen only on YIELD and process completion).
    trap_quota:
        Traps a process may dispatch within one time slice before it is
        quarantined as a trap storm; 0 disables the quota.  Unhandled
        traps always quarantine, quota or not.
    """

    def __init__(self, machine: Machine, quantum: int = 0, trap_quota: int = 0) -> None:
        self.machine = machine
        self.quantum = quantum
        self.trap_quota = trap_quota
        self.processes: list[Process] = []
        self.current: Process | None = None
        self.stats = SwitchStats()
        self._rotor = 0  # round-robin position
        #: pids excluded from dispatch (a migration is quiescing them).
        #: A held RUNNING process is forced out at its next step boundary
        #: — the same boundary the JIT deoptimizes at, so the hold works
        #: identically under ``--engine jit``.
        self.held: set[int] = set()

    def spawn(self, module: str, proc: str, *args: int) -> Process:
        """Create a READY process running ``module.proc(*args)``."""
        process = Process(
            pid=len(self.processes), module=module, proc=proc, args=tuple(args)
        )
        self.processes.append(process)
        return process

    def hold(self, pid: int) -> None:
        """Quiesce *pid*: skip it in dispatch, force it out at the next
        step boundary if it is currently running.  Used by live migration
        (:mod:`repro.net.migrate`) to pin a process's state vector into
        its process record without waiting for it to block on its own."""
        self.held.add(pid)

    def release(self, pid: int) -> None:
        """Lift a :meth:`hold`; the process re-enters the rotation."""
        self.held.discard(pid)

    def run(self, max_steps: int | None = None) -> list[Process]:
        """Run until no process is READY; returns them with results.

        *max_steps* defaults to ``config.scheduler_max_steps`` — one
        knob shared by serving loops and tests.  The loop also returns
        (rather than spinning) when every remaining process is BLOCKED
        on a remote reply; the caller (a :class:`repro.net` shard pump)
        delivers replies and calls :meth:`run` again.
        """
        if max_steps is None:
            max_steps = self.machine.config.scheduler_max_steps
        machine = self.machine
        machine.on_halt = self._on_halt
        total = 0
        try:
            while True:
                process = self._next_ready()
                if process is None:
                    break
                self._switch_in(process)
                slice_traps = 0
                while not machine.halted and self.current is process:
                    traps_before = machine.trap_count
                    try:
                        machine.step()
                    except TrapError as fault:
                        self._quarantine(
                            process,
                            trap=fault.trap,
                            pc=fault.pc,
                            proc=fault.proc,
                            detail=fault.detail,
                        )
                        break
                    process.steps += 1
                    total += 1
                    if total > max_steps:
                        raise StepLimitExceeded(max_steps)
                    slice_traps += machine.trap_count - traps_before
                    process.traps += machine.trap_count - traps_before
                    if self.trap_quota and slice_traps > self.trap_quota:
                        self._quarantine(
                            process,
                            trap="trap_storm",
                            pc=machine.pc,
                            proc=process.proc,
                            detail=(
                                f"{slice_traps} traps in one slice "
                                f"(quota {self.trap_quota})"
                            ),
                        )
                        break
                    if machine.halted or self.current is not process:
                        break  # the step completed the process
                    if machine.yield_requested:
                        machine.yield_requested = False
                        pending = machine.remote_pending
                        if pending is not None:
                            machine.remote_pending = None
                            self._block(process, pending)
                        else:
                            self.stats.yields += 1
                            self._switch_out(process, reason="yield")
                        break
                    if self.held and process.pid in self.held:
                        self._switch_out(process, reason="hold")
                        break
                    if self.quantum and process.steps % self.quantum == 0:
                        if self._another_ready(process):
                            self.stats.preemptions += 1
                            self._switch_out(process, reason="preempt")
                            break
                if machine.halted and self.current is process:
                    # _on_halt marked it DONE and captured results.
                    machine.halted = False
                    self.current = None
        finally:
            machine.on_halt = None
            machine.halted = True
        return self.processes

    # -- internals ------------------------------------------------------------

    def _next_ready(self) -> Process | None:
        """Round-robin: scan from just past the last scheduled process."""
        count = len(self.processes)
        for offset in range(count):
            process = self.processes[(self._rotor + offset) % count]
            if process.status is ProcessStatus.READY and process.pid not in self.held:
                self._rotor = (process.pid + 1) % count
                return process
        return None

    def _another_ready(self, current: Process) -> bool:
        return any(
            p is not current and p.status is ProcessStatus.READY for p in self.processes
        )

    def _switch_in(self, process: Process) -> None:
        machine = self.machine
        self.stats.switches += 1
        self.current = process
        process.status = ProcessStatus.RUNNING
        if not process.started:
            process.started = True
            machine.start(process.module, process.proc, *process.args)
            process.frame = machine.frame
            self._emit_switch("sched.switch_in", process, fresh=True)
            return
        # Restore: the state vector is read back from storage.
        machine.counter.record(Event.MEMORY_READ, len(process.stack) + 2)
        machine.stack.load(process.stack)
        machine.frame = process.frame
        machine.gf = process.gf
        machine.cb = process.cb
        machine.pc = process.pc
        machine.return_context = None
        machine.halted = False
        if machine.banks is not None:
            machine.banks.on_resume(process.frame, event=f"switch-in p{process.pid}")
        self._emit_switch("sched.switch_in", process, fresh=False)

    def _emit_switch(self, kind: str, process: Process, **extra) -> None:
        """Emit a scheduler event carrying the saved/restored state vector.

        The payload (pc, gf, cb, evaluation-stack words, current frame)
        is exactly what :meth:`_switch_out` writes to the process record
        and :meth:`_switch_in` reads back, so a switch-out/switch-in pair
        for the same process must carry identical state — the round-trip
        the preemption tests assert through the trace.
        """
        tracer = self.machine.tracer
        if tracer is None:
            return
        frame = process.frame
        tracer.emit(
            kind,
            f"p{process.pid}",
            pid=process.pid,
            proc=f"{process.module}.{process.proc}",
            frame=frame.proc.qualified_name if frame is not None else "<none>",
            pc=process.pc,
            gf=process.gf,
            cb=process.cb,
            stack=list(process.stack),
            steps=process.steps,
            **extra,
        )

    def _switch_out(self, process: Process, reason: str = "switch") -> None:
        """Suspend: flush everything, save the state vector to storage.

        "As usual, when life gets complicated because of a process
        switch, trap or whatever, we fall back to the general scheme:
        all the banks are flushed into storage."
        """
        machine = self.machine
        if machine.rstack is not None and len(machine.rstack):
            machine._flush_return_stack("process", machine.rstack.take_all())
        if machine.banks is not None:
            machine.banks.flush_all(event=f"switch-out p{process.pid}")
        current = machine.frame
        machine._materialize(current)
        cb = machine._current_code_base()
        machine.memory.write(current.address + FRAME_PC, to_word(machine.pc - cb))
        # The state vector (stack contents + registers) goes to storage.
        stack = machine.stack.contents()
        machine.counter.record(Event.MEMORY_WRITE, len(stack) + 2)
        machine.stack.clear()
        process.frame = current
        process.pc = machine.pc
        process.gf = machine.gf
        process.cb = machine.cb
        process.stack = stack
        process.status = ProcessStatus.READY
        self.current = None
        self._emit_switch("sched.switch_out", process, reason=reason)

    def _block(self, process: Process, pending: dict) -> None:
        """Suspend a process on an outstanding remote call.

        The machine's remote stub already consumed the argument record
        through the uncounted paths; the ordinary switch-out discipline
        (flush return stack and banks, save the state vector as memory
        traffic) applies unchanged — a Remote XFER pays exactly one
        modelled process switch on the calling shard.
        """
        self._switch_out(process, reason="remote")
        process.status = ProcessStatus.BLOCKED
        process.remote = pending
        self.stats.blocks += 1
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(
                "sched.block",
                f"p{process.pid}",
                pid=process.pid,
                proc=f"{process.module}.{process.proc}",
                target=f"{pending.get('module')}.{pending.get('proc')}",
            )

    def unblock(self, process: Process, results: list[int]) -> None:
        """Deliver a remote reply: result words land on the saved stack.

        The words join the process's saved state vector directly (not
        through counted pushes): transporting them is wire traffic,
        metered by the net layer, and the ordinary switch-in charge
        already covers reading the now-longer state vector back from
        storage — exactly what a local call's results would have cost
        sitting on the stack across a switch.
        """
        if process.status is not ProcessStatus.BLOCKED:
            raise SchedulerError(
                f"unblock of p{process.pid} which is {process.status.value}, "
                "not blocked"
            )
        process.stack = process.stack + tuple(to_word(value) for value in results)
        process.remote = None
        process.status = ProcessStatus.READY
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(
                "sched.unblock",
                f"p{process.pid}",
                pid=process.pid,
                proc=f"{process.module}.{process.proc}",
                results=list(results),
            )

    def fault_blocked(self, process: Process, fault: dict) -> None:
        """A remote call failed: quarantine the blocked caller.

        Unlike :meth:`_quarantine` the process is not running, so there
        is no machine state to clean up — its chain is simply abandoned
        with the remote fault recorded in its diagnostics.
        """
        if process.status is not ProcessStatus.BLOCKED:
            raise SchedulerError(
                f"fault_blocked of p{process.pid} which is "
                f"{process.status.value}, not blocked"
            )
        process.status = ProcessStatus.FAULTED
        process.fault = dict(fault)
        process.remote = None
        self.stats.quarantines += 1
        tracer = self.machine.tracer
        if tracer is not None:
            tracer.emit(
                "sched.fault",
                f"p{process.pid}",
                pid=process.pid,
                proc=f"{process.module}.{process.proc}",
                trap=fault.get("trap", "remote"),
                pc=fault.get("pc", -1),
                fault_proc=fault.get("proc", ""),
                detail=fault.get("detail", ""),
            )

    def _quarantine(
        self, process: Process, trap: str, pc: int, proc: str, detail: str
    ) -> None:
        """Remove a faulted process from the rotation, cleanly.

        The faulting chain is abandoned: evaluation-stack residue is
        discarded, any return-stack entries for it are dropped (their
        contents are dead — no stores), and its banks are released
        without spilling ("the contents of the bank are unimportant").
        The machine is left runnable so the remaining processes keep
        their turns — one trap-storming process cannot wedge the
        scheduler.
        """
        machine = self.machine
        process.status = ProcessStatus.FAULTED
        process.fault = {"trap": trap, "pc": pc, "proc": proc, "detail": detail}
        self.stats.quarantines += 1
        machine.stack.clear()
        if machine.rstack is not None and len(machine.rstack):
            victims = machine.rstack.take_all()
            machine.rstack.note_flush("quarantine", len(victims))
        if machine.banks is not None:
            for bank in machine.bankfile:
                bank.release()
            machine.banks.lbank = None
            machine.banks.sbank = None
        machine.halted = False
        machine.yield_requested = False
        self.current = None
        tracer = machine.tracer
        if tracer is not None:
            tracer.emit(
                "sched.fault",
                f"p{process.pid}",
                pid=process.pid,
                proc=f"{process.module}.{process.proc}",
                trap=trap,
                pc=pc,
                fault_proc=proc,
                detail=detail,
            )

    def _on_halt(self, machine: Machine) -> bool:
        """A process's outermost RETURN: record results, mark DONE."""
        process = self.current
        if process is None:
            return False
        process.status = ProcessStatus.DONE
        process.results = machine.results()
        machine.stack.clear()
        tracer = machine.tracer
        if tracer is not None:
            tracer.emit(
                "sched.done",
                f"p{process.pid}",
                pid=process.pid,
                proc=f"{process.module}.{process.proc}",
                steps=process.steps,
                results=list(process.results),
            )
        if machine.banks is not None:
            # The dead process's chain is gone; release any banks still
            # bound to freed frames.
            for bank in machine.bankfile:
                frame = bank.frame
                if isinstance(frame, FrameState) and frame.freed:
                    bank.release()
        return False  # let machine.halted go True; run() rotates


def run_processes(machine: Machine, specs: list[tuple[str, str, tuple[int, ...]]], quantum: int = 0) -> list[Process]:
    """Convenience: spawn and run a list of (module, proc, args) processes."""
    scheduler = Scheduler(machine, quantum=quantum)
    for module, proc, args in specs:
        scheduler.spawn(module, proc, *args)
    return scheduler.run()


class SchedulerError(InterpreterError):
    """Raised for inconsistent scheduler usage."""
