"""Frame state: the machine-level context (section 4's frame case).

The natural implementation "represents a context by a pointer to a record
whose components are the elements of a local frame".  Our in-memory
layout, in words from the frame pointer:

====  ==========================================================
0     returnLink — the caller's context word (or NIL)
1     globalFrame — address of the owning module instance's GF
2     PC — the saved program counter, relative to the code base
3..   arguments, locals, temporaries
====  ==========================================================

A :class:`FrameState` is the *machine's* handle on a frame, which may be
richer than the memory image at any instant: under implementation I4 the
first words may live in a register bank, the linkage words may live in
the IFU return stack, and — with deferred allocation — the memory image
may not exist at all (``address is None``).  The invariant: flushing
(:meth:`repro.interp.machine.Machine` owns that) always reconstructs the
exact section 4 memory representation, which is the paper's "orderly
fallback position".
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Word offsets within a frame.
FRAME_RETURN_LINK = 0
FRAME_GLOBAL = 1
FRAME_PC = 2
LOCALS_BASE = 3


@dataclass(frozen=True)
class ProcMeta:
    """Link-time metadata about one procedure, keyed by entry address."""

    module: str
    name: str
    entry_address: int  # absolute address of the fsi byte
    arg_count: int
    result_count: int
    frame_words: int  # header + locals, as the compiler computed it
    fsi: int
    ev_index: int

    @property
    def qualified_name(self) -> str:
        return f"{self.module}.{self.name}"

    @property
    def local_words(self) -> int:
        return self.frame_words - LOCALS_BASE


@dataclass
class FrameState:
    """A live activation as the machine tracks it.

    ``address`` is the frame pointer in memory, or None while allocation
    is deferred (section 7.1).  ``code_base`` may be -1 when entered via
    DIRECTCALL and never yet suspended (it is then recovered from the
    global frame on demand, one counted read).
    """

    proc: ProcMeta
    gf: int
    fsi: int
    address: int | None = None
    code_base: int = -1
    #: True when a pointer to a local exists (section 7.4 FLAG_FLUSH).
    flagged: bool = False
    #: True once freed — transfers to it then raise DanglingFrame.
    freed: bool = False
    #: True if the frame is retained (not freed by RETURN).
    retained: bool = False
    #: Evaluation-stack words parked while a trap context runs on this
    #: frame's behalf; re-pushed under the record when it resumes.
    stashed_stack: tuple = ()

    @property
    def deferred(self) -> bool:
        return self.address is None

    @property
    def locals_address(self) -> int | None:
        """Memory address of local word 0, or None while deferred."""
        if self.address is None:
            return None
        return self.address + LOCALS_BASE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "deferred" if self.address is None else f"@{self.address:#x}"
        return f"FrameState({self.proc.qualified_name} {where})"


@dataclass
class FrameTable:
    """Maps frame memory addresses to their :class:`FrameState`.

    Context words in memory are bare addresses; the machine needs to get
    back to the Python-side state they denote.  (On the real machine this
    table does not exist — the address *is* the state; it is simulation
    bookkeeping, never counted.)
    """

    by_address: dict[int, FrameState] = field(default_factory=dict)

    def register(self, frame: FrameState) -> None:
        assert frame.address is not None
        self.by_address[frame.address] = frame

    def forget(self, frame: FrameState) -> None:
        if frame.address is not None:
            self.by_address.pop(frame.address, None)

    def at(self, address: int) -> FrameState | None:
        return self.by_address.get(address)
