"""Machine configuration: one knob per design decision in the paper.

The presets ``i1()``-``i4()`` pin the four implementations; everything is
also individually adjustable for the ablation benchmarks (return-stack
depth, bank count, pointer policy, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.banks.pointers import PointerPolicy
from repro.ifu.returnstack import OverflowPolicy
from repro.machine.costs import CostModel


class LinkageKind(enum.Enum):
    """How external calls are bound (the I1 / I2 / I3 axis)."""

    #: Wide link vectors with full addresses (section 4).
    SIMPLE = "simple"
    #: Packed descriptors through LV/GFT/EV (section 5).
    MESA = "mesa"
    #: DIRECTCALL/SHORTDIRECTCALL where the linker can bind statically,
    #: falling back to MESA for multi-instance modules (section 6).
    DIRECT = "direct"


class ArgConvention(enum.Enum):
    """How arguments move from the caller's stack into callee locals."""

    #: Section 5.2: the callee stores them with ordinary STORE
    #: instructions (the compiler emits a prologue of SLn).
    COPY = "copy"
    #: Section 7.2: the stack bank is renamed; arguments *are* the first
    #: locals, no prologue, no data movement.
    RENAME = "rename"


class FrameAllocatorKind(enum.Enum):
    """Where local frames come from."""

    #: First-fit heap (section 4).
    FIRST_FIT = "first_fit"
    #: The allocation-vector free-list heap (section 5.3, Figure 2).
    AV_HEAP = "av_heap"
    #: AV heap fronted by the processor's free-frame stack (section 7.1).
    FAST_STACK = "fast_stack"


@dataclass(frozen=True)
class MachineConfig:
    """Every design decision the benchmarks vary, in one value object."""

    linkage: LinkageKind = LinkageKind.MESA
    arg_convention: ArgConvention = ArgConvention.COPY
    allocator: FrameAllocatorKind = FrameAllocatorKind.AV_HEAP

    #: IFU return stack (section 6); depth 0 disables it.
    return_stack_depth: int = 0
    return_stack_policy: OverflowPolicy = OverflowPolicy.FULL_FLUSH

    #: Register banks (section 7); 0 banks disables them.
    bank_count: int = 0
    bank_words: int = 16
    #: Dirty-word tracking on spills (the section 7.1 aside).
    track_dirty: bool = True

    #: Defer frame allocation until a flush forces it (section 7.1).
    deferred_allocation: bool = False

    #: Pointers-to-locals handling (section 7.4).
    pointer_policy: PointerPolicy = PointerPolicy.FLAG_FLUSH

    #: Evaluation stack depth (must not exceed bank_words when banks are
    #: on — the stack lives in a bank).
    eval_stack_depth: int = 16

    #: Cost model for the cycle counter.
    cost_model: CostModel = field(default_factory=CostModel)

    #: Execution budget (instructions) before StepLimitExceeded.
    step_limit: int = 5_000_000

    #: Aggregate instruction budget for a whole :class:`Scheduler.run`
    #: (all processes together).  Serving loops and tests share this one
    #: knob instead of the old hard-coded ``max_steps=10_000_000``.
    scheduler_max_steps: int = 10_000_000

    #: Host-side call-site linkage caching (a simulation speedup, not a
    #: modelled mechanism): the first execution of a call instruction
    #: memoizes its resolved target, and later executions skip the table
    #: walk while still charging the *modelled* memory-reference events,
    #: so paper metrics are bit-identical either way.  Off is useful only
    #: for the metrics-equivalence regression test.
    host_linkage_cache: bool = True

    def __post_init__(self) -> None:
        if self.bank_count and self.bank_count < 3:
            raise ValueError("bank_count must be 0 (off) or at least 3")
        if self.bank_count and self.eval_stack_depth > self.bank_words:
            raise ValueError(
                "with banks on, the eval stack lives in a bank: "
                f"eval_stack_depth {self.eval_stack_depth} > bank_words "
                f"{self.bank_words}"
            )
        if self.deferred_allocation and not self.bank_count:
            raise ValueError("deferred allocation requires register banks")
        if self.deferred_allocation and self.return_stack_depth == 0:
            raise ValueError(
                "deferred allocation requires the IFU return stack: without "
                "one, every call writes its return link to memory, which "
                "needs an allocated frame"
            )
        if self.arg_convention is ArgConvention.RENAME and not self.bank_count:
            raise ValueError("the RENAME convention requires register banks")

    @property
    def use_return_stack(self) -> bool:
        return self.return_stack_depth > 0

    @property
    def use_banks(self) -> bool:
        return self.bank_count > 0

    def but(self, **changes) -> MachineConfig:
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)

    # -- the paper's four implementations -----------------------------------------

    @classmethod
    def i1(cls, **overrides) -> MachineConfig:
        """Section 4: the very straightforward implementation."""
        base = cls(
            linkage=LinkageKind.SIMPLE,
            arg_convention=ArgConvention.COPY,
            allocator=FrameAllocatorKind.FIRST_FIT,
        )
        return base.but(**overrides) if overrides else base

    @classmethod
    def i2(cls, **overrides) -> MachineConfig:
        """Section 5: the Mesa implementation (minimum space)."""
        base = cls(
            linkage=LinkageKind.MESA,
            arg_convention=ArgConvention.COPY,
            allocator=FrameAllocatorKind.AV_HEAP,
        )
        return base.but(**overrides) if overrides else base

    @classmethod
    def i3(cls, **overrides) -> MachineConfig:
        """Section 6: DIRECTCALL plus the IFU return stack."""
        base = cls(
            linkage=LinkageKind.DIRECT,
            arg_convention=ArgConvention.COPY,
            allocator=FrameAllocatorKind.AV_HEAP,
            return_stack_depth=8,
        )
        return base.but(**overrides) if overrides else base

    @classmethod
    def i4(cls, **overrides) -> MachineConfig:
        """Section 7: banks, renaming, fast frames, deferred allocation."""
        base = cls(
            linkage=LinkageKind.DIRECT,
            arg_convention=ArgConvention.RENAME,
            allocator=FrameAllocatorKind.FAST_STACK,
            return_stack_depth=8,
            bank_count=4,
            bank_words=16,
            deferred_allocation=True,
        )
        return base.but(**overrides) if overrides else base

    @classmethod
    def preset(cls, name: str, **overrides) -> MachineConfig:
        """Look up a preset by name: "i1".."i4"."""
        presets = {"i1": cls.i1, "i2": cls.i2, "i3": cls.i3, "i4": cls.i4}
        try:
            return presets[name](**overrides)
        except KeyError:
            raise ValueError(f"unknown preset {name!r}; use i1..i4") from None
