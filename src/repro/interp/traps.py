"""Trap kinds and helpers.

The paper treats traps as just another XFER ("several other instructions
which combine an XFER with other operations, to support traps, coroutine
linkages, and multiple processes").  Two trap mechanisms exist in this
reproduction:

* the **software allocator trap** of section 5.3 is internal to the AV
  heap (an empty free list replenishes itself and charges an
  ``ALLOCATOR_TRAP`` event) — the common case, fully modelled;
* *machine* traps (divide by zero, breakpoint, outlawed pointer) surface
  through :meth:`repro.interp.machine.Machine.trap`, which dispatches to
  a registered host-level handler or raises
  :class:`~repro.errors.TrapError`.  Handlers get the machine and may fix
  the state and continue — the same power a trap context would have,
  without forcing every unit test to assemble one.
"""

from __future__ import annotations

import enum


class TrapKind(enum.Enum):
    """The conditions that trap."""

    BREAKPOINT = "breakpoint"
    DIVIDE_BY_ZERO = "divide_by_zero"
    #: LLA under the AVOID pointer policy (section 7.4: "outlaw pointers
    #: to local variables or the local frame").
    POINTER_TO_LOCAL = "pointer_to_local"
    #: Eval-stack overflow (compiler bug: expressions must fit).
    STACK_OVERFLOW = "stack_overflow"
    #: The frame arena (or record heap) is out of space and the bounded
    #: retry of section 5.3 ("a trap to a software allocator") found no
    #: frame to promote.  The modelled face of
    #: :class:`~repro.errors.HeapExhausted`.
    RESOURCE_EXHAUSTED = "resource_exhausted"
    #: Storage management went wrong: a double free, a corrupt fsi
    #: header, or an access outside the simulated store.  The modelled
    #: face of the remaining :class:`~repro.errors.AllocationError`
    #: family and of :class:`~repro.errors.MemoryFault`.
    STORAGE_FAULT = "storage_fault"


#: The code word a trap context receives as its argument record.
TRAP_CODES: dict[TrapKind, int] = {
    TrapKind.BREAKPOINT: 1,
    TrapKind.DIVIDE_BY_ZERO: 2,
    TrapKind.POINTER_TO_LOCAL: 3,
    TrapKind.STACK_OVERFLOW: 4,
    TrapKind.RESOURCE_EXHAUSTED: 5,
    TrapKind.STORAGE_FAULT: 6,
}


class TrapTransfer(Exception):
    """Internal: a trap was dispatched as an XFER to a trap context.

    Raised to abandon the faulting instruction's handler; the machine's
    step loop absorbs it (control is already in the trap context).
    """
